//! The §III-C NP-hardness apparatus in action: build the paper's
//! set-cover gadget, solve the minimum-certainty initiator problem
//! exactly (exponential time), and compare with what RID's heuristic
//! recovers.
//!
//! ```sh
//! cargo run --release --example hardness_reduction
//! ```

use isomit::core::{exact, reduction, InitiatorDetector, Rid};
use isomit::prelude::NodeId;

fn main() {
    // Universe {0..4}, four candidate sets; the minimum cover has size 2.
    let instance = reduction::SetCoverInstance::new(
        5,
        vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
    );
    println!(
        "set cover: universe {} elements, {} sets",
        instance.universe(),
        instance.sets().len()
    );
    let greedy = instance.greedy_cover().expect("coverable");
    let exact_cover = instance.exact_cover().expect("coverable");
    println!("  greedy cover:  {greedy:?} (size {})", greedy.len());
    println!(
        "  minimum cover: {exact_cover:?} (size {})",
        exact_cover.len()
    );

    // The paper's Proof-1 gadget (all-positive infected network).
    let gadget = reduction::set_cover_to_isomit(&instance);
    println!(
        "\ngadget: {} nodes ({} elements + {} sets + dummy), {} links",
        gadget.len(),
        instance.universe(),
        instance.sets().len(),
        gadget.network().graph().edge_count(),
    );

    for alpha in [1.0, 8.0] {
        // Provable optimum vs exponential search.
        let predicted = reduction::minimum_gadget_initiators(&gadget, alpha);
        let optimum = exact::minimum_certain_initiators(gadget.network(), alpha)
            .expect("gadget is always solvable");
        println!(
            "\nalpha = {alpha}: minimum initiators for P(G_I | I, S) = 1: {} (predicted {})",
            optimum.len(),
            predicted.len(),
        );
        assert_eq!(optimum.len(), predicted.len());
        assert!(exact::certainly_infected(
            gadget.network(),
            alpha,
            &predicted
        ));

        // What does the polynomial-time heuristic make of the gadget?
        let detection = Rid::new(alpha.max(1.0), 0.5)
            .expect("valid params")
            .detect(gadget.network());
        let dummy: NodeId = gadget.dummy_node();
        println!(
            "  RID(0.5) detects {} initiators (dummy node included: {})",
            detection.len(),
            detection.contains(dummy),
        );
    }
    println!(
        "\nnote: as printed, the paper's gadget forces every element node to be an \
         initiator regardless of the cover (elements have no in-links); see DESIGN.md."
    );
}
