//! The flip side of initiator detection: if you *wanted* to start a
//! rumor (or a correction campaign), whom should you seed? Greedy
//! influence maximization under MFC versus IC — Table I's neighbouring
//! problem, built on the same substrate.
//!
//! ```sh
//! cargo run --release --example influence_maximization
//! ```

use isomit::diffusion::maximize_influence;
use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let social = epinions_like_scaled(0.004, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    println!(
        "network: {} nodes, {} edges",
        diffusion.node_count(),
        diffusion.edge_count()
    );

    let k = 5;
    let runs = 100;
    for (label, model) in [
        (
            "MFC(a=3)",
            Box::new(Mfc::new(3.0)?) as Box<dyn DiffusionModel>,
        ),
        ("IC", Box::new(IndependentCascade::new())),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let result = maximize_influence(model.as_ref(), &diffusion, k, runs, &mut rng)?;
        println!("\n{label}: greedy seeds and spread trajectory");
        for (i, (seed, spread)) in result
            .seeds
            .iter()
            .zip(&result.spread_trajectory)
            .enumerate()
        {
            println!("  seed {:>2}: {seed} -> expected spread {spread:.1}", i + 1);
        }
        // Compare against random seeding with the same budget.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let random_seeds = SeedSet::sample(&diffusion, k, 1.0, &mut rng);
        let mut total = 0usize;
        for r in 0..runs as u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + r);
            total += model
                .simulate(&diffusion, &random_seeds, &mut rng)?
                .infected_count();
        }
        let random_spread = total as f64 / runs as f64;
        println!(
            "  random {k}-seed baseline: {random_spread:.1} (greedy advantage {:.1}x)",
            result.expected_spread() / random_spread.max(1.0)
        );
    }
    Ok(())
}
