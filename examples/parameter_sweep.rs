//! Sweeps RID's penalty β and prints a CSV of the precision/recall
//! trade-off and state-inference quality — the data behind the paper's
//! Figures 5 and 6, ready for plotting.
//!
//! ```sh
//! cargo run --release --example parameter_sweep > sweep.csv
//! ```

use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let social = epinions_like_scaled(0.05, &mut rng);
    let scenario = build_scenario(
        &social,
        &ScenarioConfig::default().with_initiators(50),
        &mut rng,
    );
    let truth: Vec<NodeId> = scenario.ground_truth.nodes().collect();
    let truth_pairs = scenario.ground_truth_pairs();

    println!("beta,detected,precision,recall,f1,state_accuracy,state_mae,state_r2");
    let betas = [
        0.0, 0.05, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.25, 1.5, 1.75, 2.0,
        2.5, 3.0, 4.0,
    ];
    for beta in betas {
        let detection = Rid::new(3.0, beta)?.detect(&scenario.snapshot);
        let prf = evaluate_identities(&detection.nodes(), &truth);
        let pairs: Vec<(NodeId, i8)> = detection
            .initiators
            .iter()
            .filter_map(|d| d.state.opinion().map(|s| (d.node, s)))
            .collect();
        let (_, states) = evaluate_detection(&pairs, &truth_pairs);
        let (acc, mae, r2) = states.map_or((f64::NAN, f64::NAN, f64::NAN), |s| {
            (s.accuracy, s.mae, s.r2)
        });
        println!(
            "{beta},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            detection.len(),
            prf.precision,
            prf.recall,
            prf.f1,
            acc,
            mae,
            r2,
        );
    }
    Ok(())
}
