//! A rumor war between two polarized camps: dense trust inside each
//! camp, distrust across the divide. One initiator per camp seeds the
//! rumor with opposite opinions; MFC's sign-product rule makes opinions
//! align with camp boundaries, and RID has to find both patient zeros.
//!
//! ```sh
//! cargo run --release --example polarized_camps
//! ```

use isomit::datasets::{camp_of, polarized_communities, PolarizedConfig};
use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let config = PolarizedConfig {
        nodes: 3000,
        communities: 2,
        ..PolarizedConfig::default()
    };
    let social = polarized_communities(&config, &mut rng);
    println!("polarized network: {}", GraphStats::compute(&social));

    let diffusion = paper_weights(&social, &mut rng);
    // One believer in camp 0, one denier in camp 1.
    let seeds = SeedSet::from_pairs([
        (NodeId(0), Sign::Positive), // camp 0
        (NodeId(1), Sign::Negative), // camp 1
    ])?;
    let cascade = Mfc::new(3.0)?.simulate(&diffusion, &seeds, &mut rng)?;
    println!(
        "outbreak: {} infected in {} rounds, {} flips",
        cascade.infected_count(),
        cascade.rounds(),
        cascade.flip_count()
    );

    // How well do final opinions align with camps?
    let mut aligned = 0usize;
    let mut total = 0usize;
    for node in cascade.infected_nodes() {
        let camp = camp_of(node, config.communities);
        if let Some(op) = cascade.state(node).opinion() {
            total += 1;
            // Camp 0 seeded +1, camp 1 seeded −1.
            let camp_opinion = if camp == 0 { 1 } else { -1 };
            if op == camp_opinion {
                aligned += 1;
            }
        }
    }
    println!(
        "opinion-camp alignment: {:.1}% of {} opinionated users",
        100.0 * aligned as f64 / total.max(1) as f64,
        total
    );

    // Detection: can RID find both camps' patient zeros?
    let snapshot = InfectedNetwork::from_cascade(&diffusion, &cascade);
    for beta in [1.0, 2.0, 3.0] {
        let detection = Rid::new(3.0, beta)?.detect(&snapshot);
        let found0 = detection.contains(NodeId(0));
        let found1 = detection.contains(NodeId(1));
        println!(
            "RID(beta={beta}): {} detected; camp-0 seed found: {found0}, camp-1 seed found: {found1}",
            detection.len()
        );
    }

    // The per-round timeline shows the two camps igniting.
    let timeline = CascadeTimeline::from_cascade(&cascade);
    if let Some(peak) = timeline.peak_round() {
        println!(
            "peak round {peak}: {} new infections",
            timeline.round(peak).new_infections
        );
    }
    Ok(())
}
