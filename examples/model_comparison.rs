//! Side-by-side comparison of the five diffusion models on the same
//! network and seed set — the motivation for MFC from §III-A: trust
//! boosting extends reach, and flipping lets trusted corrections
//! overturn earlier opinions.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let social = slashdot_like_scaled(0.05, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 40, 0.5, &mut rng);
    println!(
        "network: {} nodes, {} edges; {} seeds (50% positive)",
        diffusion.node_count(),
        diffusion.edge_count(),
        seeds.len()
    );

    let models: Vec<Box<dyn DiffusionModel>> = vec![
        Box::new(Mfc::new(3.0)?),
        Box::new(Mfc::new(1.0)?), // boosting ablation
        Box::new(IndependentCascade::new()),
        Box::new(LinearThreshold::new()),
        Box::new(Sir::new(0.5)?),
        Box::new(PolarityIc::new(0.5)?),
    ];
    println!(
        "\n{:<10} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "model", "infected", "positive", "negative", "flips", "rounds"
    );
    for (i, model) in models.iter().enumerate() {
        let runs = 20;
        let (mut inf, mut pos, mut neg, mut flips, mut rounds) = (0, 0, 0, 0, 0);
        for r in 0..runs {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + r);
            let c = model.simulate(&diffusion, &seeds, &mut rng)?;
            inf += c.infected_count();
            pos += c
                .states()
                .iter()
                .filter(|s| **s == NodeState::Positive)
                .count();
            neg += c
                .states()
                .iter()
                .filter(|s| **s == NodeState::Negative)
                .count();
            flips += c.flip_count();
            rounds += c.rounds();
        }
        let label = if i == 1 { "MFC(a=1)" } else { model.name() };
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>7} {:>7}",
            label,
            inf / runs as usize,
            pos / runs as usize,
            neg / runs as usize,
            flips / runs as usize,
            rounds / runs as usize,
        );
    }
    println!("\nMFC(a=3) should out-reach MFC(a=1) and IC; only MFC produces flips.");
    Ok(())
}
