//! A realistic end-to-end experiment, the workload from the paper's
//! introduction: a rumor breaks out from multiple initiators with mixed
//! opinions in an Epinions-like trust network; work backwards from the
//! snapshot to the culprits and score every detector.
//!
//! ```sh
//! cargo run --release --example rumor_outbreak [-- <scale> <n_initiators>]
//! ```

use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map_or(0.05, |s| s.parse().expect("scale"));
    let n: usize = args.next().map_or(50, |s| s.parse().expect("n_initiators"));

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let social = epinions_like_scaled(scale, &mut rng);
    println!("social network: {}", GraphStats::compute(&social));

    let config = ScenarioConfig {
        n_initiators: n,
        positive_ratio: 0.5,
        alpha: 3.0,
        mask_fraction: 0.0,
    };
    let scenario = build_scenario(&social, &config, &mut rng);
    println!(
        "outbreak: {} initiators infected {} users in {} rounds ({} opinion flips)",
        scenario.ground_truth.len(),
        scenario.snapshot.node_count(),
        scenario.cascade.rounds(),
        scenario.cascade.flip_count(),
    );

    let truth: Vec<NodeId> = scenario.ground_truth.nodes().collect();
    let truth_pairs = scenario.ground_truth_pairs();
    let detectors: Vec<Box<dyn InitiatorDetector>> = vec![
        Box::new(Rid::new(3.0, 2.5)?),
        Box::new(Rid::new(3.0, 0.1)?),
        Box::new(RidTree::new(3.0)?),
        Box::new(RidPositive::new()),
    ];
    println!(
        "\n{:<14} {:>8} {:>10} {:>8} {:>8} | state accuracy",
        "method", "found", "precision", "recall", "F1"
    );
    for detector in detectors {
        let detection = detector.detect(&scenario.snapshot);
        let prf = evaluate_identities(&detection.nodes(), &truth);
        let pairs: Vec<(NodeId, i8)> = detection
            .initiators
            .iter()
            .filter_map(|d| d.state.opinion().map(|s| (d.node, s)))
            .collect();
        let (_, states) = evaluate_detection(&pairs, &truth_pairs);
        let acc = states.map_or("n/a".to_string(), |s| format!("{:.1}%", s.accuracy * 100.0));
        println!(
            "{:<14} {:>8} {:>10.3} {:>8.3} {:>8.3} | {}",
            detector.name(),
            detection.len(),
            prf.precision,
            prf.recall,
            prf.f1,
            acc,
        );
    }
    Ok(())
}
