//! Quickstart: build a small signed network by hand, spread a rumor with
//! MFC, and ask RID who started it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use isomit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-made trust network. Social semantics: an edge (a, b) means
    // "a trusts/distrusts b", so information flows b -> a after reversal.
    let mut builder = SignedDigraphBuilder::new();
    let edges = [
        // (follower, followee, sign, intimacy)
        (1, 0, Sign::Positive, 0.9), // 1 trusts 0
        (2, 0, Sign::Positive, 0.8),
        (3, 1, Sign::Positive, 0.7),
        (4, 1, Sign::Negative, 0.6), // 4 distrusts 1
        (5, 2, Sign::Positive, 0.9),
        (6, 5, Sign::Negative, 0.8),
        (7, 6, Sign::Positive, 0.9),
    ];
    for (src, dst, sign, w) in edges {
        builder.add_edge(NodeId(src), NodeId(dst), sign, w)?;
    }
    let social = builder.build();

    // Definition 2: reverse into the diffusion network.
    let diffusion = social.reversed();

    // Node 0 starts a rumor it believes (+1); MFC spreads it (alpha = 3).
    let seeds = SeedSet::single(NodeId(0), Sign::Positive);
    let mfc = Mfc::new(3.0)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let cascade = mfc.simulate(&diffusion, &seeds, &mut rng)?;

    println!(
        "rumor reached {} of {} users:",
        cascade.infected_count(),
        diffusion.node_count()
    );
    for node in cascade.infected_nodes() {
        println!(
            "  {node}: state {} (first activated by {:?})",
            cascade.state(node),
            cascade.first_parent(node),
        );
    }

    // Detection side: all RID sees is the infected snapshot.
    let snapshot = InfectedNetwork::from_cascade(&diffusion, &cascade);
    let detection = Rid::new(3.0, 0.5)?.detect(&snapshot);

    println!("\nRID found {} initiator(s):", detection.len());
    for d in &detection.initiators {
        println!("  {} with initial state {}", d.node, d.state);
    }
    assert!(detection.contains(NodeId(0)), "the true initiator is found");
    Ok(())
}
