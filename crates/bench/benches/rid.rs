//! Micro-benchmarks for the detection side: end-to-end RID
//! latency on simulated outbreaks, the cascade-forest extraction stage,
//! and the two per-tree dynamic programs.

use isomit_bench::report::{BenchmarkId, Harness};
use isomit_bench::{build_trial, ExpOptions, Network};
use isomit_core::{extract_cascade_forest, InitiatorDetector, Rid, RidTree, TreeDp};

fn bench_detectors(c: &mut Harness) {
    let opts = ExpOptions {
        scale: 0.05,
        trials: 1,
        seed: 13,
        ..ExpOptions::default()
    };
    let trial = build_trial(Network::Epinions, &opts, 0);
    let snapshot = &trial.scenario.snapshot;

    let mut group = c.benchmark_group("detectors_e2e");
    group.bench_function("rid_beta_2.5", |b| {
        let rid = Rid::new(3.0, 2.5).unwrap();
        b.iter(|| rid.detect(snapshot))
    });
    group.bench_function("rid_beta_0.1", |b| {
        let rid = Rid::new(3.0, 0.1).unwrap();
        b.iter(|| rid.detect(snapshot))
    });
    group.bench_function("rid_tree", |b| {
        let det = RidTree::new(3.0).unwrap();
        b.iter(|| det.detect(snapshot))
    });
    group.finish();
}

fn bench_pipeline_stages(c: &mut Harness) {
    let mut group = c.benchmark_group("rid_stages");
    for scale in [0.05, 0.1] {
        let opts = ExpOptions {
            scale,
            trials: 1,
            seed: 13,
            ..ExpOptions::default()
        };
        let trial = build_trial(Network::Epinions, &opts, 0);
        let snapshot = &trial.scenario.snapshot;
        group.bench_with_input(
            BenchmarkId::new("forest_extraction", snapshot.node_count()),
            snapshot,
            |b, s| b.iter(|| extract_cascade_forest(s, 3.0)),
        );
        let (trees, _) = extract_cascade_forest(snapshot, 3.0);
        let biggest = trees
            .iter()
            .max_by_key(|t| t.len())
            .expect("at least one tree")
            .clone();
        group.bench_with_input(
            BenchmarkId::new("dp_probability_sum", biggest.len()),
            &biggest,
            |b, t| b.iter(|| TreeDp::solve_probability_sum(t, 3.0, 2.5)),
        );
        group.bench_with_input(
            BenchmarkId::new("dp_penalized_loglik", biggest.len()),
            &biggest,
            |b, t| b.iter(|| TreeDp::solve_penalized(t, 3.0, 2.5)),
        );
        group.bench_with_input(
            BenchmarkId::new("dp_budgeted_k8", biggest.len()),
            &biggest,
            |b, t| b.iter(|| TreeDp::solve(t, 3.0, 8)),
        );
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new("rid");
    bench_detectors(&mut harness);
    bench_pipeline_stages(&mut harness);
    harness.finish().expect("write bench artifact");
}
