//! Micro-benchmarks for the structural algorithms: connected
//! components, Chu-Liu/Edmonds maximum branching, and the binary-tree
//! transformation.

use isomit_bench::report::{BenchmarkId, Harness};
use isomit_forest::{binarize, maximum_branching, weakly_connected_components, WeightedArc};
use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, m: usize, seed: u64) -> SignedDigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..m).filter_map(|_| {
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        (a != b).then(|| {
            Edge::new(
                NodeId(a),
                NodeId(b),
                if rng.gen_bool(0.8) {
                    Sign::Positive
                } else {
                    Sign::Negative
                },
                rng.gen_range(0.01..1.0),
            )
        })
    });
    SignedDigraph::from_edges(n, edges).unwrap()
}

fn bench_components(c: &mut Harness) {
    let mut group = c.benchmark_group("components");
    for n in [1_000usize, 10_000, 50_000] {
        let g = random_graph(n, n * 6, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| weakly_connected_components(g))
        });
    }
    group.finish();
}

fn bench_branching(c: &mut Harness) {
    let mut group = c.benchmark_group("edmonds_branching");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        let mut rng = StdRng::seed_from_u64(5);
        let arcs: Vec<WeightedArc> = (0..n * 6)
            .filter_map(|_| {
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                (src != dst).then(|| WeightedArc {
                    src,
                    dst,
                    weight: rng.gen_range(0.01..1.0),
                })
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &arcs, |b, arcs| {
            b.iter(|| maximum_branching(n, arcs))
        });
    }
    group.finish();
}

fn bench_binarize(c: &mut Harness) {
    let mut group = c.benchmark_group("binarize");
    for n in [1_000usize, 100_000] {
        // Random recursive tree with heavy fan-out at the root.
        let mut rng = StdRng::seed_from_u64(9);
        let mut children = vec![Vec::new(); n];
        for v in 1..n {
            let parent = rng.gen_range(0..v);
            children[parent].push(v);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &children, |b, ch| {
            b.iter(|| binarize(0, ch))
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new("forest");
    bench_components(&mut harness);
    bench_branching(&mut harness);
    bench_binarize(&mut harness);
    harness.finish().expect("write bench artifact");
}
