//! Micro-benchmarks for the diffusion models: simulation
//! throughput of MFC versus the reference models at growing network
//! scales — backing the claim that MFC runs at Epinions/Slashdot scale.

use isomit_bench::report::{BenchmarkId, Harness};
use isomit_datasets::{epinions_like_scaled, paper_weights};
use isomit_diffusion::{
    DiffusionModel, IndependentCascade, LinearThreshold, Mfc, PolarityIc, SeedSet, Sir,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_models(c: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(7);
    let social = epinions_like_scaled(0.05, &mut rng); // ~6.6k nodes
    let diffusion = paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 50, 0.5, &mut rng);

    let models: Vec<(&str, Box<dyn DiffusionModel>)> = vec![
        ("mfc", Box::new(Mfc::new(3.0).unwrap())),
        ("ic", Box::new(IndependentCascade::new())),
        ("lt", Box::new(LinearThreshold::new())),
        ("sir", Box::new(Sir::new(0.5).unwrap())),
        ("pic", Box::new(PolarityIc::new(0.5).unwrap())),
    ];
    let mut group = c.benchmark_group("diffusion_models");
    for (name, model) in &models {
        group.bench_function(*name, |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| model.simulate(&diffusion, &seeds, &mut rng))
        });
    }
    group.finish();
}

fn bench_mfc_scaling(c: &mut Harness) {
    let mut group = c.benchmark_group("mfc_scaling");
    group.sample_size(10);
    for scale in [0.02, 0.05, 0.1, 0.2] {
        let mut rng = StdRng::seed_from_u64(7);
        let social = epinions_like_scaled(scale, &mut rng);
        let diffusion = paper_weights(&social, &mut rng);
        let n_seeds = ((1000.0 * scale) as usize).max(10);
        let seeds = SeedSet::sample(&diffusion, n_seeds, 0.5, &mut rng);
        let model = Mfc::new(3.0).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(diffusion.node_count()),
            &diffusion,
            |b, g| {
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| model.simulate(g, &seeds, &mut rng))
            },
        );
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new("diffusion");
    bench_models(&mut harness);
    bench_mfc_scaling(&mut harness);
    harness.finish().expect("write bench artifact");
}
