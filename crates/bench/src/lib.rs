//! # isomit-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§IV). Each artifact has a dedicated binary:
//!
//! | Paper artifact | Binary | What it prints |
//! |---|---|---|
//! | Table II (dataset statistics) | `table2` | nodes / links / sign fractions of the generated networks vs the published numbers |
//! | Figure 4 (method comparison)  | `fig4`   | precision / recall / F1 of RID(β), RID-Tree, RID-Positive on both networks |
//! | Figure 5 (β sensitivity, identities) | `fig5` | precision / recall / F1 of RID across a β sweep |
//! | Figure 6 (β sensitivity, states) | `fig6` | accuracy / MAE / R² of RID's state inference across the β sweep |
//! | §IV-B3 diffusion analysis | `diffusion_analysis` | mean infected counts of MFC vs IC / LT / SIR / P-IC |
//! | design ablation | `ablation` | RID objective and external-support variants across β |
//! | extension | `unknowns` | detection quality under masked (unknown) states |
//! | engine check | `montecarlo` | sequential vs parallel Monte-Carlo: bit-identity assertion and speedup |
//!
//! All binaries accept `--scale <f>` (network scale, default `0.1`),
//! `--trials <n>` (default `5`), `--seed <u64>` (default `2026`),
//! `--threads <n>` (worker threads for parallel sections; default
//! automatic, also settable via `RAYON_NUM_THREADS`; `1` forces the
//! sequential path) and `--full` (shortcut for `--scale 1.0`, the
//! paper's Table-II sizes). Experiments run trials in parallel on a
//! bounded rayon pool; results are bit-identical for every thread count
//! because each trial draws from its own seed-derived RNG stream.
//!
//! Micro-benchmarks live in `benches/` (diffusion-model throughput,
//! forest-algorithm scaling, end-to-end RID latency), driven by the
//! in-repo [`report`] harness.
//!
//! # `BENCH_<name>.json` artifacts
//!
//! Experiment binaries and `benches/` targets serialize their results
//! through [`report::BenchReport`] to `BENCH_<name>.json` at the
//! workspace root (the nearest ancestor directory with a `Cargo.lock`;
//! override with the `ISOMIT_BENCH_DIR` environment variable). The
//! schema:
//!
//! ```json
//! {
//!   "schema": "isomit-bench/1",
//!   "name": "montecarlo",
//!   "created_unix": 1770000000,
//!   "threads": 8,
//!   "entries": [
//!     {"group": "mc", "id": "parallel",
//!      "metrics": {"speedup": 3.4},
//!      "timing": {"samples": 20, "mean_ns": 1.0e6, "std_ns": 2.0e4,
//!                 "min_ns": 9.7e5, "max_ns": 1.1e6}}
//!   ]
//! }
//! ```
//!
//! `schema` is the artifact version tag; `threads` is the rayon worker
//! count the run used; each entry carries a `group`/`id` pair plus
//! `metrics` (named scalars — precision, node counts, speedups, ...)
//! and/or `timing` (per-iteration statistics in nanoseconds). Absent
//! sections are omitted rather than emitted empty.

#![deny(missing_docs)]

pub mod report;

use isomit_core::{InitiatorDetector, Rid, RidPositive, RidTree, RumorCentrality};
use isomit_datasets::{
    build_scenario, build_scenario_with_model, epinions_like_scaled, slashdot_like_scaled,
    Scenario, ScenarioConfig,
};
use isomit_diffusion::DiffusionModel;
use isomit_graph::{NodeId, SignedDigraph};
use isomit_metrics::{evaluate_detection, evaluate_identities, Prf, StateMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Which synthetic network family an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// Epinions-like (Table II row 1).
    Epinions,
    /// Slashdot-like (Table II row 2).
    Slashdot,
}

impl Network {
    /// Both networks, in paper order.
    pub const ALL: [Network; 2] = [Network::Epinions, Network::Slashdot];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Network::Epinions => "Epinions",
            Network::Slashdot => "Slashdot",
        }
    }

    /// Generates the network at the given scale.
    pub fn generate(self, scale: f64, rng: &mut StdRng) -> SignedDigraph {
        match self {
            Network::Epinions => epinions_like_scaled(scale, rng),
            Network::Slashdot => slashdot_like_scaled(scale, rng),
        }
    }

    /// Full-scale node count (Table II).
    pub fn full_nodes(self) -> usize {
        match self {
            Network::Epinions => isomit_datasets::EPINIONS_NODES,
            Network::Slashdot => isomit_datasets::SLASHDOT_NODES,
        }
    }
}

/// Common command-line options of the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpOptions {
    /// Network scale in `(0, 1]`; `1.0` = the paper's Table II sizes.
    pub scale: f64,
    /// Number of independent trials to average over.
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Worker threads for parallel sections; `None` defers to
    /// `RAYON_NUM_THREADS` / hardware parallelism, `Some(1)` forces the
    /// sequential path.
    pub threads: Option<usize>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.1,
            trials: 5,
            seed: 2026,
            threads: None,
        }
    }
}

impl ExpOptions {
    /// Parses `--scale`, `--trials`, `--seed`, `--threads`, `--full`
    /// from an argument iterator, ignoring anything it does not
    /// recognize.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = ExpOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale needs a float");
                }
                "--trials" => {
                    let v = iter.next().expect("--trials needs a value");
                    opts.trials = v.parse().expect("--trials needs an integer");
                }
                "--seed" => {
                    let v = iter.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--threads" => {
                    let v = iter.next().expect("--threads needs a value");
                    opts.threads = Some(v.parse().expect("--threads needs an integer"));
                }
                "--full" => opts.scale = 1.0,
                _ => {}
            }
        }
        assert!(
            opts.scale > 0.0 && opts.scale <= 1.0,
            "scale must lie in (0, 1]"
        );
        assert!(opts.trials > 0, "trials must be positive");
        assert!(opts.threads != Some(0), "threads must be positive");
        opts
    }

    /// Runs `f` under this option set's thread count: with
    /// `--threads n` the rayon sections inside `f` use exactly `n`
    /// workers, otherwise the ambient configuration
    /// (`RAYON_NUM_THREADS`, hardware parallelism) applies.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("thread pool construction cannot fail")
                .install(f),
            None => f(),
        }
    }

    /// The paper plants `N = 1000` initiators in the full Epinions
    /// network (0.76% of nodes); scaled-down runs keep that fraction.
    pub fn initiators_for(&self, network: Network) -> usize {
        let full = match network {
            Network::Epinions => 1000.0,
            Network::Slashdot => 1000.0,
        };
        ((full * self.scale).round() as usize).max(10)
    }
}

/// One trial's raw material: the scenario plus the ground-truth pairs.
#[derive(Debug)]
pub struct Trial {
    /// The generated scenario.
    pub scenario: Scenario,
    /// Ground truth as `(node, ±1)` pairs.
    pub truth_pairs: Vec<(NodeId, i8)>,
    /// Ground-truth node ids.
    pub truth_ids: Vec<NodeId>,
}

/// Builds one trial (network generation + MFC outbreak) for trial index
/// `t`, deterministic in `(options.seed, t)`.
pub fn build_trial(network: Network, options: &ExpOptions, t: usize) -> Trial {
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(t as u64));
    let social = network.generate(options.scale, &mut rng);
    let config = ScenarioConfig {
        n_initiators: options.initiators_for(network),
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario(&social, &config, &mut rng);
    let truth_pairs = scenario.ground_truth_pairs();
    let truth_ids = scenario.ground_truth.nodes().collect();
    Trial {
        scenario,
        truth_pairs,
        truth_ids,
    }
}

/// Builds `options.trials` trials on the bounded rayon pool (honoring
/// `options.threads`). Trial `t` is seeded from `(options.seed, t)`
/// alone, so the result is identical for every thread count.
pub fn build_trials(network: Network, options: &ExpOptions) -> Vec<Trial> {
    options.install(|| {
        (0..options.trials)
            .into_par_iter()
            .map(|t| build_trial(network, options, t))
            .collect()
    })
}

/// [`build_trial`] generalized over the forward diffusion model: same
/// network generation, same seeding scheme, but the outbreak is
/// simulated by `model`. With MFC this is bit-identical to
/// [`build_trial`]; the detector bakeoff uses it to grade estimators
/// under outbreaks their assumptions were not built for.
pub fn build_trial_with_model(
    network: Network,
    options: &ExpOptions,
    t: usize,
    model: &dyn DiffusionModel,
) -> Trial {
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(t as u64));
    let social = network.generate(options.scale, &mut rng);
    let config = ScenarioConfig {
        n_initiators: options.initiators_for(network),
        ..ScenarioConfig::default()
    };
    let scenario = build_scenario_with_model(&social, &config, model, &mut rng);
    let truth_pairs = scenario.ground_truth_pairs();
    let truth_ids = scenario.ground_truth.nodes().collect();
    Trial {
        scenario,
        truth_pairs,
        truth_ids,
    }
}

/// [`build_trials`] generalized over the forward diffusion model; see
/// [`build_trial_with_model`].
pub fn build_trials_with_model(
    network: Network,
    options: &ExpOptions,
    model: &(dyn DiffusionModel + Sync),
) -> Vec<Trial> {
    options.install(|| {
        (0..options.trials)
            .into_par_iter()
            .map(|t| build_trial_with_model(network, options, t, model))
            .collect()
    })
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Identity metrics of one detector over a set of trials.
pub fn evaluate_identity_over_trials(
    detector: &dyn InitiatorDetector,
    trials: &[Trial],
) -> (Vec<Prf>, Vec<usize>) {
    trials
        .iter()
        .map(|trial| {
            let detection = detector.detect(&trial.scenario.snapshot);
            let prf = evaluate_identities(&detection.nodes(), &trial.truth_ids);
            (prf, detection.len())
        })
        .unzip()
}

/// State metrics of one detector over a set of trials (over correctly
/// identified initiators, per §IV-D1). Trials where nothing was
/// correctly identified produce no sample.
pub fn evaluate_states_over_trials(
    detector: &dyn InitiatorDetector,
    trials: &[Trial],
) -> Vec<StateMetrics> {
    trials
        .iter()
        .filter_map(|trial| {
            let detection = detector.detect(&trial.scenario.snapshot);
            let pairs: Vec<(NodeId, i8)> = detection
                .initiators
                .iter()
                .filter_map(|d| d.state.opinion().map(|s| (d.node, s)))
                .collect();
            let (_, states) = evaluate_detection(&pairs, &trial.truth_pairs);
            states
        })
        .collect()
}

/// The comparison detectors of Figure 4. `betas` follows the paper
/// (`0.09`, `0.1`) plus the calibrated equivalents for the synthetic
/// weight scale (see EXPERIMENTS.md); `alpha` is the paper's `3`.
pub fn figure4_detectors() -> Vec<Box<dyn InitiatorDetector>> {
    let alpha = 3.0;
    vec![
        Box::new(Rid::new(alpha, 0.09).expect("valid params")),
        Box::new(Rid::new(alpha, 0.1).expect("valid params")),
        Box::new(Rid::new(alpha, 2.5).expect("valid params")),
        Box::new(Rid::new(alpha, 3.0).expect("valid params")),
        Box::new(RidTree::new(alpha).expect("valid params")),
        Box::new(RidPositive::new()),
        // Extra baseline from the related work the paper discusses (§V):
        // Shah & Zaman's unsigned single-source estimator.
        Box::new(RumorCentrality::new()),
    ]
}

/// The β sweep of Figures 5–6: the paper's `[0, 1]` range plus the
/// extension that covers the synthetic networks' transition region.
pub const BETA_SWEEP: [f64; 15] = [
    0.0, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.5, 2.0, 3.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_defaults_and_flags() {
        let opts = ExpOptions::parse(Vec::<String>::new());
        assert_eq!(opts, ExpOptions::default());
        let opts = ExpOptions::parse(
            ["--scale", "0.05", "--trials", "2", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.scale, 0.05);
        assert_eq!(opts.trials, 2);
        assert_eq!(opts.seed, 9);
        let opts = ExpOptions::parse(["--full".to_string()]);
        assert_eq!(opts.scale, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must lie")]
    fn options_reject_bad_scale() {
        ExpOptions::parse(["--scale".to_string(), "2.0".to_string()]);
    }

    #[test]
    fn initiator_count_scales() {
        let opts = ExpOptions {
            scale: 0.1,
            ..ExpOptions::default()
        };
        assert_eq!(opts.initiators_for(Network::Epinions), 100);
        let opts = ExpOptions {
            scale: 1.0,
            ..ExpOptions::default()
        };
        assert_eq!(opts.initiators_for(Network::Slashdot), 1000);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn trial_is_deterministic() {
        let opts = ExpOptions {
            scale: 0.005,
            trials: 1,
            seed: 4,
            ..ExpOptions::default()
        };
        let a = build_trial(Network::Epinions, &opts, 0);
        let b = build_trial(Network::Epinions, &opts, 0);
        assert_eq!(a.truth_ids, b.truth_ids);
        assert_eq!(a.scenario.snapshot, b.scenario.snapshot);
    }

    #[test]
    fn end_to_end_smoke() {
        let opts = ExpOptions {
            scale: 0.01,
            trials: 2,
            seed: 1,
            ..ExpOptions::default()
        };
        let trials = build_trials(Network::Slashdot, &opts);
        assert_eq!(trials.len(), 2);
        let detector = RidTree::new(3.0).unwrap();
        let (prfs, counts) = evaluate_identity_over_trials(&detector, &trials);
        assert_eq!(prfs.len(), 2);
        assert_eq!(counts.len(), 2);
        // RID-Tree only reports no-in-link roots: perfect precision.
        for prf in prfs {
            assert!(prf.precision > 0.99 || prf.precision == 0.0);
        }
    }
}
