//! Benchmark and experiment reporting: every harness run serializes its
//! results to a `BENCH_<name>.json` artifact (see the crate docs for the
//! schema) so CI can upload machine-readable numbers next to the
//! human-readable stdout tables.
//!
//! The timing side ([`Harness`] / [`Group`] / [`Bencher`]) keeps the
//! criterion call shape (`benchmark_group` → `bench_function` /
//! `bench_with_input` → `b.iter(...)`) so the `benches/` sources read
//! the same as before the offline port, while recording criterion-style
//! summary statistics (mean / std / min / max nanoseconds per
//! iteration) instead of full sample dumps.

use isomit_graph::json::Value;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Directory override for report artifacts; falls back to the nearest
/// ancestor of the current directory containing a `Cargo.lock` — the
/// repo root whether the binary runs under `cargo run` (cwd = workspace
/// root) or `cargo bench` (cwd = package dir).
pub const BENCH_DIR_ENV: &str = "ISOMIT_BENCH_DIR";

/// Nearest ancestor of the current directory containing a `Cargo.lock`,
/// or `.` when there is none (e.g. an installed binary run elsewhere).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return PathBuf::from("."),
        }
    }
}

/// Summary statistics of one timed benchmark, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Number of measured iterations.
    pub samples: usize,
    /// Mean wall-clock time per iteration.
    pub mean_ns: f64,
    /// Population standard deviation across iterations.
    pub std_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl TimingStats {
    /// Summarizes a sample of per-iteration durations (nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `samples_ns` is empty.
    pub fn from_samples(samples_ns: &[f64]) -> Self {
        assert!(
            !samples_ns.is_empty(),
            "timing requires at least one sample"
        );
        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        TimingStats {
            samples: samples_ns.len(),
            mean_ns: mean,
            std_ns: var.sqrt(),
            min_ns: samples_ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: samples_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    fn to_json_value(self) -> Value {
        Value::Object(vec![
            ("samples".into(), Value::Number(self.samples as f64)),
            ("mean_ns".into(), Value::Number(self.mean_ns)),
            ("std_ns".into(), Value::Number(self.std_ns)),
            ("min_ns".into(), Value::Number(self.min_ns)),
            ("max_ns".into(), Value::Number(self.max_ns)),
        ])
    }
}

/// One line of a report: a timing result, a set of experiment metrics,
/// or both.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Logical group (criterion group name or experiment section).
    pub group: String,
    /// Identifier within the group.
    pub id: String,
    /// Named scalar metrics (precision, node counts, speedups, ...).
    pub metrics: Vec<(String, f64)>,
    /// Timing statistics, for timed benchmarks.
    pub timing: Option<TimingStats>,
}

impl BenchEntry {
    fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("group".into(), Value::String(self.group.clone())),
            ("id".into(), Value::String(self.id.clone())),
        ];
        if !self.metrics.is_empty() {
            fields.push((
                "metrics".into(),
                Value::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Number(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(t) = self.timing {
            fields.push(("timing".into(), t.to_json_value()));
        }
        Value::Object(fields)
    }
}

/// An accumulating report, written out as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    name: String,
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Creates an empty report; `name` becomes the artifact file name
    /// (`BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The report name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entries recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Records experiment metrics under `group`/`id`.
    pub fn add_metrics(
        &mut self,
        group: impl Into<String>,
        id: impl Into<String>,
        metrics: Vec<(String, f64)>,
    ) {
        self.entries.push(BenchEntry {
            group: group.into(),
            id: id.into(),
            metrics,
            timing: None,
        });
    }

    /// Records metrics *and* a timing result as one entry under
    /// `group`/`id` — for experiment cells that report both quality
    /// scores and a latency distribution (e.g. the detector bakeoff).
    pub fn add_entry(
        &mut self,
        group: impl Into<String>,
        id: impl Into<String>,
        metrics: Vec<(String, f64)>,
        timing: TimingStats,
    ) {
        self.entries.push(BenchEntry {
            group: group.into(),
            id: id.into(),
            metrics,
            timing: Some(timing),
        });
    }

    /// Records a timing result under `group`/`id`.
    pub fn add_timing(
        &mut self,
        group: impl Into<String>,
        id: impl Into<String>,
        timing: TimingStats,
    ) {
        self.entries.push(BenchEntry {
            group: group.into(),
            id: id.into(),
            metrics: Vec::new(),
            timing: Some(timing),
        });
    }

    /// Serializes the report (see the crate docs for the schema).
    pub fn to_json_string(&self) -> String {
        let created = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Value::Object(vec![
            ("schema".into(), Value::String("isomit-bench/1".into())),
            ("name".into(), Value::String(self.name.clone())),
            ("created_unix".into(), Value::Number(created as f64)),
            (
                "threads".into(),
                Value::Number(rayon::current_num_threads() as f64),
            ),
            (
                "entries".into(),
                Value::Array(self.entries.iter().map(|e| e.to_json_value()).collect()),
            ),
        ])
        .to_json()
    }

    /// The artifact path this report writes to: `BENCH_<name>.json` in
    /// [`BENCH_DIR_ENV`], or in the nearest ancestor directory holding a
    /// `Cargo.lock` (the workspace root; `cargo bench` sets the cwd to
    /// the *package* dir), or the current directory as a last resort.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var(BENCH_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root());
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the artifact and returns its path, creating the target
    /// directory if necessary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }
}

/// Identifier of one benchmark within a group — same call shape as
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A compound id `<name>/<parameter>`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Default measured iterations per benchmark; override per group with
/// [`Group::sample_size`].
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level timing harness, the criterion stand-in driving the
/// `benches/` targets. Create one, open groups, and call
/// [`finish`](Harness::finish) to write the `BENCH_<name>.json`
/// artifact.
#[derive(Debug)]
pub struct Harness {
    report: BenchReport,
}

impl Harness {
    /// Creates a harness whose artifact will be `BENCH_<name>.json`.
    pub fn new(name: impl Into<String>) -> Self {
        Harness {
            report: BenchReport::new(name),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            report: &mut self.report,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Writes the artifact and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let path = self.report.write()?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct Group<'a> {
    report: &'a mut BenchReport,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the measured iterations per benchmark in this group.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` (which must call [`Bencher::iter`]) and records the
    /// result under this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let stats = TimingStats::from_samples(&bencher.samples_ns);
        println!(
            "{}/{}: mean {:.1} µs (±{:.1}, n={})",
            self.name,
            id,
            stats.mean_ns / 1e3,
            stats.std_ns / 1e3,
            stats.samples
        );
        self.report.add_timing(&self.name, id.to_string(), stats);
    }

    /// Like [`bench_function`](Group::bench_function) with an explicit
    /// input handed through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (criterion-compatible no-op; results were already
    /// recorded per benchmark).
    pub fn finish(self) {}
}

/// Collects per-iteration timings for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` for one warm-up iteration and then `sample_size` timed
    /// iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        self.samples_ns.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (forwarding to [`std::hint::black_box`]).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::json::Value;

    #[test]
    fn timing_stats_summarize() {
        let stats = TimingStats::from_samples(&[10.0, 20.0, 30.0]);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.mean_ns, 20.0);
        assert_eq!(stats.min_ns, 10.0);
        assert_eq!(stats.max_ns, 30.0);
        assert!((stats.std_ns - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn report_serializes_to_schema() {
        let mut report = BenchReport::new("unit");
        report.add_metrics(
            "g",
            "exp",
            vec![("precision".into(), 0.75), ("nodes".into(), 42.0)],
        );
        report.add_timing("g", "timed", TimingStats::from_samples(&[5.0, 7.0]));
        let doc = Value::parse(&report.to_json_string()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("isomit-bench/1"));
        assert_eq!(doc.get("name").unwrap().as_str(), Some("unit"));
        assert!(doc.get("threads").unwrap().as_usize().unwrap() >= 1);
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0]
                .get("metrics")
                .unwrap()
                .get("precision")
                .unwrap()
                .as_f64(),
            Some(0.75)
        );
        assert_eq!(
            entries[1]
                .get("timing")
                .unwrap()
                .get("samples")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert!(entries[1].get("metrics").is_none());
    }

    #[test]
    fn harness_records_benchmarks() {
        let mut harness = Harness::new("unit_harness");
        let mut group = harness.benchmark_group("math");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
        let entries = harness.report.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "add");
        assert_eq!(entries[1].id, "mul/7");
        assert_eq!(entries[1].timing.unwrap().samples, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dp", 128).to_string(), "dp/128");
        assert_eq!(BenchmarkId::from_parameter(50_000).to_string(), "50000");
    }

    #[test]
    fn artifact_path_honors_env_dir() {
        let report = BenchReport::new("pathcheck");
        // Not setting the env var here (tests run in parallel); the
        // default path lands next to a Cargo.lock, never inside a
        // package subdirectory.
        if std::env::var(BENCH_DIR_ENV).is_err() {
            let path = report.path();
            assert_eq!(path.file_name().unwrap(), "BENCH_pathcheck.json");
            let dir = path.parent().unwrap();
            assert!(
                dir.as_os_str() == "." || dir.join("Cargo.lock").is_file(),
                "unexpected artifact dir {dir:?}"
            );
        }
    }
}
