//! Reproduces **Table II** (dataset statistics): generates the
//! Epinions-like and Slashdot-like networks and prints their statistics
//! next to the published numbers.
//!
//! Run `--full` for the paper's exact sizes (a few seconds); the default
//! `--scale 0.1` keeps the same shape at a tenth of the nodes.

use isomit_bench::report::BenchReport;
use isomit_bench::{ExpOptions, Network};
use isomit_graph::GraphStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    let mut report = BenchReport::new("table2");
    println!(
        "== Table II: properties of different networks (scale {}) ==",
        opts.scale
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "network", "# nodes", "# links", "paper n", "paper m", "% pos", "link type"
    );
    let paper = [
        (Network::Epinions, 131_828usize, 841_372usize, 85.3),
        (Network::Slashdot, 77_350, 516_575, 77.4),
    ];
    for (network, paper_nodes, paper_links, paper_pos) in paper {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let g = network.generate(opts.scale, &mut rng);
        let stats = GraphStats::compute(&g);
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8.1} {:>10}",
            network.name(),
            stats.nodes,
            stats.edges,
            (paper_nodes as f64 * opts.scale) as usize,
            (paper_links as f64 * opts.scale) as usize,
            stats.positive_fraction * 100.0,
            "directed",
        );
        println!(
            "           degree: out mean {:.2} max {}, in mean {:.2} max {} (paper positive fraction {:.1}%)",
            stats.out_degree.mean,
            stats.out_degree.max,
            stats.in_degree.mean,
            stats.in_degree.max,
            paper_pos,
        );
        report.add_metrics(
            "table2",
            network.name(),
            vec![
                ("scale".into(), opts.scale),
                ("nodes".into(), stats.nodes as f64),
                ("edges".into(), stats.edges as f64),
                ("positive_fraction".into(), stats.positive_fraction),
                ("paper_nodes".into(), paper_nodes as f64),
                ("paper_links".into(), paper_links as f64),
                ("paper_positive_fraction".into(), paper_pos / 100.0),
                ("out_degree_mean".into(), stats.out_degree.mean),
                ("in_degree_mean".into(), stats.in_degree.mean),
            ],
        );
    }
    let path = report.write().expect("write bench artifact");
    println!("\nwrote {}", path.display());
}
