//! Benchmarks the Monte-Carlo estimators and writes
//! `BENCH_montecarlo.json` with two groups:
//!
//! * `mc` — the scalar per-trial estimator, sequential vs rayon
//!   parallel, verified bit-identical for the same master seed;
//! * `montecarlo_wide` — the 64-lane bitplane engine, sequential and
//!   parallel, verified bit-identical to its retained scalar reference
//!   ([`estimate_infection_probabilities_wide_reference`]) and timed
//!   against the scalar `mc` path to report the wide speedup that
//!   `cargo run -p xtask -- bench-check` gates on.
//!
//! A `speedup` metric is only recorded for parallel-vs-sequential
//! comparisons taken with **two or more** rayon threads: a 1-thread
//! "parallel" run measures scheduling overhead, not parallelism, and
//! labeling it a speedup corrupts the regression baseline. The
//! wide-vs-scalar `speedup` is thread-independent (both sides
//! sequential) and always recorded.
//!
//! Accepts the common options (`--scale`, `--trials` as MC-run
//! multiplier, `--seed`, `--threads`); the run count is
//! `1000 · trials`, clamped to at least 1000.

use isomit_bench::report::{BenchReport, TimingStats};
use isomit_bench::{ExpOptions, Network};
use isomit_datasets::paper_weights;
use isomit_diffusion::{
    estimate_infection_probabilities_seeded, estimate_infection_probabilities_wide,
    estimate_infection_probabilities_wide_reference, par_estimate_infection_probabilities,
    par_estimate_infection_probabilities_wide, Mfc, SeedSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    let runs = (1000 * opts.trials).max(1000);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let social = Network::Epinions.generate(opts.scale, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    let n_seeds = opts.initiators_for(Network::Epinions);
    let seeds = SeedSet::sample(&diffusion, n_seeds, 0.5, &mut rng);
    let model = Mfc::new(3.0).expect("valid alpha");

    opts.install(|| {
        let threads = rayon::current_num_threads();
        println!(
            "== Monte-Carlo estimators: {} runs, {} nodes, {} threads ==",
            runs,
            diffusion.node_count(),
            threads
        );

        // -- scalar path: sequential reference vs rayon parallel --
        let t0 = Instant::now();
        let sequential =
            estimate_infection_probabilities_seeded(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let seq_ns = t0.elapsed().as_nanos() as f64;

        let t1 = Instant::now();
        let parallel =
            par_estimate_infection_probabilities(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let par_ns = t1.elapsed().as_nanos() as f64;

        assert_eq!(
            sequential, parallel,
            "parallel estimate must be bit-identical to the sequential reference"
        );
        if threads >= 2 {
            println!(
                "scalar: sequential {:.1} ms, parallel {:.1} ms, speedup {:.2}x — bit-identical",
                seq_ns / 1e6,
                par_ns / 1e6,
                seq_ns / par_ns
            );
        } else {
            println!(
                "scalar: sequential {:.1} ms, parallel {:.1} ms (1 thread: no speedup recorded) — bit-identical",
                seq_ns / 1e6,
                par_ns / 1e6,
            );
        }

        // -- wide path: 64-lane bitplanes vs its scalar oracle --
        let t2 = Instant::now();
        let wide_seq =
            estimate_infection_probabilities_wide(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let wide_seq_ns = t2.elapsed().as_nanos() as f64;

        let t3 = Instant::now();
        let wide_par =
            par_estimate_infection_probabilities_wide(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let wide_par_ns = t3.elapsed().as_nanos() as f64;

        let t4 = Instant::now();
        let wide_ref = estimate_infection_probabilities_wide_reference(
            &model, &diffusion, &seeds, runs, opts.seed,
        )
        .expect("sampled seeds lie within the diffusion network");
        let wide_ref_ns = t4.elapsed().as_nanos() as f64;

        assert_eq!(
            wide_seq, wide_ref,
            "wide estimate must be bit-identical to the scalar wide reference"
        );
        assert_eq!(
            wide_seq, wide_par,
            "parallel wide estimate must be bit-identical to the sequential wide path"
        );
        // Wide speedup over the production scalar estimator: both sides
        // sequential, so the figure is meaningful at any thread count.
        let wide_speedup = seq_ns / wide_seq_ns;
        println!(
            "wide: sequential {:.1} ms, parallel {:.1} ms, scalar-oracle {:.1} ms — bit-identical",
            wide_seq_ns / 1e6,
            wide_par_ns / 1e6,
            wide_ref_ns / 1e6,
        );
        println!("wide-vs-scalar speedup {wide_speedup:.2}x (sequential both sides)");

        let mut report = BenchReport::new("montecarlo");
        report.add_timing(
            "mc",
            "sequential",
            TimingStats::from_samples(&[seq_ns / runs as f64]),
        );
        report.add_timing(
            "mc",
            "parallel",
            TimingStats::from_samples(&[par_ns / runs as f64]),
        );
        let mut scalar_summary = vec![
            ("runs".into(), runs as f64),
            ("nodes".into(), diffusion.node_count() as f64),
            ("threads".into(), threads as f64),
            ("sequential_ns".into(), seq_ns),
            ("parallel_ns".into(), par_ns),
            ("bit_identical".into(), 1.0),
            ("expected_infected".into(), parallel.expected_infected()),
        ];
        if threads >= 2 {
            scalar_summary.push(("speedup".into(), seq_ns / par_ns));
        }
        report.add_metrics("mc", "summary", scalar_summary);

        report.add_timing(
            "montecarlo_wide",
            "sequential",
            TimingStats::from_samples(&[wide_seq_ns / runs as f64]),
        );
        report.add_timing(
            "montecarlo_wide",
            "parallel",
            TimingStats::from_samples(&[wide_par_ns / runs as f64]),
        );
        report.add_timing(
            "montecarlo_wide",
            "scalar_reference",
            TimingStats::from_samples(&[wide_ref_ns / runs as f64]),
        );
        let mut wide_summary = vec![
            ("runs".into(), runs as f64),
            ("nodes".into(), diffusion.node_count() as f64),
            ("threads".into(), threads as f64),
            ("sequential_ns".into(), wide_seq_ns),
            ("parallel_ns".into(), wide_par_ns),
            ("scalar_reference_ns".into(), wide_ref_ns),
            ("speedup".into(), wide_speedup),
            ("bit_identical".into(), 1.0),
            ("expected_infected".into(), wide_par.expected_infected()),
        ];
        if threads >= 2 {
            wide_summary.push(("par_speedup".into(), wide_seq_ns / wide_par_ns));
        }
        report.add_metrics("montecarlo_wide", "summary", wide_summary);

        let path = report.write().expect("write bench artifact");
        println!("wrote {}", path.display());
    });
}
