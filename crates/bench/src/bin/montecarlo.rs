// lint:allow-file(panic) benchmark harness: fails fast on bad CLI options, IO errors, and fixed known-valid parameters rather than threading Result through experiment drivers
//! Benchmarks the deterministic parallel Monte-Carlo estimator against
//! the sequential reference: verifies **bit-identical** output for the
//! same master seed, times both paths, and writes the speedup to
//! `BENCH_montecarlo.json`.
//!
//! Accepts the common options (`--scale`, `--trials` as MC-run
//! multiplier, `--seed`, `--threads`); the run count is
//! `1000 · trials`, clamped to at least 1000.

use isomit_bench::report::{BenchReport, TimingStats};
use isomit_bench::{ExpOptions, Network};
use isomit_datasets::paper_weights;
use isomit_diffusion::{
    estimate_infection_probabilities_seeded, par_estimate_infection_probabilities, Mfc, SeedSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    let runs = (1000 * opts.trials).max(1000);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let social = Network::Epinions.generate(opts.scale, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    let n_seeds = opts.initiators_for(Network::Epinions);
    let seeds = SeedSet::sample(&diffusion, n_seeds, 0.5, &mut rng);
    let model = Mfc::new(3.0).expect("valid alpha");

    opts.install(|| {
        let threads = rayon::current_num_threads();
        println!(
            "== Monte-Carlo estimator: {} runs, {} nodes, {} threads ==",
            runs,
            diffusion.node_count(),
            threads
        );

        let t0 = Instant::now();
        let sequential =
            estimate_infection_probabilities_seeded(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let seq_ns = t0.elapsed().as_nanos() as f64;

        let t1 = Instant::now();
        let parallel =
            par_estimate_infection_probabilities(&model, &diffusion, &seeds, runs, opts.seed)
                .expect("sampled seeds lie within the diffusion network");
        let par_ns = t1.elapsed().as_nanos() as f64;

        assert_eq!(
            sequential, parallel,
            "parallel estimate must be bit-identical to the sequential reference"
        );
        let speedup = seq_ns / par_ns;
        println!(
            "sequential {:.1} ms, parallel {:.1} ms, speedup {:.2}x — estimates bit-identical",
            seq_ns / 1e6,
            par_ns / 1e6,
            speedup
        );

        let mut report = BenchReport::new("montecarlo");
        report.add_timing(
            "mc",
            "sequential",
            TimingStats::from_samples(&[seq_ns / runs as f64]),
        );
        report.add_timing(
            "mc",
            "parallel",
            TimingStats::from_samples(&[par_ns / runs as f64]),
        );
        report.add_metrics(
            "mc",
            "summary",
            vec![
                ("runs".into(), runs as f64),
                ("nodes".into(), diffusion.node_count() as f64),
                ("threads".into(), threads as f64),
                ("sequential_ns".into(), seq_ns),
                ("parallel_ns".into(), par_ns),
                ("speedup".into(), speedup),
                ("bit_identical".into(), 1.0),
                ("expected_infected".into(), parallel.expected_infected()),
            ],
        );
        let path = report.write().expect("write bench artifact");
        println!("wrote {}", path.display());
    });
}
