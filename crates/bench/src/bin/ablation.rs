//! Ablation study of RID's design choices (the knobs DESIGN.md calls
//! out): the per-tree objective (the paper's probability-sum vs the
//! maximum-likelihood reading) and the external-support term of the
//! probability-sum DP — each evaluated across the β sweep.
//!
//! Expected outcome: probability-sum + support dominates at matched
//! detection counts; removing support shifts splits away from
//! well-explained dense regions; the log-likelihood objective needs much
//! larger β for comparable behaviour.

use isomit_bench::{build_trials, evaluate_identity_over_trials, mean_std, ExpOptions, Network};
use isomit_core::{Rid, RidObjective};

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    println!(
        "== Ablation: RID design choices (scale {}, {} trials) ==",
        opts.scale, opts.trials
    );
    type MakeRid = Box<dyn Fn(f64) -> Rid>;
    let variants: Vec<(&str, MakeRid)> = vec![
        (
            "prob-sum + support",
            Box::new(|beta| Rid::new(3.0, beta).expect("valid")),
        ),
        (
            "prob-sum, no support",
            Box::new(|beta| {
                Rid::new(3.0, beta)
                    .expect("valid")
                    .with_external_support(false)
            }),
        ),
        (
            "log-likelihood",
            Box::new(|beta| {
                Rid::new(3.0, beta)
                    .expect("valid")
                    .with_objective(RidObjective::LogLikelihood)
            }),
        ),
    ];
    for network in Network::ALL {
        let trials = build_trials(network, &opts);
        println!("\n-- {} --", network.name());
        for (label, make) in &variants {
            println!("{label}:");
            println!(
                "  {:>6} {:>9} {:>12} {:>12} {:>12}",
                "beta", "detected", "precision", "recall", "F1"
            );
            for beta in [0.5, 1.0, 2.0, 3.0, 5.0] {
                let detector = make(beta);
                let (prfs, counts) = evaluate_identity_over_trials(&detector, &trials);
                let (p, _) = mean_std(&prfs.iter().map(|x| x.precision).collect::<Vec<_>>());
                let (r, _) = mean_std(&prfs.iter().map(|x| x.recall).collect::<Vec<_>>());
                let (f, _) = mean_std(&prfs.iter().map(|x| x.f1).collect::<Vec<_>>());
                let (c, _) = mean_std(&counts.iter().map(|&x| x as f64).collect::<Vec<_>>());
                println!(
                    "  {:>6.2} {:>9.0} {:>12.3} {:>12.3} {:>12.3}",
                    beta, c, p, r, f
                );
            }
        }
    }
}
