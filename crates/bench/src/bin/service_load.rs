//! Load generator for the `isomit-service` daemon: starts an in-process
//! [`Server`] on an ephemeral loopback port, drives it with concurrent
//! TCP clients at several concurrency levels, verifies **every** served
//! answer against the precomputed in-process result, and writes
//! p50/p95/p99 latency + throughput + cache statistics to
//! `BENCH_service.json`. The server's merged telemetry registry —
//! per-stage histograms included — lands in the report's `telemetry`
//! section and, in raw form, in `STATS_service.json` next to it.
//!
//! Options: `--scale S` (network scale, default 0.02), `--seed N`,
//! `--requests N` (requests **per connection** per level, default 125 —
//! so the top level, 8 connections, issues 1000), `--snapshots N`
//! (distinct snapshots cycled through, default 8).

use isomit_bench::report::BenchReport;
use isomit_core::{InitiatorDetector, Rid, RidConfig};
use isomit_diffusion::InfectedNetwork;
use isomit_service::{Client, RidEngine, Server, ServerConfig};
use isomit_telemetry::names;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Concurrency levels exercised, in order.
const LEVELS: [usize; 4] = [1, 2, 4, 8];

struct Options {
    scale: f64,
    seed: u64,
    requests: usize,
    snapshots: usize,
}

impl Options {
    fn parse(mut args: std::env::Args) -> Options {
        let mut opts = Options {
            scale: 0.02,
            seed: 7,
            requests: 125,
            snapshots: 8,
        };
        args.next(); // program name
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => opts.scale = value("--scale").parse().expect("--scale: f64"),
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: u64"),
                "--requests" => {
                    opts.requests = value("--requests").parse().expect("--requests: usize")
                }
                "--snapshots" => {
                    opts.snapshots = value("--snapshots").parse().expect("--snapshots: usize")
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        assert!(opts.requests > 0, "--requests must be positive");
        assert!(opts.snapshots > 0, "--snapshots must be positive");
        opts
    }
}

/// Latency percentile by nearest-rank over a sorted sample, in ns.
fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns
        .get(rank)
        .copied()
        .expect("nearest-rank index is below the sample length")
}

fn main() {
    let opts = Options::parse(std::env::args());

    // The served network and the verification oracle share one build.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let social = isomit_datasets::epinions_like_scaled(opts.scale, &mut rng);
    let graph = isomit_datasets::paper_weights(&social, &mut rng);
    println!(
        "== service load: {} nodes / {} edges, {} snapshots, {} requests/conn ==",
        graph.node_count(),
        graph.edge_count(),
        opts.snapshots,
        opts.requests
    );

    // Distinct snapshots plus their in-process ground-truth answers.
    let oracle = Rid::from_config(RidConfig::default()).expect("valid config");
    let cases: Vec<(InfectedNetwork, String)> = (0..opts.snapshots)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (0xA5A5 + i as u64));
            let social = isomit_datasets::epinions_like_scaled(opts.scale, &mut rng);
            let scenario = isomit_datasets::build_scenario(
                &social,
                &isomit_datasets::ScenarioConfig::small(),
                &mut rng,
            );
            let expected = oracle.detect(&scenario.snapshot).to_json_value().to_json();
            (scenario.snapshot, expected)
        })
        .collect();

    let engine = Arc::new(
        RidEngine::new(graph, RidConfig::default(), 2 * opts.snapshots).expect("valid config"),
    );
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback listener");
    let addr = server.local_addr();

    let mut report = BenchReport::new("service");
    let mut total_wrong = 0usize;
    for level in LEVELS {
        let total_requests = level * opts.requests;
        let started = Instant::now();
        // Each connection measures its own request latencies; wrong
        // answers are counted, never tolerated.
        let per_conn: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..level)
                .map(|conn| {
                    let cases = &cases;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut latencies = Vec::with_capacity(opts.requests);
                        let mut wrong = 0usize;
                        for round in 0..opts.requests {
                            let (snapshot, expected) = cases
                                .get((conn + round) % cases.len())
                                .expect("index is reduced modulo cases.len()");
                            let t0 = Instant::now();
                            let result = client.rid(snapshot, None).expect("rid request");
                            latencies.push(t0.elapsed().as_nanos() as f64);
                            if &result.detection.to_json_value().to_json() != expected {
                                wrong += 1;
                            }
                        }
                        (latencies, wrong)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64();

        let mut all: Vec<f64> = per_conn
            .iter()
            .flat_map(|(l, _)| l.iter().copied())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let wrong: usize = per_conn.iter().map(|(_, w)| w).sum();
        total_wrong += wrong;
        let p50 = percentile(&all, 0.50);
        let p95 = percentile(&all, 0.95);
        let p99 = percentile(&all, 0.99);
        let rps = total_requests as f64 / elapsed;
        println!(
            "c={level}: {total_requests} reqs in {elapsed:.2}s — {rps:.0} req/s, \
             p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, wrong={wrong}",
            p50 / 1e6,
            p95 / 1e6,
            p99 / 1e6
        );
        report.add_metrics(
            "rid_load",
            format!("c{level}"),
            vec![
                ("connections".into(), level as f64),
                ("requests".into(), total_requests as f64),
                ("p50_ns".into(), p50),
                ("p95_ns".into(), p95),
                ("p99_ns".into(), p99),
                ("rps".into(), rps),
                ("wrong_answers".into(), wrong as f64),
            ],
        );
    }

    // Engine-side counters after the full run.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    println!(
        "engine: {} rid requests, cache {} hits / {} misses / {} evictions (hit rate {:.3})",
        stats.rid_requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.hit_rate()
    );
    report.add_metrics(
        "engine",
        "stats",
        vec![
            ("rid_requests".into(), stats.rid_requests as f64),
            ("cache_hits".into(), stats.cache_hits as f64),
            ("cache_misses".into(), stats.cache_misses as f64),
            ("cache_evictions".into(), stats.cache_evictions as f64),
            ("cache_hit_rate".into(), stats.hit_rate()),
        ],
    );
    // Per-stage latency histograms from the merged telemetry registry:
    // where a request's time goes (queue wait, extraction, DP), not just
    // how long the round-trip took.
    let telemetry = client.telemetry().expect("telemetry snapshot");
    for name in [
        names::SERVICE_REQUEST_NS,
        names::SERVICE_QUEUE_WAIT_NS,
        names::RID_EXTRACT_STAGE_NS,
        names::RID_QUERY_STAGE_NS,
        names::MC_BATCH_NS,
    ] {
        let Some(h) = telemetry.histogram(name) else {
            continue;
        };
        let (Some(p50), Some(p95), Some(p99)) = (h.p50(), h.p95(), h.p99()) else {
            continue;
        };
        println!(
            "telemetry {name}: p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms (n={})",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6,
            p99 as f64 / 1e6,
            h.count()
        );
        report.add_metrics(
            "telemetry",
            name,
            vec![
                ("count".into(), h.count() as f64),
                ("p50_ns".into(), p50 as f64),
                ("p95_ns".into(), p95 as f64),
                ("p99_ns".into(), p99 as f64),
            ],
        );
    }
    let stats_path = report.path().with_file_name("STATS_service.json");
    if let Some(dir) = stats_path.parent() {
        // This write can precede report.write(), which is what otherwise
        // creates a fresh ISOMIT_BENCH_DIR.
        std::fs::create_dir_all(dir).expect("create bench output dir");
    }
    std::fs::write(&stats_path, telemetry.to_json_string()).expect("write STATS_service.json");
    println!("wrote {}", stats_path.display());

    client.shutdown().expect("shutdown");
    server.join();

    assert_eq!(
        total_wrong, 0,
        "served answers diverged from the in-process pipeline"
    );
    report.write().expect("write BENCH_service.json");
    println!("wrote {}", report.path().display());
    println!("all {} answers verified against the in-process pipeline", {
        LEVELS.iter().map(|l| l * opts.requests).sum::<usize>()
    });
}
