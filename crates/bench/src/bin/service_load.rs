//! Load generator for the sharded `isomit-service` daemon: starts an
//! in-process [`Server`] on an ephemeral loopback port, drives it with
//! concurrent TCP clients at several concurrency levels, verifies
//! **every** served answer against the precomputed in-process result,
//! and writes latency/throughput/cache statistics to
//! `BENCH_service.json`. The server's merged telemetry registry —
//! per-stage and per-shard metrics included — lands in the report's
//! `telemetry` section and, in raw form, in `STATS_service.json` next
//! to it.
//!
//! Two phases run per concurrency level:
//!
//! * **mixed** — a hot/cold/watch schedule: most requests are
//!   by-fingerprint lookups served from the shards' result caches, one
//!   in [`COLD_EVERY`] ships the full snapshot through the engine, and
//!   a background connection streams watch deltas throughout. Hot and
//!   cold latencies are reported as **separate** percentile sets so a
//!   p99 regression is attributable to the path that moved.
//! * **hot storm** — by-fingerprint requests only, measuring the
//!   cached-snapshot ceiling. The best storm level defines the
//!   `service`/`summary` `service_rps` and `hot_p99_ns` metrics that
//!   `cargo xtask bench-check` gates on.
//!
//! Options: `--scale S` (network scale, default 0.02), `--seed N`,
//! `--requests N` (requests **per connection** per phase, default 125),
//! `--snapshots N` (distinct snapshots cycled through, default 8).

use isomit_bench::report::BenchReport;
use isomit_core::{InitiatorDetector, Rid, RidConfig, RidDelta};
use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState};
use isomit_service::fingerprint::snapshot_fingerprint;
use isomit_service::protocol::{encode_request, ErrorKind, RequestBody};
use isomit_service::{Client, ClientError, RidEngine, Server, ServerConfig};
use isomit_telemetry::names;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrency levels exercised, in order.
const LEVELS: [usize; 3] = [8, 64, 256];

/// In the mixed phase, every `COLD_EVERY`-th request ships the full
/// snapshot (the cold path); the rest go by fingerprint (the hot path).
const COLD_EVERY: usize = 16;

struct Options {
    scale: f64,
    seed: u64,
    requests: usize,
    snapshots: usize,
}

impl Options {
    fn parse(mut args: std::env::Args) -> Options {
        let mut opts = Options {
            scale: 0.02,
            seed: 7,
            requests: 125,
            snapshots: 8,
        };
        args.next(); // program name
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => opts.scale = value("--scale").parse().expect("--scale: f64"),
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: u64"),
                "--requests" => {
                    opts.requests = value("--requests").parse().expect("--requests: usize")
                }
                "--snapshots" => {
                    opts.snapshots = value("--snapshots").parse().expect("--snapshots: usize")
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        assert!(opts.requests > 0, "--requests must be positive");
        assert!(opts.snapshots > 0, "--snapshots must be positive");
        opts
    }
}

/// Latency percentile by nearest-rank over a sorted sample, in ns.
fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns
        .get(rank)
        .copied()
        .expect("nearest-rank index is below the sample length")
}

fn sorted(mut ns: Vec<f64>) -> Vec<f64> {
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ns
}

/// One benchmark case: a snapshot, its fingerprint, and the expected
/// answer bytes from the in-process oracle.
struct Case {
    snapshot: InfectedNetwork,
    fingerprint: u64,
    expected: String,
    /// The expected reply line minus its `{"id":N` head — everything a
    /// hot-storm client needs to verify a reply with one memcmp, no
    /// JSON parse competing with the server for the core.
    reply_suffix: String,
}

/// Per-connection mixed-phase tally.
#[derive(Default)]
struct ConnTally {
    hot_ns: Vec<f64>,
    cold_ns: Vec<f64>,
    wrong: usize,
    /// Cold requests shed (`overloaded` / `deadline_exceeded`) and
    /// retried after a short backoff — the documented client response
    /// to per-shard admission-control pushback.
    shed_retries: usize,
}

/// Streams cheap valid watch deltas (state flips on one node) until
/// `stop` is set; returns the number of deltas acknowledged.
fn watch_background(addr: std::net::SocketAddr, stop: &AtomicBool) -> u64 {
    let mut client = Client::connect(addr).expect("watch connect");
    // Answer sparsely: the stream is background load, not the metric.
    client
        .watch_open(None, Some(64))
        .expect("watch_open for background stream");
    let mut deltas = 0u64;
    let mut infected = false;
    let mut positive = false;
    while !stop.load(Ordering::Relaxed) {
        let delta = if infected {
            // Alternate the node's state; flipping to the current state
            // would be rejected as a no-op delta.
            positive = !positive;
            RidDelta::FlipState {
                node: NodeId(0),
                state: if positive {
                    NodeState::Positive
                } else {
                    NodeState::Negative
                },
            }
        } else {
            infected = true;
            positive = true;
            RidDelta::Infect {
                node: NodeId(0),
                state: NodeState::Positive,
            }
        };
        match client.watch_delta(&delta) {
            Ok(_) => deltas += 1,
            // Sessions have a bounded lifetime; the server asks the
            // client to reopen. The fresh session starts from an empty
            // infection, so the next delta is an infect again.
            Err(ClientError::Remote(err)) if err.kind == ErrorKind::DeadlineExceeded => {
                client
                    .watch_open(None, Some(64))
                    .expect("reopen expired watch session");
                infected = false;
            }
            Err(err) => panic!("watch_delta #{deltas} failed: {err}"),
        }
    }
    // The session may expire between the last delta and the close;
    // either way the server frees its admission slot.
    let _ = client.watch_close();
    deltas
}

fn main() {
    let opts = Options::parse(std::env::args());

    // The served network and the verification oracle share one build.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let social = isomit_datasets::epinions_like_scaled(opts.scale, &mut rng);
    let graph = isomit_datasets::paper_weights(&social, &mut rng);
    println!(
        "== service load: {} nodes / {} edges, {} snapshots, {} requests/conn ==",
        graph.node_count(),
        graph.edge_count(),
        opts.snapshots,
        opts.requests
    );

    // Distinct snapshots plus their in-process ground-truth answers.
    let oracle = Rid::from_config(RidConfig::default()).expect("valid config");
    let mut cases: Vec<Case> = (0..opts.snapshots)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (0xA5A5 + i as u64));
            let social = isomit_datasets::epinions_like_scaled(opts.scale, &mut rng);
            let scenario = isomit_datasets::build_scenario(
                &social,
                &isomit_datasets::ScenarioConfig::small(),
                &mut rng,
            );
            let expected = oracle.detect(&scenario.snapshot).to_json_value().to_json();
            Case {
                fingerprint: snapshot_fingerprint(&scenario.snapshot),
                snapshot: scenario.snapshot,
                expected,
                reply_suffix: String::new(),
            }
        })
        .collect();

    let engine = Arc::new(
        RidEngine::new(graph, RidConfig::default(), 2 * opts.snapshots).expect("valid config"),
    );
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback listener");
    let addr = server.local_addr();

    // Prime every shard's result cache once, untimed, so hot-path
    // requests in the phases below measure steady state — and capture
    // each case's exact reply bytes for the storm phase's memcmp
    // verification (replies are deterministic; the e2e suite asserts
    // by-fingerprint answers are byte-identical to full-form ones).
    {
        let mut primer = Client::connect(addr).expect("primer connect");
        for case in &cases {
            let served = primer.rid(&case.snapshot, None).expect("priming rid");
            assert_eq!(
                served.detection.to_json_value().to_json(),
                case.expected,
                "priming answer diverged from the in-process pipeline"
            );
        }
        let mut raw = TcpStream::connect(addr).expect("raw primer connect");
        raw.set_nodelay(true).expect("set_nodelay");
        let mut reader = BufReader::new(raw.try_clone().expect("clone raw primer"));
        for (i, case) in cases.iter_mut().enumerate() {
            let id = i as u64 + 1;
            let mut request = encode_request(
                id,
                &RequestBody::RidByFingerprint {
                    fingerprint: case.fingerprint,
                    config: None,
                    detector: None,
                },
            );
            request.push('\n');
            raw.write_all(request.as_bytes()).expect("raw primer write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("raw primer read");
            let head = format!("{{\"id\":{id}");
            let trimmed = reply.trim_end();
            assert!(
                trimmed.starts_with(&head) && trimmed.contains("\"ok\":true"),
                "priming by-fingerprint reply was not ok: {trimmed}"
            );
            assert!(
                trimmed.contains(&case.expected),
                "cached reply does not embed the oracle's detection"
            );
            case.reply_suffix = trimmed
                .get(head.len()..)
                .expect("reply starts with the id head")
                .to_string();
        }
    }

    let mut report = BenchReport::new("service");
    let mut total_wrong = 0usize;
    let mut best_storm: Option<(usize, f64, f64)> = None; // (level, rps, p99)
    for level in LEVELS {
        // --- mixed phase: hot + cold + background watch stream ---
        let total_requests = level * opts.requests;
        let stop = AtomicBool::new(false);
        let started = Instant::now();
        let (tallies, watch_deltas): (Vec<ConnTally>, u64) = std::thread::scope(|scope| {
            let watch = scope.spawn(|| watch_background(addr, &stop));
            let handles: Vec<_> = (0..level)
                .map(|conn| {
                    let cases = &cases;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut tally = ConnTally::default();
                        for round in 0..opts.requests {
                            let case = cases
                                .get((conn + round) % cases.len())
                                .expect("index is reduced modulo cases.len()");
                            let cold = round % COLD_EVERY == 0;
                            let t0 = Instant::now();
                            let result = if cold {
                                loop {
                                    match client.rid(&case.snapshot, None) {
                                        Ok(result) => break result,
                                        // Per-shard admission control
                                        // pushed back; back off and
                                        // retry, as the operations
                                        // playbook prescribes. The
                                        // retries stay inside the timed
                                        // window — shedding is part of
                                        // this request's latency.
                                        Err(ClientError::Remote(err))
                                            if matches!(
                                                err.kind,
                                                ErrorKind::Overloaded | ErrorKind::DeadlineExceeded
                                            ) =>
                                        {
                                            tally.shed_retries += 1;
                                            std::thread::sleep(Duration::from_millis(5));
                                        }
                                        Err(other) => panic!("cold rid failed: {other}"),
                                    }
                                }
                            } else {
                                match client.rid_by_fingerprint(case.fingerprint, None, None) {
                                    Ok(result) => result,
                                    // Evicted between priming and now
                                    // (never at these cache sizes, but
                                    // the fallback is the protocol's
                                    // contract): re-prime via the full
                                    // form.
                                    Err(ClientError::Remote(err))
                                        if err.kind == ErrorKind::UnknownSnapshot =>
                                    {
                                        client.rid(&case.snapshot, None).expect("fallback rid")
                                    }
                                    Err(other) => panic!("hot rid failed: {other}"),
                                }
                            };
                            let elapsed = t0.elapsed().as_nanos() as f64;
                            if cold {
                                tally.cold_ns.push(elapsed);
                            } else {
                                tally.hot_ns.push(elapsed);
                            }
                            if result.detection.to_json_value().to_json() != case.expected {
                                tally.wrong += 1;
                            }
                        }
                        tally
                    })
                })
                .collect();
            let tallies = handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect();
            stop.store(true, Ordering::Relaxed);
            (tallies, watch.join().expect("watch thread"))
        });
        let elapsed = started.elapsed().as_secs_f64();

        let hot = sorted(
            tallies
                .iter()
                .flat_map(|t| t.hot_ns.iter().copied())
                .collect(),
        );
        let cold = sorted(
            tallies
                .iter()
                .flat_map(|t| t.cold_ns.iter().copied())
                .collect(),
        );
        let wrong: usize = tallies.iter().map(|t| t.wrong).sum();
        let shed_retries: usize = tallies.iter().map(|t| t.shed_retries).sum();
        total_wrong += wrong;
        let rps = total_requests as f64 / elapsed;
        println!(
            "mixed c={level}: {total_requests} reqs (+{watch_deltas} watch deltas, \
             {shed_retries} shed retries) in \
             {elapsed:.2}s — {rps:.0} req/s, hot p50 {:.3}ms p99 {:.3}ms, \
             cold p50 {:.2}ms p99 {:.2}ms, wrong={wrong}",
            percentile(&hot, 0.50) / 1e6,
            percentile(&hot, 0.99) / 1e6,
            percentile(&cold, 0.50) / 1e6,
            percentile(&cold, 0.99) / 1e6,
        );
        report.add_metrics(
            "mixed",
            format!("c{level}"),
            vec![
                ("connections".into(), level as f64),
                ("requests".into(), total_requests as f64),
                ("watch_deltas".into(), watch_deltas as f64),
                ("hot_p50_ns".into(), percentile(&hot, 0.50)),
                ("hot_p95_ns".into(), percentile(&hot, 0.95)),
                ("hot_p99_ns".into(), percentile(&hot, 0.99)),
                ("cold_p50_ns".into(), percentile(&cold, 0.50)),
                ("cold_p95_ns".into(), percentile(&cold, 0.95)),
                ("cold_p99_ns".into(), percentile(&cold, 0.99)),
                ("rps".into(), rps),
                ("shed_retries".into(), shed_retries as f64),
                ("wrong_answers".into(), wrong as f64),
            ],
        );

        // --- hot storm: cached-snapshot throughput ceiling ---
        // Raw sockets and memcmp verification against the captured
        // reply bytes: the generator must not spend the (shared) core
        // parsing JSON it already knows byte-for-byte.
        let started = Instant::now();
        let storm: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..level)
                .map(|conn| {
                    let cases = &cases;
                    scope.spawn(move || {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).expect("set_nodelay");
                        let mut reader =
                            BufReader::new(stream.try_clone().expect("clone storm stream"));
                        let mut latencies = Vec::with_capacity(opts.requests);
                        let mut wrong = 0usize;
                        let mut reply = String::new();
                        for round in 0..opts.requests {
                            let case = cases
                                .get((conn + round) % cases.len())
                                .expect("index is reduced modulo cases.len()");
                            let id = round as u64 + 1;
                            let mut request = encode_request(
                                id,
                                &RequestBody::RidByFingerprint {
                                    fingerprint: case.fingerprint,
                                    config: None,
                                    detector: None,
                                },
                            );
                            request.push('\n');
                            let t0 = Instant::now();
                            stream.write_all(request.as_bytes()).expect("storm write");
                            reply.clear();
                            reader.read_line(&mut reply).expect("storm read");
                            latencies.push(t0.elapsed().as_nanos() as f64);
                            let head = format!("{{\"id\":{id}");
                            let trimmed = reply.trim_end();
                            let ok = trimmed.len() == head.len() + case.reply_suffix.len()
                                && trimmed.starts_with(&head)
                                && trimmed.ends_with(case.reply_suffix.as_str());
                            if !ok {
                                wrong += 1;
                            }
                        }
                        (latencies, wrong)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64();
        let all = sorted(storm.iter().flat_map(|(l, _)| l.iter().copied()).collect());
        let wrong: usize = storm.iter().map(|(_, w)| w).sum();
        total_wrong += wrong;
        let rps = total_requests as f64 / elapsed;
        let p99 = percentile(&all, 0.99);
        println!(
            "storm c={level}: {total_requests} reqs in {elapsed:.2}s — {rps:.0} req/s, \
             p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms, wrong={wrong}",
            percentile(&all, 0.50) / 1e6,
            percentile(&all, 0.95) / 1e6,
            p99 / 1e6
        );
        report.add_metrics(
            "hot_storm",
            format!("c{level}"),
            vec![
                ("connections".into(), level as f64),
                ("requests".into(), total_requests as f64),
                ("p50_ns".into(), percentile(&all, 0.50)),
                ("p95_ns".into(), percentile(&all, 0.95)),
                ("p99_ns".into(), p99),
                ("rps".into(), rps),
                ("wrong_answers".into(), wrong as f64),
            ],
        );
        if best_storm.is_none_or(|(_, best_rps, _)| rps > best_rps) {
            best_storm = Some((level, rps, p99));
        }
    }

    // Headline gate metrics: the best hot-storm level's throughput and
    // tail latency. `cargo xtask bench-check` floors/ceils these.
    let (best_level, service_rps, hot_p99_ns) = best_storm.expect("at least one level ran");
    println!(
        "summary: service_rps {service_rps:.0} (hot storm c={best_level}), \
         hot p99 {:.3}ms, wrong={total_wrong}",
        hot_p99_ns / 1e6
    );
    report.add_metrics(
        "service",
        "summary",
        vec![
            ("service_rps".into(), service_rps),
            ("hot_p99_ns".into(), hot_p99_ns),
            ("best_level".into(), best_level as f64),
            ("wrong_answers".into(), total_wrong as f64),
        ],
    );

    // Engine-side counters after the full run.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    println!(
        "engine: {} rid requests, cache {} hits / {} misses / {} evictions (hit rate {:.3})",
        stats.rid_requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.hit_rate()
    );
    report.add_metrics(
        "engine",
        "stats",
        vec![
            ("rid_requests".into(), stats.rid_requests as f64),
            ("cache_hits".into(), stats.cache_hits as f64),
            ("cache_misses".into(), stats.cache_misses as f64),
            ("cache_evictions".into(), stats.cache_evictions as f64),
            ("cache_hit_rate".into(), stats.hit_rate()),
        ],
    );
    // Per-stage latency histograms from the merged telemetry registry:
    // where a request's time goes (queue wait, extraction, DP), not just
    // how long the round-trip took.
    let telemetry = client.telemetry().expect("telemetry snapshot");
    for name in [
        names::SERVICE_REQUEST_NS,
        names::SERVICE_QUEUE_WAIT_NS,
        names::RID_EXTRACT_STAGE_NS,
        names::RID_QUERY_STAGE_NS,
        names::MC_BATCH_NS,
    ] {
        let Some(h) = telemetry.histogram(name) else {
            continue;
        };
        let (Some(p50), Some(p95), Some(p99)) = (h.p50(), h.p95(), h.p99()) else {
            continue;
        };
        println!(
            "telemetry {name}: p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms (n={})",
            p50 as f64 / 1e6,
            p95 as f64 / 1e6,
            p99 as f64 / 1e6,
            h.count()
        );
        report.add_metrics(
            "telemetry",
            name,
            vec![
                ("count".into(), h.count() as f64),
                ("p50_ns".into(), p50 as f64),
                ("p95_ns".into(), p95 as f64),
                ("p99_ns".into(), p99 as f64),
            ],
        );
    }
    // Per-shard request placement, as routed (result-cache hits
    // included): the shard.<i>.requests aliases from the same snapshot.
    for shard in 0.. {
        let Some(requests) = telemetry.counter(&format!("shard.{shard}.requests")) else {
            break;
        };
        println!("shard {shard}: {requests} rid requests");
        report.add_metrics(
            "shards",
            format!("shard{shard}"),
            vec![("requests".into(), requests as f64)],
        );
    }
    let stats_path = report.path().with_file_name("STATS_service.json");
    if let Some(dir) = stats_path.parent() {
        // This write can precede report.write(), which is what otherwise
        // creates a fresh ISOMIT_BENCH_DIR.
        std::fs::create_dir_all(dir).expect("create bench output dir");
    }
    std::fs::write(&stats_path, telemetry.to_json_string()).expect("write STATS_service.json");
    println!("wrote {}", stats_path.display());

    client.shutdown().expect("shutdown");
    server.join();

    assert_eq!(
        total_wrong, 0,
        "served answers diverged from the in-process pipeline"
    );
    report.write().expect("write BENCH_service.json");
    println!("wrote {}", report.path().display());
    println!(
        "all {} answers verified against the in-process pipeline",
        LEVELS.iter().map(|l| 2 * l * opts.requests).sum::<usize>() + 2 * opts.snapshots
    );
}
