//! Extension experiment (beyond the paper's evaluation): robustness to
//! **unknown states**. The paper's model explicitly allows `?` states
//! ("the states of many nodes in large-scale networks are often
//! unknown", §I) but never evaluates them; this binary masks a growing
//! fraction of the snapshot's states and measures how RID's identity and
//! state inference degrade.
//!
//! Expected outcome: graceful degradation — unknown states are
//! wildcards in the sign-consistency test and free variables in the DP,
//! so moderate masking mostly costs state-inference accuracy, not
//! identity recall.

use isomit_bench::{mean_std, ExpOptions, Network};
use isomit_core::{InitiatorDetector, Rid};
use isomit_datasets::{build_scenario, ScenarioConfig};
use isomit_graph::NodeId;
use isomit_metrics::{evaluate_detection, evaluate_identities};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    println!(
        "== Extension: unknown-state robustness (scale {}, {} trials, RID beta = 2.5) ==",
        opts.scale, opts.trials
    );
    for network in Network::ALL {
        println!("\n-- {} --", network.name());
        println!(
            "{:>8} {:>9} {:>10} {:>8} {:>8} {:>10}",
            "masked%", "detected", "precision", "recall", "F1", "state acc"
        );
        for mask in [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
            let mut prf_p = Vec::new();
            let mut prf_r = Vec::new();
            let mut prf_f = Vec::new();
            let mut accs = Vec::new();
            let mut counts = Vec::new();
            for t in 0..opts.trials {
                let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(t as u64));
                let social = network.generate(opts.scale, &mut rng);
                let config = ScenarioConfig {
                    n_initiators: opts.initiators_for(network),
                    mask_fraction: mask,
                    ..ScenarioConfig::default()
                };
                let sc = build_scenario(&social, &config, &mut rng);
                let detection = Rid::new(3.0, 2.5).expect("valid").detect(&sc.snapshot);
                let truth: Vec<NodeId> = sc.ground_truth.nodes().collect();
                let prf = evaluate_identities(&detection.nodes(), &truth);
                prf_p.push(prf.precision);
                prf_r.push(prf.recall);
                prf_f.push(prf.f1);
                counts.push(detection.len() as f64);
                let pairs: Vec<(NodeId, i8)> = detection
                    .initiators
                    .iter()
                    .filter_map(|d| d.state.opinion().map(|s| (d.node, s)))
                    .collect();
                if let (_, Some(states)) = evaluate_detection(&pairs, &sc.ground_truth_pairs()) {
                    accs.push(states.accuracy);
                }
            }
            let (p, _) = mean_std(&prf_p);
            let (r, _) = mean_std(&prf_r);
            let (f, _) = mean_std(&prf_f);
            let (c, _) = mean_std(&counts);
            let (a, _) = mean_std(&accs);
            println!(
                "{:>8.0} {:>9.0} {:>10.3} {:>8.3} {:>8.3} {:>10.3}",
                mask * 100.0,
                c,
                p,
                r,
                f,
                a
            );
        }
    }
    println!(
        "\nextension check: identity metrics degrade gracefully; state accuracy suffers first."
    );
}
