//! The **detector bakeoff**: every `SourceDetector` × diffusion model ×
//! network family, graded on precision / recall / F1 and
//! rank-of-true-source, with per-detector latency distributions.
//!
//! The grid crosses the five detectors (`rid`, `rid_tree`,
//! `rid_positive`, `rumor_centrality`, `jordan_center`) with three
//! forward models (MFC — the paper's own — plus independent cascade and
//! linear threshold as model-mismatch probes) on both synthetic network
//! families. Each cell averages `--trials` independent outbreaks.
//!
//! Rank-of-true-source is the mean, over planted initiators, of the
//! 1-based position the detector's ranked candidate list gives the true
//! source; sources the detector never scored are charged rank
//! `len + 1`. Set-style detectors (the RID family) rank only their
//! detected set, so their mean rank is near the detected count; the
//! score-style estimators rank the whole snapshot.
//!
//! A final `equivalence` entry asserts that trait-dispatched RID is
//! bit-identical to the legacy `Rid::detect` on every MFC trial and
//! records `bit_identical: 1` for `cargo xtask bench-check`.
//!
//! Writes `BENCH_detectors.json` (gated in CI against the F1 floors in
//! `bench_baselines.json`).

use isomit_bench::report::{BenchReport, TimingStats};
use isomit_bench::{build_trials_with_model, mean_std, ExpOptions, Network, Trial};
use isomit_core::{InitiatorDetector, Rid, RidConfig};
use isomit_detectors::{build, DetectorKind, SourceDetection};
use isomit_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold, Mfc};
use isomit_graph::NodeId;
use isomit_metrics::evaluate_identities;
use std::time::Instant;

/// Mean 1-based rank the detector assigns the true sources; unscored
/// sources are charged `ranked.len() + 1`.
fn mean_rank_of_truth(found: &SourceDetection, truth: &[NodeId]) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let penalty = found.ranked.len() + 1;
    let total: usize = truth
        .iter()
        .map(|&node| found.rank_of(node).unwrap_or(penalty))
        .sum();
    total as f64 / truth.len() as f64
}

fn models(alpha: f64) -> Vec<Box<dyn DiffusionModel + Sync>> {
    vec![
        Box::new(Mfc::new(alpha).expect("alpha 3 is valid")),
        Box::new(IndependentCascade::new()),
        Box::new(LinearThreshold::new()),
    ]
}

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    // β = 3.0 is the calibrated equivalent of the paper's β = 0.1 on
    // the synthetic weight scale (see the β-calibration note in
    // EXPERIMENTS.md); the uncalibrated default drowns RID in
    // over-detection here exactly as Figure 5's low-β regime predicts.
    let config = RidConfig {
        beta: 3.0,
        ..RidConfig::default()
    };
    let mut report = BenchReport::new("detectors");
    println!(
        "== Detector bakeoff: {} detectors x 3 models x {} networks (scale {}, {} trials) ==",
        DetectorKind::ALL.len(),
        Network::ALL.len(),
        opts.scale,
        opts.trials
    );
    let mut mfc_cells = 0usize;
    for network in Network::ALL {
        for model in models(config.alpha) {
            let trials = build_trials_with_model(network, &opts, model.as_ref());
            let group = format!(
                "{}_{}",
                network.name().to_lowercase(),
                model.name().to_lowercase()
            );
            let infected: Vec<f64> = trials
                .iter()
                .map(|t| t.scenario.snapshot.node_count() as f64)
                .collect();
            let (inf_mean, _) = mean_std(&infected);
            println!(
                "\n-- {group} (N = {} planted, mean infected {:.0}) --",
                opts.initiators_for(network),
                inf_mean
            );
            println!(
                "{:<18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
                "detector", "detected", "precision", "recall", "F1", "mean rank", "mean ms"
            );
            for kind in DetectorKind::ALL {
                let detector = build(kind, &config).expect("default config builds every detector");
                let mut precisions = Vec::with_capacity(trials.len());
                let mut recalls = Vec::with_capacity(trials.len());
                let mut f1s = Vec::with_capacity(trials.len());
                let mut ranks = Vec::with_capacity(trials.len());
                let mut detected = Vec::with_capacity(trials.len());
                let mut latencies_ns = Vec::with_capacity(trials.len());
                for trial in &trials {
                    let started = Instant::now();
                    let found = detector
                        .detect_sources(&trial.scenario.snapshot)
                        .expect("bakeoff snapshots are valid detector inputs");
                    latencies_ns.push(started.elapsed().as_nanos() as f64);
                    let prf = evaluate_identities(&found.detection.nodes(), &trial.truth_ids);
                    precisions.push(prf.precision);
                    recalls.push(prf.recall);
                    f1s.push(prf.f1);
                    ranks.push(mean_rank_of_truth(&found, &trial.truth_ids));
                    detected.push(found.detection.len() as f64);
                }
                if kind == DetectorKind::Rid && model.name() == "MFC" {
                    assert_dispatch_equivalence(&config, &trials);
                    mfc_cells += 1;
                }
                let (p, _) = mean_std(&precisions);
                let (r, _) = mean_std(&recalls);
                let (f, fs) = mean_std(&f1s);
                let (rank, _) = mean_std(&ranks);
                let (c, _) = mean_std(&detected);
                let timing = TimingStats::from_samples(&latencies_ns);
                println!(
                    "{:<18} {:>9.0} {:>9.3} {:>9.3} {:>9.3} {:>11.1} {:>11.2}",
                    kind.as_label(),
                    c,
                    p,
                    r,
                    f,
                    rank,
                    timing.mean_ns / 1e6
                );
                report.add_entry(
                    group.clone(),
                    kind.as_label(),
                    vec![
                        ("precision".into(), p),
                        ("recall".into(), r),
                        ("f1".into(), f),
                        ("f1_std".into(), fs),
                        ("mean_rank".into(), rank),
                        ("detected".into(), c),
                        ("trials".into(), opts.trials as f64),
                        ("scale".into(), opts.scale),
                    ],
                    timing,
                );
            }
        }
    }
    // One summary entry so bench-check's bit-identity gate covers this
    // artifact: every MFC cell re-ran RID through the trait seam and
    // asserted byte equality with the legacy path above.
    report.add_metrics(
        "detectors",
        "equivalence",
        vec![
            ("bit_identical".into(), 1.0),
            ("cells_checked".into(), mfc_cells as f64),
        ],
    );
    let path = report.write().expect("write bench artifact");
    println!("\nwrote {}", path.display());
}

/// Asserts trait-dispatched RID ≡ legacy `Rid::detect`, bit for bit,
/// on every trial of an MFC cell.
fn assert_dispatch_equivalence(config: &RidConfig, trials: &[Trial]) {
    let legacy = Rid::from_config(*config).expect("default config is valid");
    let dispatched = build(DetectorKind::Rid, config).expect("default config is valid");
    for trial in trials {
        let expected = legacy.detect(&trial.scenario.snapshot);
        let got = dispatched
            .detect_sources(&trial.scenario.snapshot)
            .expect("RID accepts bakeoff snapshots");
        assert_eq!(got.detection, expected, "trait-dispatched RID diverged");
        assert_eq!(
            got.detection.objective.to_bits(),
            expected.objective.to_bits(),
            "objective bits diverged"
        );
    }
}
