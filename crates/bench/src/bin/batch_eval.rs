// lint:allow-file(unsafe) the counting global allocator must implement the unsafe GlobalAlloc trait; it only delegates to std's System allocator and updates atomics
//! SNAP-scale batch evaluation driver: generate (or load) a large signed
//! network, sample `K` infected snapshots by simulating MFC forward, run
//! the two-stage RID pipeline over every snapshot, and write per-stage
//! timings plus allocation statistics to `BENCH_scale.json`.
//!
//! This is the scale harness behind the repository's forest-extraction
//! optimization work: alongside the production per-component extraction
//! path it times the retained single-run reference
//! ([`extract_cascade_forest_reference`]) on the same snapshots, asserts
//! the two agree **exactly**, and reports the measured speedup and
//! allocation churn reduction.
//!
//! Options:
//!
//! * `--nodes N` / `--edges N` — generated graph size (defaults
//!   100 000 / 500 000), via [`isomit_datasets::snap_like`];
//! * `--load PATH` — load a SNAP edge list through the streaming
//!   [`isomit_datasets::load_snap_file`] loader instead of generating;
//! * `--snapshots K` — infected snapshots to evaluate (default 8);
//! * `--initiators N` — planted initiators per snapshot (default 5);
//! * `--rounds N` — observation horizon: MFC rounds simulated before the
//!   snapshot is taken (default 256, effectively "run to quiescence";
//!   small values yield early-stage, fragmented multi-cascade snapshots);
//! * `--sign-fraction F` — positive-edge fraction when generating
//!   (default 0.85, the Epinions figure);
//! * `--seed N`, `--threads N` — determinism and rayon worker count;
//! * `--no-baseline` — skip the reference-extraction comparison.

use isomit_bench::report::{BenchReport, TimingStats};
use isomit_core::{extract_cascade_forest, extract_cascade_forest_reference, Rid, RidConfig};
use isomit_diffusion::{
    estimate_infection_probabilities_seeded, estimate_infection_probabilities_wide,
    estimate_infection_probabilities_wide_reference, DiffusionModel, InfectedNetwork, SeedSet,
};
use isomit_graph::{Edge, SignedDigraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

/// Counting wrapper around the system allocator: tracks live bytes, the
/// live-byte high-water mark (a peak-RSS proxy for heap usage) and the
/// total number of allocation calls, so the harness can report the
/// allocation churn of each extraction path.
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to the System allocator with the exact
// layout it received; the atomic counters never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to System.alloc unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Relaxed);
            ALLOC_CALLS.fetch_add(1, Relaxed);
        }
        ptr
    }

    // SAFETY: forwards the caller's pointer and layout to System.dealloc
    // unchanged; the pointer was produced by the same System allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Relaxed);
    }

    // SAFETY: forwards pointer, old layout and new size to System.realloc
    // unchanged; counter updates only run after a non-null return.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            let live = if new_size >= layout.size() {
                LIVE_BYTES.fetch_add(new_size - layout.size(), Relaxed) + (new_size - layout.size())
            } else {
                LIVE_BYTES.fetch_sub(layout.size() - new_size, Relaxed) - (layout.size() - new_size)
            };
            PEAK_BYTES.fetch_max(live, Relaxed);
            ALLOC_CALLS.fetch_add(1, Relaxed);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Options {
    nodes: usize,
    edges: usize,
    snapshots: usize,
    initiators: usize,
    rounds: usize,
    sign_fraction: f64,
    seed: u64,
    threads: Option<usize>,
    load: Option<String>,
    baseline: bool,
}

impl Options {
    fn parse(mut args: std::env::Args) -> Options {
        let mut opts = Options {
            nodes: 100_000,
            edges: 500_000,
            snapshots: 8,
            initiators: 5,
            rounds: 256,
            sign_fraction: 0.85,
            seed: 7,
            threads: None,
            load: None,
            baseline: true,
        };
        args.next(); // program name
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--nodes" => opts.nodes = value("--nodes").parse().expect("--nodes: usize"),
                "--edges" => opts.edges = value("--edges").parse().expect("--edges: usize"),
                "--snapshots" => {
                    opts.snapshots = value("--snapshots").parse().expect("--snapshots: usize")
                }
                "--initiators" => {
                    opts.initiators = value("--initiators").parse().expect("--initiators: usize")
                }
                "--rounds" => opts.rounds = value("--rounds").parse().expect("--rounds: usize"),
                "--sign-fraction" => {
                    opts.sign_fraction = value("--sign-fraction")
                        .parse()
                        .expect("--sign-fraction: f64")
                }
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: u64"),
                "--threads" => {
                    opts.threads = Some(value("--threads").parse().expect("--threads: usize"))
                }
                "--load" => opts.load = Some(value("--load")),
                "--no-baseline" => opts.baseline = false,
                other => panic!("unknown flag `{other}`"),
            }
        }
        assert!(opts.snapshots > 0, "--snapshots must be positive");
        assert!(opts.initiators > 0, "--initiators must be positive");
        assert!(opts.rounds > 0, "--rounds must be positive");
        assert!(opts.threads != Some(0), "--threads must be positive");
        opts
    }

    /// Runs `f` inside a rayon pool of `--threads` workers (or the
    /// default pool when the flag is absent).
    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("build rayon pool")
                .install(f),
            None => f(),
        }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality deterministic hash used to
/// derive per-edge diffusion weights without the quadratic blow-up of
/// neighbourhood-overlap weighting on 500k+ edge graphs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Replaces every edge's weight with a deterministic hash-derived value
/// in `[0.02, 0.30]` — fast at any scale and seed-stable. The upper bound
/// stays below `1/α` so no boosted probability reaches exactly 1: MFC's
/// flip waves then terminate with probability 1 instead of oscillating
/// forever on deterministic positive cycles (see the `Mfc` docs).
fn hash_weights(graph: &SignedDigraph, seed: u64, alpha: f64) -> SignedDigraph {
    let hi = 0.30f64.min(1.0 / alpha - 0.02);
    let edges: Vec<Edge> = graph
        .edges()
        .map(|e| {
            let key = ((e.src.index() as u64) << 32) | e.dst.index() as u64;
            let u = splitmix64(key ^ seed) as f64 / u64::MAX as f64;
            Edge::new(e.src, e.dst, e.sign, 0.02 + (hi - 0.02) * u)
        })
        .collect();
    SignedDigraph::from_edge_vec(graph.node_count(), edges).expect("weights stay in [0, 1]")
}

/// Latency percentile by nearest-rank over a sorted sample, in ns.
fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns
        .get(rank)
        .copied()
        .expect("nearest-rank index is below the sample length")
}

fn sorted(mut samples: Vec<f64>) -> Vec<f64> {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples
}

fn main() {
    let opts = Options::parse(std::env::args());
    let mut report = BenchReport::new("scale");

    // Stage 1: obtain the social graph — streamed from disk or generated.
    let t0 = Instant::now();
    let (social, load_metrics) = match &opts.load {
        Some(path) => {
            let (graph, load_report) =
                isomit_datasets::load_snap_file(path, &isomit_datasets::LoadOptions::lenient())
                    .unwrap_or_else(|e| panic!("loading {path}: {e}"));
            println!(
                "loaded {path}: {} lines -> {} nodes / {} edges \
                 ({} comments, {} dup, {} self-loops, {} malformed)",
                load_report.total_lines,
                load_report.nodes,
                load_report.edges,
                load_report.comment_lines,
                load_report.duplicate_edges,
                load_report.self_loops,
                load_report.malformed_lines,
            );
            let metrics = vec![
                ("loaded".into(), 1.0),
                ("total_lines".into(), load_report.total_lines as f64),
                ("comment_lines".into(), load_report.comment_lines as f64),
                ("parsed_edges".into(), load_report.parsed_edges as f64),
                ("duplicate_edges".into(), load_report.duplicate_edges as f64),
                ("self_loops".into(), load_report.self_loops as f64),
                ("malformed_lines".into(), load_report.malformed_lines as f64),
            ];
            (graph, metrics)
        }
        None => {
            let graph =
                isomit_datasets::snap_like(opts.nodes, opts.edges, opts.sign_fraction, opts.seed);
            (graph, vec![("loaded".into(), 0.0)])
        }
    };
    let build_ns = t0.elapsed().as_nanos() as f64;

    // Stage 2: deterministic diffusion weights + CSR rebuild.
    let config = RidConfig::default();
    let t0 = Instant::now();
    let graph = hash_weights(&social, opts.seed, config.alpha);
    let weighting_ns = t0.elapsed().as_nanos() as f64;
    drop(social);
    println!(
        "graph ready: {} nodes / {} edges (build {:.1} ms, weighting+CSR {:.1} ms)",
        graph.node_count(),
        graph.edge_count(),
        build_ns / 1e6,
        weighting_ns / 1e6,
    );
    let mut graph_metrics = vec![
        ("nodes".into(), graph.node_count() as f64),
        ("edges".into(), graph.edge_count() as f64),
        ("build_ns".into(), build_ns),
        ("weighting_csr_ns".into(), weighting_ns),
    ];
    graph_metrics.extend(load_metrics);
    report.add_metrics("dataset", "graph", graph_metrics);

    // Stage 3: sample K infected snapshots by simulating MFC forward.
    // `--rounds` doubles as the observation horizon and as a backstop:
    // hash weights stay below 1/alpha, so cascades terminate on their own
    // with probability 1 even at the default cap.
    let model = config
        .model()
        .expect("valid alpha")
        .with_max_rounds(opts.rounds);
    let t0 = Instant::now();
    let snapshots: Vec<InfectedNetwork> = (0..opts.snapshots)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (0x5EED_0000 + i as u64));
            let seeds = SeedSet::sample(&graph, opts.initiators, 0.5, &mut rng);
            let cascade = model
                .simulate(&graph, &seeds, &mut rng)
                .expect("MFC simulation");
            InfectedNetwork::from_cascade(&graph, &cascade)
        })
        .collect();
    let sampling_ns = t0.elapsed().as_nanos() as f64;
    let total_infected: usize = snapshots.iter().map(|s| s.node_count()).sum();
    println!(
        "{} snapshots sampled in {:.1} ms ({} infected nodes total)",
        snapshots.len(),
        sampling_ns / 1e6,
        total_infected,
    );
    report.add_metrics(
        "dataset",
        "snapshots",
        vec![
            ("count".into(), snapshots.len() as f64),
            ("rounds_cap".into(), opts.rounds as f64),
            ("sampling_ns".into(), sampling_ns),
            ("infected_total".into(), total_infected as f64),
        ],
    );

    // Stage 3b: wide Monte-Carlo comparison on the same workload — one
    // full 64-lane batch through the bitplane engine against the same
    // trial count through the production scalar estimator, plus the
    // scalar wide-reference replay that pins bit-identity. The speedup
    // recorded here is what `cargo run -p xtask -- bench-check` gates
    // against the committed floor in `bench_baselines.json`.
    const WIDE_TRIALS: usize = 64;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5EED_FFFF);
    let mc_seeds = SeedSet::sample(&graph, opts.initiators, 0.5, &mut rng);

    let t0 = Instant::now();
    let scalar =
        estimate_infection_probabilities_seeded(&model, &graph, &mc_seeds, WIDE_TRIALS, opts.seed)
            .expect("sampled seeds lie within the graph");
    let sampling_scalar_ns = t0.elapsed().as_nanos() as f64;

    let t0 = Instant::now();
    let wide =
        estimate_infection_probabilities_wide(&model, &graph, &mc_seeds, WIDE_TRIALS, opts.seed)
            .expect("sampled seeds lie within the graph");
    let sampling_wide_ns = t0.elapsed().as_nanos() as f64;

    let t0 = Instant::now();
    let wide_ref = estimate_infection_probabilities_wide_reference(
        &model,
        &graph,
        &mc_seeds,
        WIDE_TRIALS,
        opts.seed,
    )
    .expect("sampled seeds lie within the graph");
    let sampling_reference_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(
        wide, wide_ref,
        "wide estimate must be bit-identical to the scalar wide reference"
    );

    let wide_speedup = sampling_scalar_ns / sampling_wide_ns;
    println!(
        "wide MC: {WIDE_TRIALS} trials — scalar {:.1} ms, wide {:.1} ms ({wide_speedup:.2}x), \
         reference {:.1} ms — wide bit-identical to reference \
         (expected infected: scalar {:.1}, wide {:.1})",
        sampling_scalar_ns / 1e6,
        sampling_wide_ns / 1e6,
        sampling_reference_ns / 1e6,
        scalar.expected_infected(),
        wide.expected_infected(),
    );
    report.add_metrics(
        "montecarlo_wide",
        "sampling",
        vec![
            ("trials".into(), WIDE_TRIALS as f64),
            ("sampling_scalar_ns".into(), sampling_scalar_ns),
            ("sampling_wide_ns".into(), sampling_wide_ns),
            ("sampling_reference_ns".into(), sampling_reference_ns),
            ("speedup".into(), wide_speedup),
            ("bit_identical".into(), 1.0),
            ("expected_infected".into(), wide.expected_infected()),
        ],
    );

    opts.install(|| run_pipeline(&opts, &snapshots, config, &mut report));

    report.write().expect("write BENCH_scale.json");
    println!("wrote {}", report.path().display());
}

/// Times the two-stage RID pipeline (and, unless `--no-baseline`, the
/// reference extraction) over every snapshot and records the results.
fn run_pipeline(
    opts: &Options,
    snapshots: &[InfectedNetwork],
    config: RidConfig,
    report: &mut BenchReport,
) {
    let rid = Rid::from_config(config).expect("valid config");
    let alpha = config.alpha;

    let mut extract_ns = Vec::with_capacity(snapshots.len());
    let mut query_ns = Vec::with_capacity(snapshots.len());
    let mut opt_ns = Vec::with_capacity(snapshots.len());
    let mut ref_ns = Vec::with_capacity(snapshots.len());
    let mut opt_allocs = 0u64;
    let mut ref_allocs = 0u64;

    for (i, snapshot) in snapshots.iter().enumerate() {
        // Forest-extraction micro-comparison: optimized per-component
        // driver vs the retained single-run reference, same snapshot,
        // results asserted identical. The optimized path runs once warm
        // (the thread-local arenas carry over between snapshots, as they
        // do in the serving engine).
        let allocs_before = ALLOC_CALLS.load(Relaxed);
        let t0 = Instant::now();
        let fast = extract_cascade_forest(snapshot, alpha);
        opt_ns.push(t0.elapsed().as_nanos() as f64);
        opt_allocs += ALLOC_CALLS.load(Relaxed) - allocs_before;

        if opts.baseline {
            let allocs_before = ALLOC_CALLS.load(Relaxed);
            let t0 = Instant::now();
            let reference = extract_cascade_forest_reference(snapshot, alpha);
            ref_ns.push(t0.elapsed().as_nanos() as f64);
            ref_allocs += ALLOC_CALLS.load(Relaxed) - allocs_before;
            assert_eq!(
                fast, reference,
                "optimized extraction diverged from the reference on snapshot {i}"
            );
        }

        // Full two-stage pipeline timings (extraction + external support,
        // then the DP query).
        let t0 = Instant::now();
        let artifacts = rid.extract_stage(snapshot);
        let e_ns = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        let detection = rid
            .query_stage(snapshot, &artifacts)
            .expect("query stage succeeds");
        let q_ns = t0.elapsed().as_nanos() as f64;
        extract_ns.push(e_ns);
        query_ns.push(q_ns);
        println!(
            "snapshot {i}: {} infected, {} components, {} initiators — \
             extract {:.1} ms, query {:.1} ms",
            snapshot.node_count(),
            detection.component_count,
            detection.len(),
            e_ns / 1e6,
            q_ns / 1e6,
        );
        report.add_metrics(
            "snapshots",
            format!("s{i}"),
            vec![
                ("infected".into(), snapshot.node_count() as f64),
                ("components".into(), detection.component_count as f64),
                ("initiators".into(), detection.len() as f64),
                ("extract_ns".into(), e_ns),
                ("query_ns".into(), q_ns),
            ],
        );
    }

    // Aggregate per-stage statistics across snapshots.
    report.add_timing(
        "rid",
        "extract_stage",
        TimingStats::from_samples(&extract_ns),
    );
    report.add_timing("rid", "query_stage", TimingStats::from_samples(&query_ns));
    let extract_sorted = sorted(extract_ns);
    let query_sorted = sorted(query_ns);
    let percentiles = vec![
        ("extract_p50_ns".into(), percentile(&extract_sorted, 0.50)),
        ("extract_p95_ns".into(), percentile(&extract_sorted, 0.95)),
        ("query_p50_ns".into(), percentile(&query_sorted, 0.50)),
        ("query_p95_ns".into(), percentile(&query_sorted, 0.95)),
    ];
    println!(
        "rid stages: extract p50 {:.1} ms / p95 {:.1} ms, query p50 {:.1} ms / p95 {:.1} ms",
        percentile(&extract_sorted, 0.50) / 1e6,
        percentile(&extract_sorted, 0.95) / 1e6,
        percentile(&query_sorted, 0.50) / 1e6,
        percentile(&query_sorted, 0.95) / 1e6,
    );
    report.add_metrics("rid", "percentiles", percentiles);

    report.add_timing(
        "forest_extraction",
        "optimized",
        TimingStats::from_samples(&opt_ns),
    );
    let runs = snapshots.len() as f64;
    let mut comparison = vec![
        ("allocs_per_run_optimized".into(), opt_allocs as f64 / runs),
        ("peak_heap_bytes".into(), PEAK_BYTES.load(Relaxed) as f64),
    ];
    if opts.baseline {
        report.add_timing(
            "forest_extraction",
            "reference",
            TimingStats::from_samples(&ref_ns),
        );
        let opt_total: f64 = opt_ns.iter().sum();
        let ref_total: f64 = ref_ns.iter().sum();
        let speedup = ref_total / opt_total;
        comparison.push(("allocs_per_run_reference".into(), ref_allocs as f64 / runs));
        comparison.push(("speedup".into(), speedup));
        println!(
            "forest extraction: optimized {:.1} ms vs reference {:.1} ms total — \
             {speedup:.2}x speedup, {:.0} vs {:.0} allocs/run",
            opt_total / 1e6,
            ref_total / 1e6,
            opt_allocs as f64 / runs,
            ref_allocs as f64 / runs,
        );
    }
    report.add_metrics("forest_extraction", "comparison", comparison);
}
