//! Reproduces **Figure 4** (method comparison): precision, recall and
//! F1 of RID(β = 0.09), RID(β = 0.1), their calibrated equivalents for
//! the synthetic weight scale (β = 2.5, 3.0 — see EXPERIMENTS.md),
//! RID-Tree and RID-Positive on both networks.
//!
//! Expected shape (the paper's qualitative claims): RID-Tree has
//! precision 1.0 at low recall; RID-Positive has low precision;
//! calibrated RID achieves the best F1.

use isomit_bench::report::BenchReport;
use isomit_bench::{
    build_trials, evaluate_identity_over_trials, figure4_detectors, mean_std, ExpOptions, Network,
};

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    let mut report = BenchReport::new("fig4");
    println!(
        "== Figure 4: rumor initiator detection comparison (scale {}, {} trials) ==",
        opts.scale, opts.trials
    );
    for network in Network::ALL {
        let trials = build_trials(network, &opts);
        let infected: Vec<f64> = trials
            .iter()
            .map(|t| t.scenario.snapshot.node_count() as f64)
            .collect();
        let (inf_mean, _) = mean_std(&infected);
        println!(
            "\n-- {} (N = {} planted initiators, mean infected {:.0}) --",
            network.name(),
            opts.initiators_for(network),
            inf_mean
        );
        println!(
            "{:<14} {:>9} {:>15} {:>15} {:>15}",
            "method", "detected", "precision", "recall", "F1"
        );
        for detector in figure4_detectors() {
            let (prfs, counts) = evaluate_identity_over_trials(detector.as_ref(), &trials);
            let (p, ps) = mean_std(&prfs.iter().map(|x| x.precision).collect::<Vec<_>>());
            let (r, rs) = mean_std(&prfs.iter().map(|x| x.recall).collect::<Vec<_>>());
            let (f, fs) = mean_std(&prfs.iter().map(|x| x.f1).collect::<Vec<_>>());
            let (c, _) = mean_std(&counts.iter().map(|&x| x as f64).collect::<Vec<_>>());
            println!(
                "{:<14} {:>9.0} {:>8.3}±{:<5.3} {:>8.3}±{:<5.3} {:>8.3}±{:<5.3}",
                detector.name(),
                c,
                p,
                ps,
                r,
                rs,
                f,
                fs
            );
            report.add_metrics(
                network.name(),
                detector.name(),
                vec![
                    ("precision".into(), p),
                    ("precision_std".into(), ps),
                    ("recall".into(), r),
                    ("recall_std".into(), rs),
                    ("f1".into(), f),
                    ("f1_std".into(), fs),
                    ("detected".into(), c),
                    ("trials".into(), opts.trials as f64),
                    ("scale".into(), opts.scale),
                ],
            );
        }
    }
    println!(
        "\npaper shape check: RID-Tree precision = 1.0 with low recall; \
         RID-Positive low precision; calibrated RID best F1."
    );
    let path = report.write().expect("write bench artifact");
    println!("wrote {}", path.display());
}
