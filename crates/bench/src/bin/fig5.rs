//! Reproduces **Figure 5** (β sensitivity of initiator identities):
//! precision, recall and F1 of RID as functions of the initiator
//! penalty β, on both networks.
//!
//! Expected shape: precision increases with β while recall decreases
//! (larger β keeps the extracted trees whole). The transition region of
//! the synthetic networks sits above the paper's `[0, 1]` sweep (see
//! EXPERIMENTS.md), so the sweep is extended to β = 3.

use isomit_bench::{
    build_trials, evaluate_identity_over_trials, mean_std, ExpOptions, Network, BETA_SWEEP,
};
use isomit_core::Rid;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    println!(
        "== Figure 5: detected rumor initiators vs beta (scale {}, {} trials) ==",
        opts.scale, opts.trials
    );
    for network in Network::ALL {
        let trials = build_trials(network, &opts);
        println!("\n-- {} --", network.name());
        println!(
            "{:>6} {:>9} {:>12} {:>12} {:>12}",
            "beta", "detected", "precision", "recall", "F1"
        );
        for beta in BETA_SWEEP {
            let detector = Rid::new(3.0, beta).expect("valid params");
            let (prfs, counts) = evaluate_identity_over_trials(&detector, &trials);
            let (p, _) = mean_std(&prfs.iter().map(|x| x.precision).collect::<Vec<_>>());
            let (r, _) = mean_std(&prfs.iter().map(|x| x.recall).collect::<Vec<_>>());
            let (f, _) = mean_std(&prfs.iter().map(|x| x.f1).collect::<Vec<_>>());
            let (c, _) = mean_std(&counts.iter().map(|&x| x as f64).collect::<Vec<_>>());
            println!(
                "{:>6.2} {:>9.0} {:>12.3} {:>12.3} {:>12.3}",
                beta, c, p, r, f
            );
        }
    }
    println!("\npaper shape check: precision rises and recall falls as beta grows.");
}
