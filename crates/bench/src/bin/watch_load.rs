//! Incremental watch-session load driver: seed an [`IncrementalRid`]
//! session to batch-eval scale through deltas, then stream a sparse
//! delta tail, answering **every** delta both incrementally and by cold
//! recompute of the final snapshot prefix. Writes
//! `BENCH_incremental.json` with the amortized per-delta latencies,
//! their ratio (`speedup_amortized`), and a `bit_identical` flag that
//! is 1.0 only if every incremental answer matched its cold reference
//! byte-for-byte — the artifact `xtask bench-check` gates on.
//!
//! Options:
//!
//! * `--nodes N` / `--edges N` — seed-phase session size (defaults
//!   10 000 / 50 000), built entirely through `infect` / `add_edge`
//!   deltas;
//! * `--deltas N` — sparse stream length after seeding (default 50):
//!   fresh-node infections and occasional two-node fresh components,
//!   the workload where delta-driven maintenance should shine;
//! * `--seed N` — RNG seed (the run is deterministic in it);
//! * `--threads N` — rayon worker count for both paths.

use isomit_bench::report::{BenchReport, TimingStats};
use isomit_core::{IncrementalRid, InitiatorDetector, Rid, RidConfig, RidDelta};
use isomit_graph::{NodeId, NodeState, Sign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Options {
    nodes: usize,
    edges: usize,
    deltas: usize,
    seed: u64,
    threads: Option<usize>,
}

impl Options {
    fn parse(mut args: std::env::Args) -> Options {
        let mut opts = Options {
            nodes: 10_000,
            edges: 50_000,
            deltas: 50,
            seed: 7,
            threads: None,
        };
        args.next(); // program name
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--nodes" => opts.nodes = value("--nodes").parse().expect("--nodes: usize"),
                "--edges" => opts.edges = value("--edges").parse().expect("--edges: usize"),
                "--deltas" => opts.deltas = value("--deltas").parse().expect("--deltas: usize"),
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: u64"),
                "--threads" => {
                    opts.threads = Some(value("--threads").parse().expect("--threads: usize"))
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        assert!(opts.nodes >= 2, "--nodes must be at least 2");
        assert!(opts.deltas > 0, "--deltas must be positive");
        assert!(opts.threads != Some(0), "--threads must be positive");
        opts
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("build rayon pool")
                .install(f),
            None => f(),
        }
    }
}

/// Seeds the session to `nodes` infected nodes and up to `edges` random
/// edges among them, all through deltas, and returns the delta count.
fn seed_session(session: &mut IncrementalRid, opts: &Options, rng: &mut StdRng) -> u64 {
    for i in 0..opts.nodes {
        let state = if rng.gen_bool(0.8) {
            NodeState::Positive
        } else {
            NodeState::Negative
        };
        session
            .apply(&RidDelta::Infect {
                node: NodeId::from_index(i),
                state,
            })
            .expect("fresh infections are always valid");
    }
    let mut applied = opts.nodes as u64;
    let mut attempts = 0usize;
    let mut added = 0usize;
    // Random edges among the infected population; duplicates and
    // self-loops are rejected by the session's validator and resampled.
    while added < opts.edges && attempts < opts.edges * 4 {
        attempts += 1;
        let src = rng.gen_range(0..opts.nodes);
        let dst = rng.gen_range(0..opts.nodes);
        let delta = RidDelta::AddEdge {
            src: NodeId::from_index(src),
            dst: NodeId::from_index(dst),
            sign: if rng.gen_bool(0.85) {
                Sign::Positive
            } else {
                Sign::Negative
            },
            weight: 0.02 + 0.28 * rng.gen_range(0.0..1.0),
        };
        if session.apply(&delta).is_ok() {
            added += 1;
            applied += 1;
        }
    }
    applied
}

/// One sparse-tail delta: usually a fresh singleton infection, every
/// third step grown into a two-node fresh component — the streaming
/// workload where only a tiny fraction of components goes dirty.
fn sparse_delta(step: usize, next_node: &mut usize, rng: &mut StdRng) -> Vec<RidDelta> {
    let node = *next_node;
    *next_node += 1;
    let mut deltas = vec![RidDelta::Infect {
        node: NodeId::from_index(node),
        state: if rng.gen_bool(0.5) {
            NodeState::Positive
        } else {
            NodeState::Negative
        },
    }];
    if step % 3 == 2 {
        let partner = *next_node;
        *next_node += 1;
        deltas.push(RidDelta::Infect {
            node: NodeId::from_index(partner),
            state: NodeState::Positive,
        });
        deltas.push(RidDelta::AddEdge {
            src: NodeId::from_index(node),
            dst: NodeId::from_index(partner),
            sign: Sign::Positive,
            weight: 0.02 + 0.28 * rng.gen_range(0.0..1.0),
        });
    }
    deltas
}

fn main() {
    let opts = Options::parse(std::env::args());
    opts.install(|| run(&opts));
}

fn run(opts: &Options) {
    let config = RidConfig::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut session = IncrementalRid::new(config).expect("valid default config");
    let rid = Rid::from_config(config).expect("valid default config");

    let t0 = Instant::now();
    let seed_deltas = seed_session(&mut session, opts, &mut rng);
    let _ = session.answer(); // warm the per-component solutions
    let seed_ns = t0.elapsed().as_nanos() as f64;
    println!(
        "seeded session: {} nodes / {} edges / {} components in {:.2}s",
        session.node_count(),
        session.edge_count(),
        session.component_count(),
        seed_ns / 1e9
    );

    let mut incremental_ns = Vec::with_capacity(opts.deltas);
    let mut cold_ns = Vec::with_capacity(opts.deltas);
    let mut bit_identical = true;
    let mut dirty_total = 0u64;
    let mut next_node = session.node_count();
    for step in 0..opts.deltas {
        for delta in sparse_delta(step, &mut next_node, &mut rng) {
            session.apply(&delta).expect("sparse deltas are valid");
        }

        let t0 = Instant::now();
        let (incremental, outcome) = session.answer_detailed();
        incremental_ns.push(t0.elapsed().as_nanos() as f64);
        dirty_total += outcome.dirty_components as u64;

        // Cold baseline: a from-scratch detector run over the session's
        // current snapshot (materialized outside the timed region, in
        // the baseline's favor).
        let snapshot = session.snapshot();
        let t0 = Instant::now();
        let cold = rid.detect(&snapshot);
        cold_ns.push(t0.elapsed().as_nanos() as f64);

        let identical = incremental.detection == cold
            && incremental.detection.objective.to_bits() == cold.objective.to_bits()
            && incremental.detection.to_json_value().to_json() == cold.to_json_value().to_json();
        if !identical {
            bit_identical = false;
            eprintln!("MISMATCH at stream delta {step}: incremental != cold");
        }
    }

    let incr_mean = incremental_ns.iter().sum::<f64>() / incremental_ns.len() as f64;
    let cold_mean = cold_ns.iter().sum::<f64>() / cold_ns.len() as f64;
    let speedup = cold_mean / incr_mean;
    println!(
        "stream: {} deltas, amortized incremental {:.3}ms vs cold {:.3}ms -> {:.1}x, \
         bit_identical={}, fallbacks={}",
        opts.deltas,
        incr_mean / 1e6,
        cold_mean / 1e6,
        speedup,
        bit_identical,
        session.fallbacks()
    );

    let mut report = BenchReport::new("incremental");
    report.add_entry(
        "incremental",
        "watch_load",
        vec![
            ("nodes".into(), session.node_count() as f64),
            ("edges".into(), session.edge_count() as f64),
            ("components".into(), session.component_count() as f64),
            ("seed_deltas".into(), seed_deltas as f64),
            ("stream_deltas".into(), opts.deltas as f64),
            ("bit_identical".into(), f64::from(u8::from(bit_identical))),
            ("speedup_amortized".into(), speedup),
            ("incremental_mean_ns".into(), incr_mean),
            ("cold_mean_ns".into(), cold_mean),
            ("dirty_components_total".into(), dirty_total as f64),
            ("fallbacks".into(), session.fallbacks() as f64),
            ("seed_ns".into(), seed_ns),
        ],
        TimingStats::from_samples(&incremental_ns),
    );
    report.add_timing(
        "incremental",
        "cold_recompute",
        TimingStats::from_samples(&cold_ns),
    );
    let path = report.write().expect("write BENCH_incremental.json");
    println!("wrote {}", path.display());
    assert!(bit_identical, "incremental answers diverged from cold");
}
