//! Reproduces **Figure 6** (β sensitivity of initiator *states*):
//! accuracy, MAE and R² of RID's inferred initial states over the
//! correctly identified initiators, as functions of β, on both networks.
//!
//! Expected shape: accuracy rises towards 100% and MAE falls below 0.2
//! as β grows; R² is positive and improves with β.

use isomit_bench::{
    build_trials, evaluate_states_over_trials, mean_std, ExpOptions, Network, BETA_SWEEP,
};
use isomit_core::Rid;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    println!(
        "== Figure 6: states of detected rumor initiators vs beta (scale {}, {} trials) ==",
        opts.scale, opts.trials
    );
    for network in Network::ALL {
        let trials = build_trials(network, &opts);
        println!("\n-- {} --", network.name());
        println!(
            "{:>6} {:>12} {:>12} {:>12}",
            "beta", "accuracy", "MAE", "R2"
        );
        for beta in BETA_SWEEP {
            let detector = Rid::new(3.0, beta).expect("valid params");
            let metrics = evaluate_states_over_trials(&detector, &trials);
            if metrics.is_empty() {
                println!("{:>6.2} {:>12} {:>12} {:>12}", beta, "-", "-", "-");
                continue;
            }
            let (acc, _) = mean_std(&metrics.iter().map(|m| m.accuracy).collect::<Vec<_>>());
            let (mae, _) = mean_std(&metrics.iter().map(|m| m.mae).collect::<Vec<_>>());
            let (r2, _) = mean_std(&metrics.iter().map(|m| m.r2).collect::<Vec<_>>());
            println!("{:>6.2} {:>12.3} {:>12.3} {:>12.3}", beta, acc, mae, r2);
        }
    }
    println!(
        "\npaper shape check: accuracy -> 1.0 and MAE -> 0 as beta grows; R2 positive and rising."
    );
}
