//! Reproduces the §IV-B3 diffusion analysis: how far rumors spread under
//! MFC compared with the reference models (IC, LT, SIR, P-IC), on both
//! networks with the paper's parameters (`α = 3`, `θ = 0.5`).
//!
//! Expected shape: MFC reaches further than IC (trust boosting) and
//! reports flip events that no other model produces.

use isomit_bench::{mean_std, ExpOptions, Network};
use isomit_datasets::paper_weights;
use isomit_diffusion::{
    DiffusionModel, IndependentCascade, LinearThreshold, Mfc, PolarityIc, SeedSet, Sir,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::parse(std::env::args().skip(1));
    println!(
        "== Diffusion analysis: model comparison (scale {}, {} trials) ==",
        opts.scale, opts.trials
    );
    let models: Vec<Box<dyn DiffusionModel>> = vec![
        Box::new(Mfc::new(3.0).expect("valid alpha")),
        Box::new(Mfc::new(1.0).expect("valid alpha")), // boosting ablation
        Box::new(IndependentCascade::new()),
        Box::new(LinearThreshold::new()),
        Box::new(Sir::new(0.5).expect("valid gamma")),
        Box::new(PolarityIc::new(0.5).expect("valid delta")),
    ];
    for network in Network::ALL {
        println!(
            "\n-- {} (N = {} seeds, theta = 0.5) --",
            network.name(),
            opts.initiators_for(network)
        );
        println!(
            "{:<12} {:>14} {:>12} {:>10}",
            "model", "mean infected", "mean flips", "rounds"
        );
        for (idx, model) in models.iter().enumerate() {
            let mut infected = Vec::new();
            let mut flips = Vec::new();
            let mut rounds = Vec::new();
            for t in 0..opts.trials {
                let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(t as u64));
                let social = network.generate(opts.scale, &mut rng);
                let diffusion = paper_weights(&social, &mut rng);
                let seeds =
                    SeedSet::sample(&diffusion, opts.initiators_for(network), 0.5, &mut rng);
                let cascade = model
                    .simulate(&diffusion, &seeds, &mut rng)
                    .expect("sampled seeds lie within the diffusion network");
                infected.push(cascade.infected_count() as f64);
                flips.push(cascade.flip_count() as f64);
                rounds.push(cascade.rounds() as f64);
            }
            let (inf, inf_std) = mean_std(&infected);
            let (fl, _) = mean_std(&flips);
            let (ro, _) = mean_std(&rounds);
            let label = if idx == 1 {
                "MFC(a=1)".to_string()
            } else {
                model.name().to_string()
            };
            println!("{label:<12} {inf:>8.0}±{inf_std:<5.0} {fl:>12.1} {ro:>10.1}");
        }
    }
    println!("\npaper shape check: MFC(a=3) reach exceeds MFC(a=1) and IC; only MFC flips.");
}
