//! Log2-bucketed histograms for latency-style measurements.
//!
//! A [`Histogram`] has 64 fixed buckets: bucket 0 holds the values
//! `{0, 1}` and bucket `i` (for `i >= 1`) holds `[2^i, 2^(i+1))`, so a
//! recorded value lands in the bucket of its floor-log2. Bucket math is
//! branch-light and allocation-free; recording is one atomic add on the
//! bucket plus one on the running sum. Percentiles are extracted from a
//! [`HistogramSnapshot`] by nearest-rank over the cumulative bucket
//! counts, reporting the *upper bound* of the selected bucket — an
//! overestimate by at most 2x, monotone in the quantile by construction.

use crate::metrics::relaxed_load;
use isomit_graph::json::{JsonError, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of buckets in every histogram: one per power of two of `u64`.
pub const BUCKET_COUNT: usize = 64;

/// The bucket a value lands in: 0 for `{0, 1}`, otherwise `floor(log2 v)`.
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        (63 - value.leading_zeros()) as usize
    }
}

/// Smallest value contained in bucket `index` (saturates on overflow).
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKET_COUNT {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// Largest value contained in bucket `index` (saturates on overflow).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (2u64 << index) - 1
    }
}

#[derive(Debug)]
struct HistogramCore {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
}

/// A concurrent log2 histogram handle. Clones share the same storage, so
/// a handle can be cached in a `static` or passed across threads freely.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A detached, always-enabled histogram (not tied to any registry).
    pub fn new() -> Histogram {
        Histogram::with_flag(Arc::new(AtomicBool::new(true)))
    }

    /// A histogram gated on a shared enabled flag (used by the registry
    /// so `Registry::set_enabled` reaches every handed-out handle).
    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore {
                enabled,
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Whether recordings are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.load(Ordering::Relaxed)
    }

    /// Records one value. A disabled histogram drops it: no atomics run.
    pub fn record(&self, value: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(bucket) = self.core.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records its elapsed nanoseconds into
    /// this histogram when dropped. When the histogram is disabled the
    /// span never reads the clock, making it a near-no-op.
    #[must_use = "the span records on drop; binding it to `_` drops it immediately"]
    pub fn span(&self) -> SpanTimer {
        SpanTimer {
            histogram: self.clone(),
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// A point-in-time copy of the bucket counts and running sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.core.buckets.iter().map(relaxed_load).collect(),
            sum: self.core.sum.load(Ordering::Relaxed),
        }
    }
}

/// A scoped timer: measures from construction to drop and records the
/// elapsed nanoseconds into its [`Histogram`]. Obtain via
/// [`Histogram::span`].
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Stops the timer now, recording the measurement. Equivalent to
    /// dropping it, but reads as intent at call sites.
    pub fn stop(self) {}

    /// Abandons the span without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

/// A free-standing monotonic timer for deadline math and manual
/// measurements that are recorded conditionally (where [`SpanTimer`]'s
/// record-on-drop is wrong). Keeps raw clock reads inside the telemetry
/// layer: callers never touch [`Instant`] directly.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Immutable bucket counts + sum captured from a [`Histogram`]; the unit
/// of percentile extraction, merging, and JSON serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per bucket; always `BUCKET_COUNT` long.
    buckets: Vec<u64>,
    /// Sum of all recorded values (saturating).
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recordings.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            sum: 0,
        }
    }

    /// Builds a snapshot directly from per-bucket counts (missing
    /// trailing buckets are zero; extras are rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when more than [`BUCKET_COUNT`] counts are
    /// given (the type is also used while decoding wire payloads).
    pub fn from_bucket_counts(counts: &[u64], sum: u64) -> Result<HistogramSnapshot, JsonError> {
        if counts.len() > BUCKET_COUNT {
            return Err(JsonError::new(format!(
                "histogram has {} buckets, expected at most {BUCKET_COUNT}",
                counts.len()
            )));
        }
        let mut buckets = vec![0u64; BUCKET_COUNT];
        for (slot, &c) in buckets.iter_mut().zip(counts) {
            *slot = c;
        }
        Ok(HistogramSnapshot { buckets, sum })
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The count in one bucket (0 for out-of-range indices).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets.get(index).copied().unwrap_or(0)
    }

    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// containing the rank-th smallest recording. `None` when empty.
    /// `q` is clamped into `[0, 1]`; the result is monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            if cumulative >= rank {
                return Some(bucket_upper_bound(index));
            }
        }
        None
    }

    /// Median (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Element-wise sum of two snapshots: identical to one histogram
    /// having recorded both value streams (the property tests pin this).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Wire form: `{"count": C, "sum": S, "buckets": [[index, count], …]}`
    /// with only non-zero buckets listed. `count` is redundant (it is the
    /// sum of bucket counts) but convenient for `jq`-style consumers.
    pub fn to_json_value(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::Number(i as f64), Value::Number(c as f64)]))
            .collect();
        Value::Object(vec![
            ("count".to_owned(), Value::Number(self.count() as f64)),
            ("sum".to_owned(), Value::Number(self.sum as f64)),
            ("buckets".to_owned(), Value::Array(buckets)),
        ])
    }

    /// Decodes the [`to_json_value`](HistogramSnapshot::to_json_value)
    /// form. The redundant `count` field is ignored; counts are read from
    /// `buckets`. Sums beyond 2^53 lose precision on the wire (f64) and
    /// are saturated, never rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on a structurally invalid payload.
    pub fn from_json_value(value: &Value) -> Result<HistogramSnapshot, JsonError> {
        let sum_f = value
            .require("sum")?
            .as_f64()
            .ok_or_else(|| JsonError::new("histogram `sum` must be a number"))?;
        let sum = if sum_f.is_finite() && sum_f > 0.0 {
            if sum_f >= u64::MAX as f64 {
                u64::MAX
            } else {
                sum_f as u64
            }
        } else {
            0
        };
        let mut buckets = vec![0u64; BUCKET_COUNT];
        let pairs = value
            .require("buckets")?
            .as_array()
            .ok_or_else(|| JsonError::new("histogram `buckets` must be an array"))?;
        for pair in pairs {
            let items = pair
                .as_array()
                .ok_or_else(|| JsonError::new("histogram bucket must be [index, count]"))?;
            let (Some(index), Some(count)) = (
                items.first().and_then(Value::as_usize),
                items.get(1).and_then(Value::as_u64),
            ) else {
                return Err(JsonError::new("histogram bucket must be [index, count]"));
            };
            let slot = buckets.get_mut(index).ok_or_else(|| {
                JsonError::new(format!("histogram bucket index {index} out of range"))
            })?;
            *slot = count;
        }
        Ok(HistogramSnapshot { buckets, sum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKET_COUNT {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_lower_bound(1), 2);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1106);
        // Median rank 3 → value 3 → bucket 1 → upper bound 3.
        assert_eq!(s.p50(), Some(3));
        // p99 rank 5 → value 1000 → bucket 9 → upper bound 1023.
        assert_eq!(s.p99(), Some(1023));
        assert_eq!(s.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let flag = Arc::new(AtomicBool::new(false));
        let h = Histogram::with_flag(Arc::clone(&flag));
        h.record(42);
        {
            let _span = h.span();
        }
        assert!(h.snapshot().is_empty());
        flag.store(true, Ordering::Relaxed);
        h.record(42);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn span_records_on_drop_and_cancel_does_not() {
        let h = Histogram::new();
        h.span().stop();
        h.span().cancel();
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn json_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 7, 7, 9000] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_json_value(&s.to_json_value()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn merge_is_elementwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1);
        a.record(500);
        b.record(500);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 1001);
        assert_eq!(merged.bucket_count(bucket_index(500)), 2);
    }
}
