//! `isomit-telemetry` — hand-rolled instrumentation for the isomit
//! stack: atomic [`Counter`]s and [`Gauge`]s, log2-bucketed latency
//! [`Histogram`]s with p50/p95/p99 extraction, scoped [`SpanTimer`]s,
//! and a named-metric [`Registry`] that serializes to JSON through the
//! in-repo codec (`isomit_graph::json`). No external metric registries,
//! no macros, no background threads.
//!
//! # Topology
//!
//! Two registries cover the stack:
//!
//! * the **process-global** registry ([`global`]) collects timings from
//!   library code that has no handle-passing path — the RID stages in
//!   `isomit-core` and the Monte-Carlo batches in `isomit-diffusion`;
//! * **per-component** registries (e.g. one per `RidEngine`) collect
//!   serving metrics, keeping unit tests that assert exact counter
//!   values isolated from each other.
//!
//! The service's `stats` verb merges both into one
//! [`RegistrySnapshot`].
//!
//! # Determinism contract
//!
//! Telemetry observes; it never participates in computation. Recording
//! is atomic adds on shared storage, so instrumented results are
//! bit-identical to uninstrumented ones at any thread count — the
//! workspace `tests/telemetry.rs` suite pins this. A registry in
//! [`Registry::disabled`] mode reduces every recording to one relaxed
//! load and makes [`Histogram::span`] skip the clock read entirely.
//!
//! # Naming scheme
//!
//! Dotted `component.metric[_unit]` names, with the unit suffix driving
//! pretty-printing (`*_ns` renders as a duration). The well-known names
//! live in [`names`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod histogram;
mod metrics;
mod registry;

pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot, SpanTimer,
    Stopwatch, BUCKET_COUNT,
};
pub use metrics::{Counter, Gauge};
pub use registry::{Registry, RegistrySnapshot};

use std::sync::OnceLock;

/// Well-known metric names, so producers and consumers cannot drift.
pub mod names {
    /// Wall time of `Rid::extract_stage` (histogram, global registry).
    pub const RID_EXTRACT_STAGE_NS: &str = "rid.extract_stage_ns";
    /// Wall time of `Rid::query_stage` (histogram, global registry).
    pub const RID_QUERY_STAGE_NS: &str = "rid.query_stage_ns";
    /// Wall time of one Monte-Carlo estimation batch (histogram, global).
    pub const MC_BATCH_NS: &str = "mc.batch_ns";
    /// Wall time of one 64-lane wide Monte-Carlo batch (histogram,
    /// global).
    pub const MC_WIDE_BATCH_NS: &str = "mc.wide.batch_ns";
    /// Wide Monte-Carlo batches run (counter); with
    /// [`MC_WIDE_LANES`] this yields the mean lane occupancy
    /// (`lanes / (64 · batches)` — 1.0 means every batch was full).
    pub const MC_WIDE_BATCHES: &str = "mc.wide.batches";
    /// Total lanes (trials) simulated by wide Monte-Carlo batches
    /// (counter).
    pub const MC_WIDE_LANES: &str = "mc.wide.lanes";
    /// End-to-end request latency, receipt to reply (histogram).
    pub const SERVICE_REQUEST_NS: &str = "service.request_ns";
    /// Time a job waited in the bounded queue before a worker picked it
    /// up (histogram).
    pub const SERVICE_QUEUE_WAIT_NS: &str = "service.queue_wait_ns";
    /// Artifact-cache hits (counter).
    pub const SERVICE_CACHE_HITS: &str = "service.cache.hits";
    /// Artifact-cache misses (counter).
    pub const SERVICE_CACHE_MISSES: &str = "service.cache.misses";
    /// Artifact-cache evictions (counter).
    pub const SERVICE_CACHE_EVICTIONS: &str = "service.cache.evictions";
    /// RID requests accepted by the engine (counter).
    pub const SERVICE_RID_REQUESTS: &str = "service.rid_requests";
    /// Simulate requests accepted by the engine (counter).
    pub const SERVICE_SIMULATE_REQUESTS: &str = "service.simulate_requests";
    /// Requests rejected because the queue was full (counter).
    pub const SERVICE_OVERLOADED: &str = "service.overloaded";
    /// Requests dropped at dequeue because their deadline had passed
    /// (counter).
    pub const SERVICE_DEADLINE_EXCEEDED: &str = "service.deadline_exceeded";
    /// Instantaneous depth of the request queue (gauge).
    pub const SERVICE_QUEUE_DEPTH: &str = "service.queue_depth";
    /// Wall time of one rumor-centrality detection pass (histogram,
    /// global registry).
    pub const DETECTOR_RUMOR_CENTRALITY_NS: &str = "detector.rumor_centrality_ns";
    /// Wall time of one Jordan-center detection pass (histogram, global
    /// registry).
    pub const DETECTOR_JORDAN_CENTER_NS: &str = "detector.jordan_center_ns";
    /// Wall time to apply one watch-session delta and (when due) answer
    /// it (histogram).
    pub const WATCH_DELTA_NS: &str = "watch.delta_ns";
    /// Components a watch answer had to recompute (counter, summed
    /// across answers).
    pub const WATCH_DIRTY_COMPONENTS: &str = "watch.dirty_components";
    /// Watch answers that fell back to a full cold recompute (counter).
    pub const WATCH_FULL_RECOMPUTE_FALLBACKS: &str = "watch.full_recompute_fallbacks";
    /// Watch sessions rejected by the admission cap (counter).
    pub const WATCH_SESSIONS_SHED: &str = "watch.sessions_shed";
    /// Artifact-cache entries evicted because a newer snapshot of the
    /// same watch session superseded them (counter).
    pub const SERVICE_CACHE_SUPERSEDED: &str = "service.cache.superseded";
    /// Serialized-result cache hits on the by-fingerprint fast path
    /// (counter).
    pub const SERVICE_RESULT_CACHE_HITS: &str = "service.result_cache.hits";
    /// Serialized-result cache misses on the by-fingerprint fast path
    /// (counter).
    pub const SERVICE_RESULT_CACHE_MISSES: &str = "service.result_cache.misses";
    /// Serialized-result cache evictions (counter).
    pub const SERVICE_RESULT_CACHE_EVICTIONS: &str = "service.result_cache.evictions";
    /// Largest-minus-smallest per-shard request share at the last stats
    /// snapshot, in percent (gauge; 0 means perfectly balanced shards).
    pub const SERVICE_SHARD_IMBALANCE_PCT: &str = "service.shard_imbalance_pct";

    /// `shard.<i>.queue_depth` — per-shard admission-queue depth
    /// (gauge alias of that shard's `service.queue_depth`).
    pub fn shard_queue_depth(shard: usize) -> String {
        format!("shard.{shard}.queue_depth")
    }

    /// `shard.<i>.cache.hits` — per-shard artifact-cache hits (counter
    /// alias of that shard's `service.cache.hits`).
    pub fn shard_cache_hits(shard: usize) -> String {
        format!("shard.{shard}.cache.hits")
    }

    /// `shard.<i>.shed` — requests the shard rejected with `overloaded`
    /// (counter alias of that shard's `service.overloaded`).
    pub fn shard_shed(shard: usize) -> String {
        format!("shard.{shard}.shed")
    }

    /// `shard.<i>.requests` — rid requests routed to the shard (counter
    /// alias of that shard's `service.rid_requests`).
    pub fn shard_requests(shard: usize) -> String {
        format!("shard.{shard}.requests")
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Library code with no handle-passing path
/// (RID stages, Monte-Carlo batches) records here; services merge it
/// into their own snapshots. Created enabled on first use; flip with
/// [`Registry::set_enabled`].
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("lib.test_counter").inc();
        assert!(global()
            .snapshot()
            .counter("lib.test_counter")
            .is_some_and(|v| v >= 1));
    }
}
