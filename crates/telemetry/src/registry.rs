//! The named-metric [`Registry`] and its serializable snapshot.
//!
//! A registry hands out get-or-create handles keyed by a dotted metric
//! name (`service.request_ns`). Handles stay valid forever: they are
//! cheap clones over shared atomics, so hot paths look a metric up once
//! and cache the handle. A registry built with [`Registry::disabled`]
//! (or switched off via [`Registry::set_enabled`]) turns every recording
//! into a single relaxed load — telemetry can be left compiled in
//! everywhere without a measurable cost.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use isomit_graph::json::{JsonError, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A set of named counters, gauges and histograms.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry: recordings are kept.
    pub fn new() -> Registry {
        Registry::with_enabled(true)
    }

    /// A disabled registry: every handle it creates drops recordings at
    /// the cost of one relaxed atomic load (no clock reads for spans).
    pub fn disabled() -> Registry {
        Registry::with_enabled(false)
    }

    fn with_enabled(on: bool) -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(on)),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether recordings are currently kept. The flag is shared with
    /// every handle this registry has created.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off for the registry and all its handles,
    /// including ones already handed out.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned metrics map only means another thread panicked while
        // registering; the map itself is always structurally valid.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get-or-create the counter `name`. If `name` already names a metric
    /// of a different kind, a *detached* counter is returned instead of
    /// panicking: recordings into it are real but invisible to snapshots,
    /// and the kind conflict shows up in tests via the snapshot.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::with_flag(Arc::clone(&self.enabled))))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::with_flag(Arc::clone(&self.enabled)),
        }
    }

    /// Get-or-create the gauge `name` (kind conflicts: see
    /// [`counter`](Registry::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::with_flag(Arc::clone(&self.enabled))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::with_flag(Arc::clone(&self.enabled)),
        }
    }

    /// Get-or-create the histogram `name` (kind conflicts: see
    /// [`counter`](Registry::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::with_flag(Arc::clone(&self.enabled))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::with_flag(Arc::clone(&self.enabled)),
        }
    }

    /// Registers the existing `counter` handle under `name` as well, so
    /// one underlying atomic shows up in snapshots under two names.
    ///
    /// The sharded service uses this to expose one physical counter both
    /// under its shard-local name (`shard.3.cache.hits`) and — via the
    /// shared-name summation of [`RegistrySnapshot::merge`] — under the
    /// fleet-wide aggregate (`service.cache.hits`). If `name` is already
    /// taken the alias is dropped (first registration wins, mirroring
    /// the kind-conflict policy of [`counter`](Registry::counter)).
    pub fn alias_counter(&self, name: &str, counter: &Counter) {
        self.lock()
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(counter.clone()));
    }

    /// Registers the existing `gauge` handle under `name` as well
    /// (see [`alias_counter`](Registry::alias_counter)).
    pub fn alias_gauge(&self, name: &str, gauge: &Gauge) {
        self.lock()
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(gauge.clone()));
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.lock();
        let mut snap = RegistrySnapshot::empty();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// An immutable, serializable view of a [`Registry`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// A snapshot with no metrics.
    pub fn empty() -> RegistrySnapshot {
        RegistrySnapshot::default()
    }

    /// `true` when no metric is present at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Names of all histograms, in sorted order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Combines two snapshots (e.g. the process-global registry and a
    /// per-engine registry). Counters and histogram buckets sum on name
    /// collision; for gauges — instantaneous values with no meaningful
    /// sum — `other` wins. In practice the namespaces are disjoint.
    pub fn merge(&self, other: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = self.clone();
        for (name, &v) in &other.counters {
            let slot = out.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, &v) in &other.gauges {
            out.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.histograms {
            let merged = match out.histograms.get(name) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            out.histograms.insert(name.clone(), merged);
        }
        out
    }

    /// Wire form:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// histograms in the [`HistogramSnapshot::to_json_value`] layout.
    /// Keys appear in sorted order (BTreeMap iteration), so the output
    /// is byte-stable for a given snapshot.
    pub fn to_json_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json_value()))
            .collect();
        Value::Object(vec![
            ("counters".to_owned(), Value::Object(counters)),
            ("gauges".to_owned(), Value::Object(gauges)),
            ("histograms".to_owned(), Value::Object(histograms)),
        ])
    }

    /// Serializes to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes the [`to_json_value`](RegistrySnapshot::to_json_value)
    /// form. Missing sections decode as empty.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on a structurally invalid payload.
    pub fn from_json_value(value: &Value) -> Result<RegistrySnapshot, JsonError> {
        fn fields<'v>(value: &'v Value, key: &str) -> Result<&'v [(String, Value)], JsonError> {
            match value.get(key) {
                None => Ok(&[]),
                Some(Value::Object(fields)) => Ok(fields),
                Some(_) => Err(JsonError::new(format!("`{key}` must be an object"))),
            }
        }
        let mut snap = RegistrySnapshot::empty();
        for (name, v) in fields(value, "counters")? {
            let v = v
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("counter `{name}` must be a u64")))?;
            snap.counters.insert(name.clone(), v);
        }
        for (name, v) in fields(value, "gauges")? {
            let v = v
                .as_f64()
                .ok_or_else(|| JsonError::new(format!("gauge `{name}` must be a number")))?;
            snap.gauges.insert(name.clone(), v as i64);
        }
        for (name, v) in fields(value, "histograms")? {
            snap.histograms
                .insert(name.clone(), HistogramSnapshot::from_json_value(v)?);
        }
        Ok(snap)
    }

    /// Parses a snapshot from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or layout.
    pub fn from_json_str(text: &str) -> Result<RegistrySnapshot, JsonError> {
        RegistrySnapshot::from_json_value(&Value::parse(text)?)
    }

    /// Human-readable rendering: one metric per line, sorted by name.
    /// Histograms render as `p50/p95/p99 (n=…)`; metrics whose name ends
    /// in `_ns` are formatted as durations.
    pub fn pretty(&self) -> String {
        let mut lines: BTreeMap<&str, String> = BTreeMap::new();
        for (name, &v) in &self.counters {
            lines.insert(name, v.to_string());
        }
        for (name, &v) in &self.gauges {
            lines.insert(name, v.to_string());
        }
        for (name, h) in &self.histograms {
            let rendered = match (h.p50(), h.p95(), h.p99()) {
                (Some(p50), Some(p95), Some(p99)) => format!(
                    "p50={} p95={} p99={} (n={})",
                    format_metric_value(name, p50),
                    format_metric_value(name, p95),
                    format_metric_value(name, p99),
                    h.count()
                ),
                _ => "(no recordings)".to_owned(),
            };
            lines.insert(name, rendered);
        }
        let mut out = String::new();
        for (name, rendered) in lines {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&rendered);
            out.push('\n');
        }
        out
    }
}

/// Renders `value` for humans: durations for `*_ns` metrics, plain
/// integers otherwise.
fn format_metric_value(name: &str, value: u64) -> String {
    if name.ends_with("_ns") {
        format_nanos(value)
    } else {
        value.to_string()
    }
}

/// `1234` → `"1.23us"`, `5_000_000_000` → `"5.00s"`, etc.
fn format_nanos(ns: u64) -> String {
    const SCALES: [(f64, &str); 3] = [(1e9, "s"), (1e6, "ms"), (1e3, "us")];
    let v = ns as f64;
    for (scale, unit) in SCALES {
        if v >= scale {
            return format!("{:.2}{unit}", v / scale);
        }
    }
    format!("{ns}ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.snapshot().counter("a"), Some(3));
    }

    #[test]
    fn aliases_share_storage_with_their_source_handle() {
        let r = Registry::new();
        let hits = r.counter("service.cache.hits");
        r.alias_counter("shard.0.cache.hits", &hits);
        hits.add(4);
        let depth = r.gauge("service.queue_depth");
        r.alias_gauge("shard.0.queue_depth", &depth);
        depth.set(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("service.cache.hits"), Some(4));
        assert_eq!(snap.counter("shard.0.cache.hits"), Some(4));
        assert_eq!(snap.gauge("shard.0.queue_depth"), Some(3));
        // An occupied name keeps its first registration.
        let other = Counter::new();
        other.add(99);
        r.alias_counter("service.cache.hits", &other);
        assert_eq!(r.snapshot().counter("service.cache.hits"), Some(4));
    }

    #[test]
    fn kind_conflict_returns_detached_handle() {
        let r = Registry::new();
        r.counter("x").inc();
        let g = r.gauge("x"); // wrong kind: detached
        g.set(99);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.gauge("x"), None);
    }

    #[test]
    fn disabled_registry_drops_everything() {
        let r = Registry::disabled();
        r.counter("c").inc();
        r.gauge("g").set(5);
        r.histogram("h").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.gauge("g"), Some(0));
        assert!(snap.histogram("h").is_some_and(HistogramSnapshot::is_empty));
        // Re-enabling reaches handles created while disabled.
        let c = r.counter("c");
        r.set_enabled(true);
        c.inc();
        assert_eq!(r.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn snapshot_json_round_trip() {
        let r = Registry::new();
        r.counter("service.cache.hits").add(7);
        r.gauge("service.queue_depth").set(-2);
        r.histogram("service.request_ns").record(1500);
        let snap = r.snapshot();
        let back = RegistrySnapshot::from_json_str(&snap.to_json_string()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(2);
        b.counter("c").add(3);
        b.counter("only_b").inc();
        a.histogram("h").record(4);
        b.histogram("h").record(4);
        a.gauge("g").set(1);
        b.gauge("g").set(9);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.counter("c"), Some(5));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.histogram("h").map(HistogramSnapshot::count), Some(2));
        assert_eq!(merged.gauge("g"), Some(9));
    }

    #[test]
    fn pretty_renders_one_line_per_metric() {
        let r = Registry::new();
        r.counter("service.cache.hits").add(12);
        let h = r.histogram("service.request_ns");
        for _ in 0..10 {
            h.record(2_000_000);
        }
        r.histogram("idle_ns"); // registered, never recorded
        let text = r.snapshot().pretty();
        assert!(text.contains("service.cache.hits: 12\n"), "{text}");
        assert!(text.contains("service.request_ns: p50="), "{text}");
        assert!(text.contains("(n=10)"), "{text}");
        assert!(text.contains("ms"), "durations humanized: {text}");
        assert!(text.contains("idle_ns: (no recordings)\n"), "{text}");
    }

    #[test]
    fn format_nanos_scales() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1500), "1.50us");
        assert_eq!(format_nanos(2_500_000), "2.50ms");
        assert_eq!(format_nanos(3_000_000_000), "3.00s");
    }
}
