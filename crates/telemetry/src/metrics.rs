//! Scalar metrics: monotone [`Counter`]s and signed [`Gauge`]s.
//!
//! Handles are cheap clones over shared atomic storage; all operations
//! use relaxed ordering (metrics are independent observations, not a
//! synchronization mechanism). Mutations are gated on a shared enabled
//! flag so a disabled registry reduces every update to one relaxed load.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Relaxed load helper shared by the snapshot paths.
pub(crate) fn relaxed_load(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed)
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A detached, always-enabled counter (not tied to any registry).
    pub fn new() -> Counter {
        Counter::with_flag(Arc::new(AtomicBool::new(true)))
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Counter {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
            enabled,
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; dropped while disabled).
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight requests, …).
#[derive(Debug, Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A detached, always-enabled gauge (not tied to any registry).
    pub fn new() -> Gauge {
        Gauge::with_flag(Arc::new(AtomicBool::new(true)))
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Gauge {
        Gauge {
            value: Arc::new(AtomicI64::new(0)),
            enabled,
        }
    }

    /// Overwrites the value (dropped while disabled).
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta`, which may be negative (dropped while disabled).
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share storage");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn disabled_scalars_drop_updates() {
        let flag = Arc::new(AtomicBool::new(false));
        let c = Counter::with_flag(Arc::clone(&flag));
        let g = Gauge::with_flag(Arc::clone(&flag));
        c.inc();
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        flag.store(true, Ordering::Relaxed);
        c.inc();
        g.set(9);
        assert_eq!((c.get(), g.get()), (1, 9));
    }
}
