//! Property-based tests for the log2 histogram: bucket placement,
//! quantile monotonicity, and merge ≡ recording the concatenated
//! stream (with counts and sums conserved).

use isomit_telemetry::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot,
    BUCKET_COUNT,
};
use proptest::prelude::*;

/// Records every value of `values` into a fresh histogram.
fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn values_land_in_their_bucket(value in any::<u64>()) {
        let bucket = bucket_index(value);
        prop_assert!(bucket < BUCKET_COUNT);
        prop_assert!(bucket_lower_bound(bucket) <= value);
        prop_assert!(value <= bucket_upper_bound(bucket));

        let snapshot = record_all(&[value]);
        prop_assert_eq!(snapshot.bucket_count(bucket), 1);
        prop_assert_eq!(snapshot.count(), 1);
        for other in (0..BUCKET_COUNT).filter(|&b| b != bucket) {
            prop_assert_eq!(snapshot.bucket_count(other), 0);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let snapshot = record_all(&values);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).expect("finite quantiles"));
        let quantiles: Vec<u64> = qs
            .iter()
            .map(|&q| snapshot.quantile(q).expect("non-empty histogram"))
            .collect();
        for pair in quantiles.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles {quantiles:?} for qs {qs:?}");
        }
        // Extremes are exact: q=0 picks the smallest value's bucket,
        // q=1 the largest's, each reported as its bucket upper bound.
        let smallest = *values.iter().min().expect("non-empty");
        let largest = *values.iter().max().expect("non-empty");
        prop_assert_eq!(
            snapshot.quantile(0.0).expect("non-empty"),
            bucket_upper_bound(bucket_index(smallest))
        );
        prop_assert_eq!(
            snapshot.quantile(1.0).expect("non-empty"),
            bucket_upper_bound(bucket_index(largest))
        );
    }

    #[test]
    fn merge_equals_concatenated_stream(
        a in proptest::collection::vec(0u64..1u64 << 40, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 40, 0..100),
    ) {
        let merged = record_all(&a).merge(&record_all(&b));
        let concatenated: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, record_all(&concatenated));
    }

    #[test]
    fn merge_conserves_counts_and_sum(
        a in proptest::collection::vec(0u64..1u64 << 40, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 40, 0..100),
    ) {
        let sa = record_all(&a);
        let sb = record_all(&b);
        let merged = sa.merge(&sb);
        prop_assert_eq!(merged.count(), sa.count() + sb.count());
        prop_assert_eq!(merged.sum(), sa.sum() + sb.sum());
        for bucket in 0..BUCKET_COUNT {
            prop_assert_eq!(
                merged.bucket_count(bucket),
                sa.bucket_count(bucket) + sb.bucket_count(bucket)
            );
        }
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..60),
        b in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let sa = record_all(&a);
        let sb = record_all(&b);
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn json_round_trips_exactly(
        values in proptest::collection::vec(0u64..1u64 << 40, 0..100),
    ) {
        let snapshot = record_all(&values);
        let back = HistogramSnapshot::from_json_value(&snapshot.to_json_value())
            .expect("round trip");
        prop_assert_eq!(snapshot, back);
    }
}
