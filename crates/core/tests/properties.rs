//! Property-based validation of the RID core: both dynamic programs are
//! checked against exhaustive brute-force search on small random
//! instances, and the pipeline's structural invariants are checked on
//! arbitrary snapshots.

use isomit_core::likelihood::{g_factor_discounted, FLIP_DISCOUNT};
use isomit_core::{
    extract_cascade_forest, CascadeTree, InitiatorDetector, Rid, RidObjective, TreeDp,
};
use isomit_diffusion::InfectedNetwork;
use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
use proptest::prelude::*;

/// Random infected snapshot with fully observed states.
fn arb_snapshot(max_nodes: u32) -> impl Strategy<Value = InfectedNetwork> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, any::<bool>(), 0.05f64..1.0).prop_filter_map(
            "no self-loops",
            move |(a, b, pos, w)| {
                (a != b).then(|| {
                    Edge::new(
                        NodeId(a),
                        NodeId(b),
                        if pos { Sign::Positive } else { Sign::Negative },
                        w,
                    )
                })
            },
        );
        let edges = proptest::collection::vec(edge, 1..(3 * n as usize));
        let states = proptest::collection::vec(any::<bool>(), n as usize);
        (edges, states).prop_map(move |(edges, states)| {
            let g = SignedDigraph::from_edges(n as usize, edges).unwrap();
            let states = states
                .into_iter()
                .map(|p| {
                    if p {
                        NodeState::Positive
                    } else {
                        NodeState::Negative
                    }
                })
                .collect();
            InfectedNetwork::from_parts(g, states)
        })
    })
}

/// Edge probability used by the probability-sum DP (flip-discounted).
fn edge_prob(tree: &CascadeTree, parent: usize, child: usize, alpha: f64) -> f64 {
    let (sign, weight) = tree.parent_edge(child).expect("non-root child");
    g_factor_discounted(alpha, tree.state(parent), sign, tree.state(child), weight)
}

/// Brute-force optimum of the probability-sum objective over all
/// initiator sets containing the root.
fn brute_force_probability_sum(tree: &CascadeTree, alpha: f64, beta: f64) -> f64 {
    let n = tree.len();
    assert!(n <= 12, "exponential brute force");
    let mut parent = vec![usize::MAX; n];
    for x in 0..n {
        for &c in tree.children(x) {
            parent[c] = x;
        }
    }
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask & (1 << tree.root()) == 0 {
            continue;
        }
        // P(u) = product of edge probs from nearest initiator ancestor.
        let mut prob_sum = 0.0;
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            if mask & (1 << u) != 0 {
                prob_sum += 1.0;
                continue;
            }
            let mut q = 1.0;
            let mut cur = u;
            loop {
                let p = parent[cur];
                q *= edge_prob(tree, p, cur, alpha);
                if mask & (1 << p) != 0 {
                    break;
                }
                cur = p;
            }
            prob_sum += q;
        }
        let k = mask.count_ones() as f64;
        let objective = -prob_sum + (k - 1.0) * beta;
        if objective < best {
            best = objective;
        }
    }
    best
}

/// Brute-force optimum of the budgeted log-likelihood DP: minimum
/// Σ −ln(edge prob) over non-initiator nodes, over all initiator sets of
/// size exactly k containing the root.
fn brute_force_budgeted(tree: &CascadeTree, alpha: f64, k: usize) -> f64 {
    let n = tree.len();
    assert!(n <= 12, "exponential brute force");
    let mut parent = vec![usize::MAX; n];
    for x in 0..n {
        for &c in tree.children(x) {
            parent[c] = x;
        }
    }
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask & (1 << tree.root()) == 0 || mask.count_ones() as usize != k {
            continue;
        }
        let mut cost = 0.0;
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            if mask & (1 << u) == 0 {
                let p = edge_prob(tree, parent[u], u, alpha);
                cost += if p <= 0.0 { f64::INFINITY } else { -p.ln() };
            }
        }
        if cost < best {
            best = cost;
        }
    }
    best
}

fn small_trees(snapshot: &InfectedNetwork, alpha: f64) -> Vec<CascadeTree> {
    let (trees, _) = extract_cascade_forest(snapshot, alpha);
    trees.into_iter().filter(|t| t.len() <= 12).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probability_sum_dp_matches_brute_force(
        snapshot in arb_snapshot(10),
        beta in 0.0f64..2.0,
    ) {
        let alpha = 2.0;
        for tree in small_trees(&snapshot, alpha) {
            let outcome = TreeDp::solve_probability_sum(&tree, alpha, beta);
            let optimal = brute_force_probability_sum(&tree, alpha, beta);
            prop_assert!(
                (outcome.objective - optimal).abs() < 1e-9,
                "dp {} vs brute force {optimal} on a {}-node tree",
                outcome.objective,
                tree.len()
            );
        }
    }

    #[test]
    fn budgeted_dp_matches_brute_force(snapshot in arb_snapshot(9)) {
        let alpha = 2.0;
        for tree in small_trees(&snapshot, alpha) {
            let dp = TreeDp::solve(&tree, alpha, tree.len());
            for k in 1..=dp.k_max() {
                let optimal = brute_force_budgeted(&tree, alpha, k);
                let got = dp.cost(k);
                if optimal.is_infinite() {
                    prop_assert!(got.is_infinite());
                } else {
                    prop_assert!(
                        (got - optimal).abs() < 1e-9,
                        "k={k}: dp {got} vs brute force {optimal}"
                    );
                }
            }
        }
    }

    #[test]
    fn budgeted_costs_are_non_increasing_in_k(snapshot in arb_snapshot(12)) {
        let alpha = 3.0;
        let (trees, _) = extract_cascade_forest(&snapshot, alpha);
        for tree in trees {
            let dp = TreeDp::solve(&tree, alpha, tree.len());
            let mut last = f64::INFINITY;
            for k in 1..=dp.k_max() {
                let c = dp.cost(k);
                prop_assert!(c <= last + 1e-9, "cost rose at k={k}");
                last = c;
            }
        }
    }

    #[test]
    fn penalized_initiator_count_is_monotone_in_beta(snapshot in arb_snapshot(14)) {
        let alpha = 3.0;
        let (trees, _) = extract_cascade_forest(&snapshot, alpha);
        for tree in trees {
            let mut last = usize::MAX;
            for beta in [0.0, 0.5, 1.0, 2.0, 5.0] {
                let n = TreeDp::solve_probability_sum(&tree, alpha, beta)
                    .initiators
                    .len();
                prop_assert!(n <= last, "count rose with beta at {beta}");
                last = n;
            }
        }
    }

    #[test]
    fn forest_partitions_snapshot_and_preserves_edges(snapshot in arb_snapshot(16)) {
        let alpha = 3.0;
        let (trees, components) = extract_cascade_forest(&snapshot, alpha);
        prop_assert!(trees.len() >= components || snapshot.node_count() == 0);
        let mut seen = vec![false; snapshot.node_count()];
        for tree in &trees {
            for local in 0..tree.len() {
                let id = tree.snapshot_id(local);
                prop_assert!(!seen[id.index()], "node {id} in two trees");
                seen[id.index()] = true;
                prop_assert_eq!(tree.state(local), snapshot.state(id));
                if local != tree.root() {
                    // Parent edge exists in the snapshot graph.
                    let mut parent = None;
                    for x in 0..tree.len() {
                        if tree.children(x).contains(&local) {
                            parent = Some(x);
                        }
                    }
                    let p = tree.snapshot_id(parent.expect("non-root has parent"));
                    let (sign, weight) = tree.parent_edge(local).unwrap();
                    let e = snapshot.graph().edge(p, id).expect("edge exists");
                    prop_assert_eq!(e.sign, sign);
                    prop_assert!((e.weight - weight).abs() < 1e-15);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "forest must cover every node");
    }

    #[test]
    fn rid_detects_at_least_the_definite_roots(snapshot in arb_snapshot(16)) {
        for objective in [RidObjective::ProbabilitySum, RidObjective::LogLikelihood] {
            let rid = Rid::new(3.0, 1.0).unwrap().with_objective(objective);
            let detection = rid.detect(&snapshot);
            // Every node with no in-links must be detected (nobody could
            // have activated it).
            for v in snapshot.graph().nodes() {
                if snapshot.graph().in_degree(v) == 0 {
                    let orig = snapshot.mapping().to_original(v).unwrap();
                    prop_assert!(
                        detection.contains(orig),
                        "definite root {orig} missed ({objective:?})"
                    );
                }
            }
            // All detected states are concrete.
            for d in &detection.initiators {
                prop_assert!(d.state.is_active());
            }
        }
    }

    #[test]
    fn flip_discount_is_between_equation_and_prose(
        w in 0.01f64..1.0,
        pos in any::<bool>(),
    ) {
        use isomit_core::likelihood::{g_factor, g_factor_lenient};
        let sign = if pos { Sign::Positive } else { Sign::Negative };
        // Inconsistent configuration: P -> P over negative, P -> N over positive.
        let (sx, sy) = match sign {
            Sign::Positive => (NodeState::Positive, NodeState::Negative),
            Sign::Negative => (NodeState::Positive, NodeState::Positive),
        };
        let strict = g_factor(2.0, sx, sign, sy, w);
        let lenient = g_factor_lenient(2.0, sx, sign, sy, w);
        let discounted = g_factor_discounted(2.0, sx, sign, sy, w);
        prop_assert_eq!(strict, 0.0);
        prop_assert_eq!(lenient, 1.0);
        prop_assert!(discounted > strict && discounted < lenient);
        prop_assert!((discounted / FLIP_DISCOUNT).abs() <= 1.0 + 1e-12);
    }
}

/// Random finite detector config for codec round-trips.
fn arb_rid_config() -> impl Strategy<Value = isomit_core::RidConfig> {
    (1.0f64..16.0, 0.0f64..8.0, any::<bool>(), any::<bool>()).prop_map(
        |(alpha, beta, log_likelihood, external_support)| isomit_core::RidConfig {
            alpha,
            beta,
            objective: if log_likelihood {
                RidObjective::LogLikelihood
            } else {
                RidObjective::ProbabilitySum
            },
            external_support,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rid_config_round_trips_bit_exactly(config in arb_rid_config()) {
        let back = isomit_core::RidConfig::from_json_str(&config.to_json_string()).unwrap();
        prop_assert_eq!(back, config);
        prop_assert_eq!(back.alpha.to_bits(), config.alpha.to_bits());
        prop_assert_eq!(back.beta.to_bits(), config.beta.to_bits());
    }

    #[test]
    fn rid_result_round_trips_bit_exactly(
        snapshot in arb_snapshot(12),
        config in arb_rid_config(),
    ) {
        let rid = Rid::from_config(config).unwrap();
        let result = isomit_core::RidResult {
            config,
            detection: rid.detect(&snapshot),
        };
        let back = isomit_core::RidResult::from_json_str(&result.to_json_string()).unwrap();
        prop_assert_eq!(
            back.detection.objective.to_bits(),
            result.detection.objective.to_bits()
        );
        prop_assert_eq!(back, result);
    }
}
