use crate::detection::{Detection, InitiatorDetector};
use crate::error::RidError;
use isomit_diffusion::{InfectedNetwork, Mfc};
use serde::{Deserialize, Serialize};

/// Which per-tree objective RID optimizes when selecting the number of
/// initiators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RidObjective {
    /// The paper's objective as printed (§III-D): maximize
    /// `OPT = Σ_u P(u, s(u) | I, S)` − `(k−1)·β`. Per-node probabilities
    /// live in `[0, 1]`, so this is the objective under which the
    /// paper's `β ∈ [0, 1]` sensitivity range (Figures 5–6) is
    /// meaningful. Solved exactly by
    /// [`TreeDp::solve_probability_sum`](crate::TreeDp::solve_probability_sum).
    #[default]
    ProbabilitySum,
    /// Maximum-likelihood variant: minimize the negative log-likelihood
    /// `Σ −ln g` of the explained tree plus `(k−1)·β`. Edge costs are
    /// unbounded, so useful `β` values are larger. Solved exactly by
    /// [`TreeDp::solve_penalized`](crate::TreeDp::solve_penalized).
    LogLikelihood,
}

/// Plain-data description of a [`Rid`] detector, the unit the serving
/// wire protocol and config files speak.
///
/// Unlike [`Rid`] it performs no validation — turn it into a detector
/// with [`Rid::from_config`], which applies the same parameter checks
/// as [`Rid::new`]. The default matches the paper's headline setting:
/// `α = 3`, `β = 0.1`, probability-sum objective with external support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RidConfig {
    /// The MFC boosting coefficient `α` (must be finite and `>= 1`).
    pub alpha: f64,
    /// The per-initiator penalty `β` (must be finite and `>= 0`).
    pub beta: f64,
    /// The per-tree objective to optimize.
    pub objective: RidObjective,
    /// Whether the probability-sum objective includes the
    /// external-support term.
    pub external_support: bool,
}

impl RidConfig {
    /// The MFC diffusion model this detector configuration assumes —
    /// the forward model behind the serving engine's `simulate` verb
    /// and the scale harness's snapshot sampling, derived here so
    /// detection and simulation cannot drift apart on `α`.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] unless `alpha` is finite
    /// and `>= 1`.
    pub fn model(&self) -> Result<Mfc, RidError> {
        Mfc::new(self.alpha).map_err(|_| RidError::InvalidParameter {
            name: "alpha",
            value: self.alpha,
            constraint: "must be finite and >= 1",
        })
    }
}

impl Default for RidConfig {
    fn default() -> Self {
        RidConfig {
            alpha: 3.0,
            beta: 0.1,
            objective: RidObjective::ProbabilitySum,
            external_support: true,
        }
    }
}

/// The full **Rumor Initiator Detector** of the paper (§III-E).
///
/// Pipeline: infected connected components → maximum-likelihood cascade
/// forest (Chu-Liu/Edmonds over sign-consistent boosted arcs) →
/// per-tree binary transformation and dynamic programming, selecting the
/// number of initiators per tree by the penalized objective
/// `argmin_k  −OPT(k) + (k − 1)·β`.
///
/// * `alpha` — the MFC asymmetric boosting coefficient (the paper's
///   experiments use `3`).
/// * `beta` — the per-initiator penalty; the paper evaluates
///   `RID(β = 0.09)` and `RID(β = 0.1)` and sweeps `β ∈ [0, 1]` in its
///   Figures 5–6. Larger `β` keeps trees whole (fewer initiators, higher
///   precision); smaller `β` splits them aggressively (more initiators,
///   higher recall).
///
/// ```
/// use isomit_core::{InitiatorDetector, Rid};
/// # fn main() -> Result<(), isomit_core::RidError> {
/// let rid = Rid::new(3.0, 0.1)?;
/// assert_eq!(rid.name(), "RID(0.1)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rid {
    alpha: f64,
    beta: f64,
    objective: RidObjective,
    external_support: bool,
}

impl Rid {
    /// Creates a RID detector.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] unless `alpha >= 1` and
    /// `beta >= 0` (both finite).
    pub fn new(alpha: f64, beta: f64) -> Result<Self, RidError> {
        if !alpha.is_finite() || alpha < 1.0 {
            return Err(RidError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and >= 1",
            });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(RidError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Rid {
            alpha,
            beta,
            objective: RidObjective::default(),
            external_support: true,
        })
    }

    /// Enables or disables the external-support term of the
    /// probability-sum objective (default: enabled). Disabling reduces
    /// each node's explanation to its single tree path — the ablation
    /// evaluated by the `ablation` experiment binary.
    pub fn with_external_support(mut self, enabled: bool) -> Self {
        self.external_support = enabled;
        self
    }

    /// Switches the per-tree objective (default:
    /// [`RidObjective::ProbabilitySum`]).
    pub fn with_objective(mut self, objective: RidObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Builds a detector from a plain [`RidConfig`], applying the same
    /// validation as [`Rid::new`].
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] under the same conditions
    /// as [`Rid::new`].
    pub fn from_config(config: RidConfig) -> Result<Self, RidError> {
        Ok(Rid::new(config.alpha, config.beta)?
            .with_objective(config.objective)
            .with_external_support(config.external_support))
    }

    /// The detector's parameters as a plain [`RidConfig`].
    pub fn config(&self) -> RidConfig {
        RidConfig {
            alpha: self.alpha,
            beta: self.beta,
            objective: self.objective,
            external_support: self.external_support,
        }
    }

    /// Whether the external-support term is enabled.
    pub fn external_support_enabled(&self) -> bool {
        self.external_support
    }

    /// The configured per-tree objective.
    pub fn objective(&self) -> RidObjective {
        self.objective
    }

    /// The boosting coefficient `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The initiator penalty `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl InitiatorDetector for Rid {
    fn name(&self) -> String {
        format!("RID({})", self.beta)
    }

    fn detect(&self, snapshot: &InfectedNetwork) -> Detection {
        // One-shot path through the two-stage pipeline (see `stages`):
        // extract the forest artifacts, then answer the single query.
        let artifacts = self.extract_stage(snapshot);
        self.query_stage(snapshot, &artifacts)
            .expect("freshly extracted artifacts match the detector alpha")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_diffusion::{DiffusionModel, Mfc, SeedSet};
    use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(Rid::new(0.5, 0.1).is_err());
        assert!(Rid::new(3.0, -0.1).is_err());
        assert!(Rid::new(f64::NAN, 0.1).is_err());
        let rid = Rid::new(3.0, 0.09).unwrap();
        assert_eq!(rid.alpha(), 3.0);
        assert_eq!(rid.beta(), 0.09);
        assert_eq!(rid.name(), "RID(0.09)");
    }

    #[test]
    fn recovers_single_seed_on_deterministic_chain() {
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.9),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.9),
                Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.9),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let cascade = Mfc::new(3.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let snapshot = InfectedNetwork::from_cascade(&g, &cascade);
        let detection = Rid::new(3.0, 0.5).unwrap().detect(&snapshot);
        assert_eq!(detection.len(), 1);
        assert!(detection.contains(NodeId(0)));
        assert_eq!(
            detection.state_of(NodeId(0)),
            Some(isomit_graph::NodeState::Positive)
        );
        assert_eq!(detection.component_count, 1);
        assert_eq!(detection.tree_count, 1);
    }

    #[test]
    fn recovers_two_seeds_in_separate_components() {
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.9),
                Edge::new(NodeId(2), NodeId(3), Sign::Negative, 0.9),
            ],
        )
        .unwrap();
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(2), Sign::Negative)])
            .unwrap();
        let cascade = Mfc::new(3.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let snapshot = InfectedNetwork::from_cascade(&g, &cascade);
        let detection = Rid::new(3.0, 0.1).unwrap().detect(&snapshot);
        assert!(detection.contains(NodeId(0)));
        assert!(detection.contains(NodeId(2)));
        assert_eq!(detection.component_count, 2);
    }

    #[test]
    fn small_beta_splits_more_than_large_beta() {
        // A long weak chain: tiny beta should break it into many
        // initiators, large beta should keep it whole.
        let edges: Vec<Edge> = (0..20)
            .map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Negative, 0.3))
            .collect();
        let g = SignedDigraph::from_edges(21, edges).unwrap();
        let states = vec![isomit_graph::NodeState::Positive; 21]
            .into_iter()
            .enumerate()
            .map(|(i, _)| {
                if i % 2 == 0 {
                    isomit_graph::NodeState::Positive
                } else {
                    isomit_graph::NodeState::Negative
                }
            })
            .collect();
        let snapshot = InfectedNetwork::from_parts(g, states);
        let loose = Rid::new(3.0, 0.01).unwrap().detect(&snapshot);
        let tight = Rid::new(3.0, 5.0).unwrap().detect(&snapshot);
        assert!(
            loose.len() > tight.len(),
            "beta 0.01 found {} <= beta 5.0 found {}",
            loose.len(),
            tight.len()
        );
        assert_eq!(tight.len(), 1);
    }

    #[test]
    fn detection_is_deterministic() {
        let g = SignedDigraph::from_edges(
            6,
            (0..5).map(|i| {
                Edge::new(
                    NodeId(i),
                    NodeId(i + 1),
                    if i % 2 == 0 {
                        Sign::Positive
                    } else {
                        Sign::Negative
                    },
                    0.4,
                )
            }),
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Negative);
        let cascade = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let snapshot = InfectedNetwork::from_cascade(&g, &cascade);
        let rid = Rid::new(2.0, 0.1).unwrap();
        assert_eq!(rid.detect(&snapshot), rid.detect(&snapshot));
    }

    #[test]
    fn empty_snapshot_detects_nothing() {
        let g = SignedDigraph::from_edges(0, []).unwrap();
        let snapshot = InfectedNetwork::from_parts(g, vec![]);
        let detection = Rid::new(3.0, 0.1).unwrap().detect(&snapshot);
        assert!(detection.is_empty());
        assert_eq!(detection.tree_count, 0);
    }
}
