//! The §III-B infection likelihood of the paper: the per-edge factor
//! `g(s(x), s_I(x,y), s(y), w_I(x,y))`, the per-node infection
//! probability `P(u, s(u) | I, S)` (exact, by path enumeration — only
//! tractable on small graphs), and the snapshot likelihood
//! `P(G_I | I, S)`.
//!
//! The paper's prose and displayed equation disagree on the
//! sign-inconsistent case (prose: "assigned with value one", equation:
//! `0`). We follow the **equation** — an inconsistent edge cannot be an
//! activation link, so a path through it explains nothing — and expose
//! [`g_factor_lenient`] for the prose convention, which treats
//! inconsistent edges as transparent.

use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState, Sign};
use std::collections::BTreeMap;

/// `true` if the diffusion link `(x, y)` is *sign consistent*
/// (Definition 5): `s(x) · s(x,y) = s(y)`. [`NodeState::Unknown`]
/// endpoints are wildcards and make any edge consistent;
/// [`NodeState::Inactive`] endpoints make it inconsistent (an inactive
/// node neither transmits nor holds an opinion).
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::sign_consistent;
/// use isomit_graph::{NodeState, Sign};
///
/// // A believer activating over a distrust link produces a denier.
/// assert!(sign_consistent(NodeState::Positive, Sign::Negative, NodeState::Negative));
/// // ... and cannot produce a fellow believer.
/// assert!(!sign_consistent(NodeState::Positive, Sign::Negative, NodeState::Positive));
/// // Unknown endpoints are wildcards.
/// assert!(sign_consistent(NodeState::Unknown, Sign::Positive, NodeState::Negative));
/// ```
pub fn sign_consistent(s_x: NodeState, edge_sign: Sign, s_y: NodeState) -> bool {
    match (s_x.sign(), s_y.sign()) {
        (Some(sx), Some(sy)) => sx * edge_sign == sy,
        _ => s_x.is_unknown() || s_y.is_unknown(),
    }
}

/// The boosted activation probability `w̄`: `min(1, α·w)` on positive
/// links, `w` on negative links.
///
/// # Panics
///
/// Panics (debug) if `alpha < 1` or `w` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::boosted_probability;
/// use isomit_graph::Sign;
///
/// assert_eq!(boosted_probability(3.0, Sign::Positive, 0.25), 0.75);
/// assert_eq!(boosted_probability(3.0, Sign::Positive, 0.5), 1.0); // capped
/// assert_eq!(boosted_probability(3.0, Sign::Negative, 0.25), 0.25); // raw
/// ```
pub fn boosted_probability(alpha: f64, sign: Sign, weight: f64) -> f64 {
    debug_assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
    debug_assert!(
        (0.0..=1.0).contains(&weight),
        "weight {weight} out of range"
    );
    match sign {
        Sign::Positive => (alpha * weight).min(1.0),
        Sign::Negative => weight,
    }
}

/// The paper's per-edge likelihood factor `g`:
///
/// * `min(1, α·w)` — sign-consistent positive link;
/// * `w` — sign-consistent negative link;
/// * `0` — sign-inconsistent link (the displayed equation's convention).
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::g_factor;
/// use isomit_graph::{NodeState, Sign};
///
/// let (p, n) = (NodeState::Positive, NodeState::Negative);
/// assert_eq!(g_factor(3.0, p, Sign::Positive, p, 0.25), 0.75); // boosted
/// assert_eq!(g_factor(3.0, p, Sign::Negative, n, 0.25), 0.25); // raw
/// assert_eq!(g_factor(3.0, p, Sign::Positive, n, 0.25), 0.0); // inconsistent
/// ```
pub fn g_factor(alpha: f64, s_x: NodeState, edge_sign: Sign, s_y: NodeState, weight: f64) -> f64 {
    if sign_consistent(s_x, edge_sign, s_y) {
        boosted_probability(alpha, edge_sign, weight)
    } else {
        0.0
    }
}

/// The prose variant of [`g_factor`]: inconsistent links contribute `1`
/// (they are treated as "was an activation link but the state was later
/// flipped by someone else"), so paths passing through them are not
/// killed. Provided for completeness and ablation.
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::{g_factor, g_factor_lenient};
/// use isomit_graph::{NodeState, Sign};
///
/// let (p, n) = (NodeState::Positive, NodeState::Negative);
/// // The two conventions differ only on sign-inconsistent links.
/// assert_eq!(g_factor(3.0, p, Sign::Positive, n, 0.25), 0.0);
/// assert_eq!(g_factor_lenient(3.0, p, Sign::Positive, n, 0.25), 1.0);
/// assert_eq!(g_factor_lenient(3.0, p, Sign::Positive, p, 0.25), 0.75);
/// ```
pub fn g_factor_lenient(
    alpha: f64,
    s_x: NodeState,
    edge_sign: Sign,
    s_y: NodeState,
    weight: f64,
) -> f64 {
    if sign_consistent(s_x, edge_sign, s_y) {
        boosted_probability(alpha, edge_sign, weight)
    } else {
        1.0
    }
}

/// Probability discount applied to *sign-inconsistent* links when they
/// are used as activation-link candidates.
///
/// The paper's two conventions for inconsistent links — the displayed
/// equation's `g = 0` ("cannot be an activation link") and the prose's
/// `g = 1` ("was an activation link but the target was later flipped") —
/// bracket the truth: an inconsistent link *can* be the original
/// activation link, but only in conjunction with a later flip, a
/// strictly less likely compound event. RID's pipeline approximates that
/// compound probability as `FLIP_DISCOUNT · w̄`, which keeps the
/// extraction faithful to Algorithm 2 (every in-link is a candidate, so
/// tree roots are exactly the nodes nobody could have activated) while
/// still strongly preferring consistent explanations.
pub const FLIP_DISCOUNT: f64 = 1e-3;

/// The activation-link likelihood used by RID's forest extraction and
/// dynamic program: `w̄` (the boosted probability) on sign-consistent
/// links, `FLIP_DISCOUNT · w̄` on inconsistent ones.
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::{g_factor_discounted, FLIP_DISCOUNT};
/// use isomit_graph::{NodeState, Sign};
///
/// let (p, n) = (NodeState::Positive, NodeState::Negative);
/// assert_eq!(g_factor_discounted(3.0, p, Sign::Positive, p, 0.25), 0.75);
/// // An inconsistent link stays a candidate, heavily discounted.
/// assert_eq!(g_factor_discounted(3.0, p, Sign::Positive, n, 0.25), FLIP_DISCOUNT * 0.75);
/// ```
pub fn g_factor_discounted(
    alpha: f64,
    s_x: NodeState,
    edge_sign: Sign,
    s_y: NodeState,
    weight: f64,
) -> f64 {
    let base = boosted_probability(alpha, edge_sign, weight);
    if sign_consistent(s_x, edge_sign, s_y) {
        base
    } else {
        FLIP_DISCOUNT * base
    }
}

/// Negative log of [`g_factor`]; `f64::INFINITY` when the factor is `0`.
/// This is the edge cost used by the k-ISOMIT-BT dynamic program.
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::edge_cost;
/// use isomit_graph::{NodeState, Sign};
///
/// let (p, n) = (NodeState::Positive, NodeState::Negative);
/// let cost = edge_cost(3.0, p, Sign::Positive, p, 0.25);
/// assert!((cost - (-0.75f64.ln())).abs() < 1e-12);
/// // Inconsistent links are unusable: infinite cost.
/// assert!(edge_cost(3.0, p, Sign::Positive, n, 0.25).is_infinite());
/// ```
pub fn edge_cost(alpha: f64, s_x: NodeState, edge_sign: Sign, s_y: NodeState, weight: f64) -> f64 {
    let g = g_factor(alpha, s_x, edge_sign, s_y, weight);
    if g <= 0.0 {
        f64::INFINITY
    } else {
        -g.ln()
    }
}

/// Hard cap on nodes for the exact path-enumeration routines; beyond
/// this the number of simple paths explodes.
pub const EXACT_NODE_LIMIT: usize = 24;

/// Exact `P(u, s(u) | I, S)` by enumeration of simple paths from every
/// initiator to `u` (the paper's §III-B formula):
///
/// `P = 1 − Π_{i∈I} Π_{p∈P(i,u)} (1 − Π_{(x,y)∈p} g(...))`.
///
/// Initiator states in `assumed` override the snapshot states (this is
/// how candidate `(I, S)` pairs are scored); an initiator `u` itself has
/// probability `1` if its assumed state matches the snapshot (or the
/// snapshot is unknown) and `0` otherwise.
///
/// # Panics
///
/// Panics if the network exceeds [`EXACT_NODE_LIMIT`] nodes, if `u` or
/// an initiator is out of bounds, or if `alpha < 1`.
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::node_infection_probability;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // Initiator 0 can reach 2 two ways: directly (g = 3·0.125 = 0.375)
/// // or via 1 (g = 0.75 · 0.75 = 0.5625); P = 1 − (1 − 0.375)(1 − 0.5625).
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.25),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.25),
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 0.125),
///     ],
/// )?;
/// let inf = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 3]);
/// let p = node_infection_probability(&inf, 3.0, &[(NodeId(0), Sign::Positive)], NodeId(2));
/// assert!((p - (1.0 - 0.625 * 0.4375)).abs() < 1e-12);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn node_infection_probability(
    inf: &InfectedNetwork,
    alpha: f64,
    initiators: &[(NodeId, Sign)],
    u: NodeId,
) -> f64 {
    assert!(
        inf.node_count() <= EXACT_NODE_LIMIT,
        "exact path enumeration limited to {EXACT_NODE_LIMIT} nodes, got {}",
        inf.node_count()
    );
    assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
    let g = inf.graph();
    assert!(g.contains(u), "node {u} out of bounds");
    let assumed: BTreeMap<NodeId, Sign> = initiators.iter().copied().collect();
    let state_of = |v: NodeId| -> NodeState {
        match assumed.get(&v) {
            Some(&s) => NodeState::from_sign(s),
            None => inf.state(v),
        }
    };

    if let Some(&s) = assumed.get(&u) {
        let observed = inf.state(u);
        return if observed.is_unknown() || observed.sign() == Some(s) {
            1.0
        } else {
            0.0
        };
    }

    // DFS over simple paths from each initiator, multiplying g factors.
    let mut miss_product = 1.0f64; // Π (1 − path strength)
    let mut on_path = vec![false; g.node_count()];
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &isomit_graph::SignedDigraph,
        alpha: f64,
        target: NodeId,
        cur: NodeId,
        strength: f64,
        on_path: &mut Vec<bool>,
        state_of: &dyn Fn(NodeId) -> NodeState,
        miss_product: &mut f64,
    ) {
        if cur == target {
            *miss_product *= 1.0 - strength;
            return;
        }
        on_path[cur.index()] = true;
        for e in g.out_edges(cur) {
            if on_path[e.dst.index()] {
                continue;
            }
            let f = g_factor(alpha, state_of(cur), e.sign, state_of(e.dst), e.weight);
            if f > 0.0 {
                dfs(
                    g,
                    alpha,
                    target,
                    e.dst,
                    strength * f,
                    on_path,
                    state_of,
                    miss_product,
                );
            }
        }
        on_path[cur.index()] = false;
    }
    for &(i, _) in initiators {
        assert!(g.contains(i), "initiator {i} out of bounds");
        dfs(
            g,
            alpha,
            u,
            i,
            1.0,
            &mut on_path,
            &state_of,
            &mut miss_product,
        );
    }
    1.0 - miss_product
}

/// Exact snapshot likelihood `P(G_I | I, S) = Π_u P(u, s(u) | I, S)`
/// (§III-B), by path enumeration.
///
/// # Panics
///
/// Same conditions as [`node_infection_probability`].
///
/// # Examples
///
/// ```
/// use isomit_core::likelihood::snapshot_likelihood;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // Chain 0 -> 1 -> 2 of believers, initiator 0 assumed:
/// // P(0) = 1, P(1) = 0.75, P(2) = 0.75² → product 0.421875.
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.25),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.25),
///     ],
/// )?;
/// let inf = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 3]);
/// let p = snapshot_likelihood(&inf, 3.0, &[(NodeId(0), Sign::Positive)]);
/// assert!((p - 0.421875).abs() < 1e-12);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn snapshot_likelihood(
    inf: &InfectedNetwork,
    alpha: f64,
    initiators: &[(NodeId, Sign)],
) -> f64 {
    inf.graph()
        .nodes()
        .map(|u| node_infection_probability(inf, alpha, initiators, u))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_diffusion::InfectedNetwork;
    use isomit_graph::{Edge, SignedDigraph};

    fn inf(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, states.to_vec())
    }

    use NodeState::{Negative as N, Positive as P, Unknown as U};

    #[test]
    fn consistency_table() {
        assert!(sign_consistent(P, Sign::Positive, P));
        assert!(sign_consistent(P, Sign::Negative, N));
        assert!(sign_consistent(N, Sign::Negative, P));
        assert!(!sign_consistent(P, Sign::Positive, N));
        assert!(!sign_consistent(N, Sign::Positive, P));
        // Unknown is a wildcard.
        assert!(sign_consistent(U, Sign::Positive, N));
        assert!(sign_consistent(P, Sign::Negative, U));
        // Inactive transmits nothing.
        assert!(!sign_consistent(NodeState::Inactive, Sign::Positive, P));
    }

    #[test]
    fn g_factor_values() {
        assert!((g_factor(3.0, P, Sign::Positive, P, 0.2) - 0.6).abs() < 1e-12);
        assert!((g_factor(3.0, P, Sign::Positive, P, 0.5) - 1.0).abs() < 1e-12);
        assert!((g_factor(3.0, P, Sign::Negative, N, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(g_factor(3.0, P, Sign::Positive, N, 0.9), 0.0);
        assert_eq!(g_factor_lenient(3.0, P, Sign::Positive, N, 0.9), 1.0);
    }

    #[test]
    fn edge_cost_is_neg_log() {
        let c = edge_cost(1.0, P, Sign::Negative, N, 0.5);
        assert!((c - 0.5f64.ln().abs()).abs() < 1e-12);
        assert!(edge_cost(1.0, P, Sign::Positive, N, 0.5).is_infinite());
        assert_eq!(edge_cost(2.0, P, Sign::Positive, P, 0.5), 0.0); // p = 1
    }

    #[test]
    fn single_edge_probability() {
        let inf = inf(&[(0, 1, Sign::Positive, 0.25)], &[P, P]);
        let p = node_infection_probability(&inf, 2.0, &[(NodeId(0), Sign::Positive)], NodeId(1));
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn initiator_probability_is_indicator() {
        let inf = inf(&[], &[P]);
        assert_eq!(
            node_infection_probability(&inf, 2.0, &[(NodeId(0), Sign::Positive)], NodeId(0)),
            1.0
        );
        assert_eq!(
            node_infection_probability(&inf, 2.0, &[(NodeId(0), Sign::Negative)], NodeId(0)),
            0.0
        );
    }

    #[test]
    fn two_parallel_paths_combine_noisy_or() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, each path strength 0.25;
        // P = 1 - (1 - 0.25)^2 = 0.4375.
        let inf = inf(
            &[
                (0, 1, Sign::Positive, 0.5),
                (1, 3, Sign::Positive, 0.5),
                (0, 2, Sign::Positive, 0.5),
                (2, 3, Sign::Positive, 0.5),
            ],
            &[P, P, P, P],
        );
        let p = node_infection_probability(&inf, 1.0, &[(NodeId(0), Sign::Positive)], NodeId(3));
        assert!((p - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_edge_kills_path() {
        // 0 -(+)-> 1 observed negative: inconsistent, so no path reaches 1.
        let inf = inf(&[(0, 1, Sign::Positive, 0.9)], &[P, N]);
        let p = node_infection_probability(&inf, 2.0, &[(NodeId(0), Sign::Positive)], NodeId(1));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn unknown_state_lets_path_through() {
        let inf = inf(&[(0, 1, Sign::Positive, 0.5)], &[P, U]);
        let p = node_infection_probability(&inf, 2.0, &[(NodeId(0), Sign::Positive)], NodeId(1));
        assert!((p - 1.0).abs() < 1e-12); // boosted to 1.0
    }

    #[test]
    fn snapshot_likelihood_multiplies_nodes() {
        // Chain 0 -> 1 -> 2, consistent, alpha 1, weights 0.5:
        // P(0) = 1 (initiator), P(1) = 0.5, P(2) = 0.25.
        let inf = inf(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Positive, 0.5)],
            &[P, P, P],
        );
        let l = snapshot_likelihood(&inf, 1.0, &[(NodeId(0), Sign::Positive)]);
        assert!((l - 0.125).abs() < 1e-12);
    }

    #[test]
    fn better_initiator_set_scores_higher() {
        // True seed 0: choosing 0 should beat choosing leaf 2.
        let inf = inf(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Positive, 0.5)],
            &[P, P, P],
        );
        let with_root = snapshot_likelihood(&inf, 1.0, &[(NodeId(0), Sign::Positive)]);
        let with_leaf = snapshot_likelihood(&inf, 1.0, &[(NodeId(2), Sign::Positive)]);
        assert!(with_root > with_leaf);
        assert_eq!(with_leaf, 0.0); // nothing reaches 0 or 1 from 2
    }

    #[test]
    #[should_panic(expected = "exact path enumeration limited")]
    fn large_network_rejected() {
        let states = vec![P; EXACT_NODE_LIMIT + 1];
        let inf = inf(&[], &states);
        node_infection_probability(&inf, 1.0, &[], NodeId(0));
    }
}
