// lint:allow-file(indexing) the k-ISOMIT-BT dynamic program indexes f/g/cap/choice tables allocated per binarized-tree node and context state; every subscript is a node id below bt.len() or a capacity below the table's own length
// lint:allow-file(cast-truncation) the DP packs backtracking choices and per-node budgets into u8/u32 table codes; every cast source is a capacity bounded by k (≤ 255) or a binarized-tree index already validated against u32::MAX at tree construction
//! The k-ISOMIT-BT dynamic program (§III-D) and its penalized variant
//! used by RID's model selection (§III-E3).
//!
//! Both operate on a [`CascadeTree`] after the Figure-3 binarization.
//! Every node of the binary tree is either *explained by its parent*
//! (paying the activation-edge cost `−ln g`) or an *initiator* (paying
//! nothing, but consuming initiator budget). Dummy nodes are transparent:
//! no cost, never initiators, and they forward their real ancestor's
//! state downward. Nodes with [`NodeState::Unknown`] snapshot states are
//! free variables — the DP infers the state assignment that maximizes
//! the likelihood, which is how RID recovers initiator *states*, not
//! just identities.
//!
//! [`TreeDp`] tabulates `OPT(u, k)` for every `k` (the paper's exact
//! polynomial algorithm for a known initiator budget); `solve_penalized`
//! solves `min cost + β·k` directly in `O(n)` — a Lagrangian view of the
//! same recurrence that is what the paper's "increase `k` until the
//! objective stops improving" heuristic approximates, and is exact for
//! the penalized objective.

use crate::forest_extraction::CascadeTree;
use crate::likelihood::boosted_probability;
use isomit_forest::{binarize, BinaryTree};
use isomit_graph::{NodeId, NodeState, Sign};

const POS: usize = 0;
const NEG: usize = 1;

fn sign_of(idx: usize) -> Sign {
    if idx == POS {
        Sign::Positive
    } else {
        Sign::Negative
    }
}

/// Allowed assumed-state indices for an observed snapshot state.
fn allowed_states(s: NodeState) -> &'static [usize] {
    match s {
        NodeState::Positive => &[POS],
        NodeState::Negative => &[NEG],
        NodeState::Unknown => &[POS, NEG],
        // Inactive nodes cannot appear in an infected snapshot.
        NodeState::Inactive => unreachable!("inactive node inside a cascade tree"),
    }
}

/// `−ln` of the flip-discounted activation likelihood of the edge
/// entering a real node, given assumed endpoint states: `−ln w̄` when
/// consistent, `−ln(FLIP_DISCOUNT · w̄)` when the edge can only be an
/// activation link in conjunction with a later flip
/// ([`crate::likelihood::FLIP_DISCOUNT`]); `INFINITY` when the
/// probability is zero.
fn real_edge_cost(alpha: f64, parent_state: usize, own_state: usize, edge: (Sign, f64)) -> f64 {
    let (sign, weight) = edge;
    let consistent = sign_of(parent_state) * sign == sign_of(own_state);
    let mut p = boosted_probability(alpha, sign, weight);
    if !consistent {
        p *= crate::likelihood::FLIP_DISCOUNT;
    }
    if p <= 0.0 {
        f64::INFINITY
    } else {
        -p.ln()
    }
}

/// A solved instance of the **k-ISOMIT-BT** dynamic program on one
/// cascade tree: minimum negative log-likelihood for every initiator
/// budget `k`, with traceback to the optimal initiator sets.
///
/// ```
/// use isomit_core::{extract_cascade_forest, TreeDp};
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
/// )?;
/// let snapshot =
///     InfectedNetwork::from_parts(g, vec![NodeState::Positive, NodeState::Positive]);
/// let (trees, _) = extract_cascade_forest(&snapshot, 1.0);
/// let dp = TreeDp::solve(&trees[0], 1.0, 2);
/// // k = 1: node 1 explained over the 0.5 edge → cost −ln 0.5.
/// assert!((dp.cost(1) - 0.5f64.ln().abs()).abs() < 1e-12);
/// // k = 2: both nodes initiators → cost 0.
/// assert_eq!(dp.cost(2), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreeDp {
    bt: BinaryTree,
    alpha: f64,
    k_max: usize,
    /// Original-tree snapshot ids and states, indexed by original local id.
    snapshot_ids: Vec<NodeId>,
    /// Traceback for the budgeted table `g[x][a_p][j]` (min cost of the
    /// subtree at binary node `x` given real-ancestor state `a_p`, using
    /// `j` initiators): chosen own state and initiator flag. Flattened as
    /// `x * 2 + a_p`, inner Vec over `j`.
    g_choice: Vec<Vec<(u8, bool)>>,
    /// Traceback for the children-merge table: initiators assigned to the
    /// left child.
    m_choice: Vec<Vec<u32>>,
    /// Root table: cost over `k`, and the root's chosen state.
    root_cost: Vec<f64>,
    root_choice: Vec<u8>,
}

/// Result of the penalized solve: the optimal initiator set for
/// `min −log L + β·k`.
#[derive(Debug, Clone, PartialEq)]
pub struct DpOutcome {
    /// Initiators as `(snapshot id, inferred initial state)`.
    pub initiators: Vec<(NodeId, Sign)>,
    /// Negative log-likelihood of the explained tree (`−OPT`).
    pub cost: f64,
    /// The paper's penalized objective `cost + (k − 1)·β`.
    pub objective: f64,
}

impl TreeDp {
    /// Runs the dynamic program on `tree` with boosting coefficient
    /// `alpha`, tabulating budgets `1..=k_max` (clamped to the tree
    /// size).
    ///
    /// Runs in `O(n · k_max²)` time and `O(n · k_max)` memory.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty, `k_max == 0`, or `alpha < 1`.
    pub fn solve(tree: &CascadeTree, alpha: f64, k_max: usize) -> Self {
        assert!(!tree.is_empty(), "cannot solve an empty tree");
        assert!(k_max > 0, "k_max must be positive");
        assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
        let k_max = k_max.min(tree.len());

        let bt = binarize(tree.root(), tree.children_lists());
        let n = bt.len();
        let snapshot_ids: Vec<NodeId> = (0..tree.len()).map(|l| tree.snapshot_id(l)).collect();

        // Subtree real-node counts bound the useful budget per node.
        let order = bt.post_order();
        let mut real_in_subtree = vec![0usize; n];
        for &x in &order {
            let mut c = usize::from(!bt.is_dummy(x));
            for child in [bt.left(x), bt.right(x)].into_iter().flatten() {
                c += real_in_subtree[child];
            }
            real_in_subtree[x] = c;
        }
        let cap: Vec<usize> = real_in_subtree.iter().map(|&c| c.min(k_max)).collect();

        let mut g: Vec<Vec<f64>> = vec![Vec::new(); 2 * n];
        let mut g_choice: Vec<Vec<(u8, bool)>> = vec![Vec::new(); 2 * n];
        let mut m: Vec<Vec<f64>> = vec![Vec::new(); 2 * n];
        let mut m_choice: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];

        for &x in &order {
            let cx = cap[x];
            // Children merge m[x][a][j].
            for a in [POS, NEG] {
                let slot = x * 2 + a;
                let mut costs = vec![f64::INFINITY; cx + 1];
                let mut choices = vec![0u32; cx + 1];
                match (bt.left(x), bt.right(x)) {
                    (None, None) => {
                        costs[0] = 0.0;
                    }
                    (Some(c), None) | (None, Some(c)) => {
                        for j in 0..=cx.min(cap[c]) {
                            costs[j] = g[c * 2 + a][j];
                            choices[j] = j as u32;
                        }
                    }
                    (Some(l), Some(r)) => {
                        for j in 0..=cx {
                            let mut best = f64::INFINITY;
                            let mut best_j1 = 0u32;
                            let lo = j.saturating_sub(cap[r]);
                            for j1 in lo..=j.min(cap[l]) {
                                let v = g[l * 2 + a][j1] + g[r * 2 + a][j - j1];
                                if v < best {
                                    best = v;
                                    best_j1 = j1 as u32;
                                }
                            }
                            costs[j] = best;
                            choices[j] = best_j1;
                        }
                    }
                }
                m[slot] = costs;
                m_choice[slot] = choices;
            }

            // Connection cost g[x][a_p][j].
            if x == bt.root() {
                continue; // handled separately below
            }
            if bt.is_dummy(x) {
                for a_p in [POS, NEG] {
                    let slot = x * 2 + a_p;
                    g[slot] = m[slot].clone();
                    g_choice[slot] = vec![(a_p as u8, false); cx + 1];
                }
            } else {
                let orig = bt.original(x).expect("real node");
                let edge = tree
                    .parent_edge(orig)
                    .expect("non-root real node has a parent edge");
                let observed = tree.state(orig);
                for a_p in [POS, NEG] {
                    let slot = x * 2 + a_p;
                    let mut costs = vec![f64::INFINITY; cx + 1];
                    let mut choices = vec![(0u8, false); cx + 1];
                    for j in 0..=cx {
                        for &a in allowed_states(observed) {
                            // Explained by parent.
                            let ec = real_edge_cost(alpha, a_p, a, edge);
                            if ec.is_finite() {
                                let v = ec + m[x * 2 + a][j];
                                if v < costs[j] {
                                    costs[j] = v;
                                    choices[j] = (a as u8, false);
                                }
                            }
                            // Initiator.
                            if j >= 1 {
                                let v = m[x * 2 + a][j - 1];
                                if v < costs[j] {
                                    costs[j] = v;
                                    choices[j] = (a as u8, true);
                                }
                            }
                        }
                    }
                    g[slot] = costs;
                    g_choice[slot] = choices;
                }
            }
        }

        // Root: always an initiator (no incoming activation link).
        let root = bt.root();
        let observed = tree.state(bt.original(root).expect("root is real"));
        let cr = cap[root];
        let mut root_cost = vec![f64::INFINITY; cr + 1];
        let mut root_choice = vec![0u8; cr + 1];
        for k in 1..=cr {
            for &a in allowed_states(observed) {
                let v = m[root * 2 + a][k - 1];
                if v < root_cost[k] {
                    root_cost[k] = v;
                    root_choice[k] = a as u8;
                }
            }
        }

        let _ = (g, m, cap);
        TreeDp {
            bt,
            alpha,
            k_max,
            snapshot_ids,
            g_choice,
            m_choice,
            root_cost,
            root_choice,
        }
    }

    /// Largest tabulated budget (`min(k_max, tree size)`).
    pub fn k_max(&self) -> usize {
        self.k_max.min(self.root_cost.len().saturating_sub(1))
    }

    /// `−OPT(k)`: the minimum negative log-likelihood achievable with
    /// exactly `k` initiators (`f64::INFINITY` if infeasible).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`k_max`](TreeDp::k_max).
    pub fn cost(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.k_max(), "k = {k} out of range");
        self.root_cost[k]
    }

    /// The paper's penalized objective for budget `k`:
    /// `cost(k) + (k − 1)·β`.
    ///
    /// # Panics
    ///
    /// Same as [`cost`](TreeDp::cost); also if `beta < 0`.
    pub fn objective(&self, k: usize, beta: f64) -> f64 {
        assert!(beta >= 0.0, "beta {beta} must be >= 0");
        self.cost(k) + (k as f64 - 1.0) * beta
    }

    /// Scans `k = 1..=k_max` and returns the budget minimizing the
    /// penalized objective, mirroring §III-E3's early-stopping rule:
    /// scanning stops after `patience` consecutive non-improving budgets.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 0` or `patience == 0`.
    pub fn best_k(&self, beta: f64, patience: usize) -> (usize, f64) {
        assert!(patience > 0, "patience must be positive");
        let mut best_k = 1;
        let mut best_obj = self.objective(1, beta);
        let mut stale = 0;
        for k in 2..=self.k_max() {
            let obj = self.objective(k, beta);
            if obj < best_obj {
                best_obj = obj;
                best_k = k;
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    break;
                }
            }
        }
        (best_k, best_obj)
    }

    /// Reconstructs the optimal initiator set for budget `k` as
    /// `(snapshot id, inferred state)` pairs, ascending by node.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or infeasible.
    pub fn initiators(&self, k: usize) -> Vec<(NodeId, Sign)> {
        assert!(
            self.cost(k).is_finite(),
            "budget k = {k} is infeasible for this tree"
        );
        let mut out = Vec::with_capacity(k);
        let root = self.bt.root();
        let a_root = self.root_choice[k] as usize;
        out.push((self.snapshot_of(root), sign_of(a_root)));
        // Walk items: (binary node, context state at that node, budget for
        // its children merge).
        let mut stack = vec![(root, a_root, k - 1)];
        while let Some((x, a, j)) = stack.pop() {
            let j1 = self.m_choice[x * 2 + a][j] as usize;
            match (self.bt.left(x), self.bt.right(x)) {
                (None, None) => {}
                (Some(c), None) | (None, Some(c)) => self.descend(c, a, j, &mut out, &mut stack),
                (Some(l), Some(r)) => {
                    self.descend(l, a, j1, &mut out, &mut stack);
                    self.descend(r, a, j - j1, &mut out, &mut stack);
                }
            }
        }
        out.sort_by_key(|&(n, _)| n);
        out
    }

    fn descend(
        &self,
        x: usize,
        a_p: usize,
        j: usize,
        out: &mut Vec<(NodeId, Sign)>,
        stack: &mut Vec<(usize, usize, usize)>,
    ) {
        if self.bt.is_dummy(x) {
            stack.push((x, a_p, j));
            return;
        }
        let (a, initiator) = self.g_choice[x * 2 + a_p][j];
        let a = a as usize;
        if initiator {
            out.push((self.snapshot_of(x), sign_of(a)));
            stack.push((x, a, j - 1));
        } else {
            stack.push((x, a, j));
        }
    }

    fn snapshot_of(&self, bt_node: usize) -> NodeId {
        self.snapshot_ids[self.bt.original(bt_node).expect("real node")]
    }

    /// The boosting coefficient the DP was solved with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Solves the paper's §III-D/III-E3 objective **as printed**:
    /// maximize `OPT = Σ_u P(u, s(u) | I, S)` minus the initiator
    /// penalty `(k − 1)·β`, where on a cascade tree `P(u | I, S)` is the
    /// product of flip-discounted activation probabilities along the
    /// path from `u`'s *nearest initiator ancestor* down to `u` (the
    /// only directed path to `u` inside the tree; initiators themselves
    /// have `P = 1`).
    ///
    /// Because per-node probabilities live in `[0, 1]`, the paper's
    /// penalty scale `β ∈ [0, 1]` (Figures 5–6) trades directly against
    /// per-node explanation quality — unlike the log-likelihood variants
    /// where edge costs are unbounded.
    ///
    /// The solver is an exact *ancestor-region* dynamic program: the
    /// state of a node is the distance `j` to its nearest initiator
    /// ancestor (equivalently the accumulated path product `q_j`), and
    /// children decide independently between staying in the parent's
    /// region (`j + 1`) or opening a new region (`j = 0`, paying `β`).
    /// Path products are truncated once they underflow `1e-12` — all
    /// deeper states are exactly equivalent — so it runs in
    /// `O(Σ_x min(depth(x), truncation depth))` and needs no binary
    /// transformation (without a shared `k` budget, sibling decisions
    /// are independent).
    ///
    /// Node states are taken as observed; [`NodeState::Unknown`] nodes
    /// are wildcards for the flip-discounted edge factor, and unknown
    /// *initiators* get the state agreeing with the weight-majority of
    /// their child edges.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty, `alpha < 1`, or `beta < 0`.
    pub fn solve_probability_sum(tree: &CascadeTree, alpha: f64, beta: f64) -> DpOutcome {
        Self::solve_probability_sum_with_support(tree, alpha, beta, None)
    }

    /// [`solve_probability_sum`](TreeDp::solve_probability_sum) with
    /// per-node *external support*: `support[local]` is the noisy-or
    /// probability that node `local` could be activated by some
    /// non-tree-parent in-neighbour in `G_I` (see
    /// [`crate::external_support`]). A node's explained probability
    /// becomes `P̃(v) = 1 − (1 − q_v)(1 − s_v)` — still linear in the
    /// path product `q_v`, so the ancestor-region DP stays exact.
    ///
    /// Support captures the §III-B noisy-or over **all** paths rather
    /// than the single tree path: nodes in densely infected regions are
    /// already well explained and are not worth splitting, so splits
    /// concentrate where explanations are genuinely missing — around
    /// undetected initiators.
    ///
    /// # Panics
    ///
    /// As [`solve_probability_sum`](TreeDp::solve_probability_sum);
    /// additionally if `support` is given with a length other than
    /// `tree.len()` or values outside `[0, 1]`.
    pub fn solve_probability_sum_with_support(
        tree: &CascadeTree,
        alpha: f64,
        beta: f64,
        support: Option<&[f64]>,
    ) -> DpOutcome {
        assert!(!tree.is_empty(), "cannot solve an empty tree");
        assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
        assert!(beta >= 0.0, "beta {beta} must be >= 0");
        if let Some(s) = support {
            assert_eq!(s.len(), tree.len(), "one support value per tree node");
            assert!(
                s.iter().all(|v| (0.0..=1.0).contains(v)),
                "support values must lie in [0, 1]"
            );
        }
        let support_of = |local: usize| support.map_or(0.0, |s| s[local]);
        const Q_EPS: f64 = 1e-12;
        let n = tree.len();

        // Parent pointers of the original tree.
        let mut parent = vec![usize::MAX; n];
        for x in 0..n {
            for &c in tree.children(x) {
                parent[c] = x;
            }
        }

        // Per-edge probability factors under observed states (1.0
        // placeholder for the root). Sign-inconsistent activation links
        // get the flip-discounted factor — between the paper's equation
        // convention (0) and prose convention (1); see
        // [`crate::likelihood::FLIP_DISCOUNT`].
        let edge_prob: Vec<f64> = (0..n)
            .map(|x| match tree.parent_edge(x) {
                None => 1.0,
                Some((sign, weight)) => crate::likelihood::g_factor_discounted(
                    alpha,
                    tree.state(parent[x]),
                    sign,
                    tree.state(x),
                    weight,
                ),
            })
            .collect();

        // Post-order over the original tree (iterative).
        let mut order = Vec::with_capacity(n);
        let mut stack = vec![(tree.root(), false)];
        while let Some((x, expanded)) = stack.pop() {
            if expanded {
                order.push(x);
            } else {
                stack.push((x, true));
                for &c in tree.children(x) {
                    stack.push((c, false));
                }
            }
        }

        // q[x][j]: path product over the last j edges ending at x
        // (q[x][0] = 1: x is the initiator), truncated at Q_EPS: the last
        // entry of a truncated vector is 0 and stands for every deeper j.
        let mut q: Vec<Vec<f64>> = vec![Vec::new(); n];
        q[tree.root()] = vec![1.0];
        // Reverse post-order visits parents before children.
        for &x in order.iter().rev() {
            if x == tree.root() {
                continue;
            }
            let mut qs = vec![1.0];
            for &pq in &q[parent[x]] {
                let v = edge_prob[x] * pq;
                if v < Q_EPS {
                    qs.push(0.0);
                    break;
                }
                qs.push(v);
            }
            q[x] = qs;
        }

        // v[x][j]: best value of subtree(x) given nearest initiator at
        // distance j (j = 0: x is an initiator, β already charged).
        fn child_best(v: &[Vec<f64>], c: usize, j_child: usize) -> f64 {
            let vc = &v[c];
            vc[j_child.min(vc.len() - 1)].max(vc[0])
        }
        let mut v: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &x in &order {
            let qs = &q[x];
            let mut vx = Vec::with_capacity(qs.len());
            let sv = support_of(x);
            for (j, &qj) in qs.iter().enumerate() {
                // P̃(x) = 1 − (1 − q)(1 − s) = s + (1 − s)·q.
                let own = if j == 0 {
                    1.0 - beta
                } else {
                    sv + (1.0 - sv) * qj
                };
                let mut total = own;
                for &c in tree.children(x) {
                    total += child_best(&v, c, j + 1);
                }
                vx.push(total);
            }
            v[x] = vx;
        }

        // Traceback from the root (always an initiator; its β is
        // refunded by the (k − 1) penalty convention).
        let mut initiators: Vec<(NodeId, Sign)> = Vec::new();
        let mut prob_sum = 0.0;
        let mut walk = vec![(tree.root(), 0usize)];
        while let Some((x, j)) = walk.pop() {
            if j == 0 {
                initiators.push((
                    tree.snapshot_id(x),
                    Self::probability_initiator_state(tree, alpha, x),
                ));
                prob_sum += 1.0;
            } else {
                let sv = support_of(x);
                let qj = q[x][j.min(q[x].len() - 1)];
                prob_sum += sv + (1.0 - sv) * qj;
            }
            for &c in tree.children(x) {
                let vc = &v[c];
                let j_child = (j + 1).min(vc.len() - 1);
                if vc[j_child] >= vc[0] {
                    walk.push((c, j_child));
                } else {
                    walk.push((c, 0));
                }
            }
        }
        initiators.sort_by_key(|&(id, _)| id);
        let k = initiators.len() as f64;
        DpOutcome {
            cost: -prob_sum,
            objective: -prob_sum + (k - 1.0) * beta,
            initiators,
        }
    }

    /// Initial state reported for an initiator under the
    /// probability-sum objective: the observed state, or — for unknown
    /// observations — the sign agreeing with the boosted-weight majority
    /// of the node's child edges (positive on a tie or for a childless
    /// node).
    fn probability_initiator_state(tree: &CascadeTree, alpha: f64, x: usize) -> Sign {
        if let Some(sign) = tree.state(x).sign() {
            return sign;
        }
        let mut score = 0.0; // positive favours Sign::Positive
        for &c in tree.children(x) {
            if let Some((edge_sign, weight)) = tree.parent_edge(c) {
                if let Some(child_sign) = tree.state(c).sign() {
                    let w = boosted_probability(alpha, edge_sign, weight);
                    // Assuming s(x) = +1, the edge is consistent iff
                    // edge_sign == child_sign.
                    if edge_sign * child_sign == Sign::Positive {
                        score += w;
                    } else {
                        score -= w;
                    }
                }
            }
        }
        if score >= 0.0 {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }

    /// Solves the *penalized* problem `min cost + β·k` directly, without
    /// the `k` dimension — `O(n)` instead of `O(n·k²)`.
    ///
    /// This is the Lagrangian relaxation of the budgeted DP and is exact
    /// for RID's §III-E3 selection objective: the returned outcome's
    /// `objective` equals `min_k [cost(k) + (k−1)·β]`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty, `alpha < 1`, or `beta < 0`.
    pub fn solve_penalized(tree: &CascadeTree, alpha: f64, beta: f64) -> DpOutcome {
        assert!(!tree.is_empty(), "cannot solve an empty tree");
        assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
        assert!(beta >= 0.0, "beta {beta} must be >= 0");
        let bt = binarize(tree.root(), tree.children_lists());
        let n = bt.len();
        let order = bt.post_order();

        // f[x][a_p] = min (edge costs + beta per initiator) in subtree at
        // x, given nearest real ancestor state a_p.
        let mut f = vec![[f64::INFINITY; 2]; n];
        // choice[x][a_p] = (own state, initiator flag).
        let mut choice = vec![[(0u8, false); 2]; n];
        // merged[x][a] = children sum with context a.
        let mut merged = vec![[0.0f64; 2]; n];

        for &x in &order {
            for a in [POS, NEG] {
                let mut sum = 0.0;
                for child in [bt.left(x), bt.right(x)].into_iter().flatten() {
                    sum += f[child][a];
                }
                merged[x][a] = sum;
            }
            if x == bt.root() {
                continue;
            }
            if bt.is_dummy(x) {
                for a_p in [POS, NEG] {
                    f[x][a_p] = merged[x][a_p];
                    choice[x][a_p] = (a_p as u8, false);
                }
            } else {
                let orig = bt.original(x).expect("real node");
                let edge = tree.parent_edge(orig).expect("non-root has parent edge");
                let observed = tree.state(orig);
                for a_p in [POS, NEG] {
                    for &a in allowed_states(observed) {
                        let explained = real_edge_cost(alpha, a_p, a, edge) + merged[x][a];
                        if explained < f[x][a_p] {
                            f[x][a_p] = explained;
                            choice[x][a_p] = (a as u8, false);
                        }
                        let as_initiator = beta + merged[x][a];
                        if as_initiator < f[x][a_p] {
                            f[x][a_p] = as_initiator;
                            choice[x][a_p] = (a as u8, true);
                        }
                    }
                }
            }
        }

        let root = bt.root();
        let observed = tree.state(bt.original(root).expect("root is real"));
        let mut total = f64::INFINITY;
        let mut a_root = POS;
        for &a in allowed_states(observed) {
            let v = beta + merged[root][a];
            if v < total {
                total = v;
                a_root = a;
            }
        }

        // Traceback.
        let snapshot_of =
            |x: usize| -> NodeId { tree.snapshot_id(bt.original(x).expect("real node")) };
        let mut initiators = vec![(snapshot_of(root), sign_of(a_root))];
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, context state)
        for child in [bt.left(root), bt.right(root)].into_iter().flatten() {
            stack.push((child, a_root));
        }
        while let Some((x, a_p)) = stack.pop() {
            let (a, initiator) = if bt.is_dummy(x) {
                (a_p, false)
            } else {
                let (a, init) = choice[x][a_p];
                (a as usize, init)
            };
            if initiator {
                initiators.push((snapshot_of(x), sign_of(a)));
            }
            for child in [bt.left(x), bt.right(x)].into_iter().flatten() {
                stack.push((child, a));
            }
        }
        initiators.sort_by_key(|&(n, _)| n);

        let k = initiators.len();
        let cost = total - beta * k as f64;
        DpOutcome {
            initiators,
            cost,
            objective: cost + (k as f64 - 1.0) * beta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest_extraction::extract_cascade_forest;
    use isomit_diffusion::InfectedNetwork;
    use isomit_graph::{Edge, SignedDigraph};
    use NodeState::{Negative as N, Positive as P, Unknown as U};

    fn tree_from(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> CascadeTree {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        let snapshot = InfectedNetwork::from_parts(g, states.to_vec());
        let (mut trees, _) = extract_cascade_forest(&snapshot, 2.0);
        assert_eq!(trees.len(), 1, "expected a single cascade tree");
        trees.remove(0)
    }

    #[test]
    fn single_node_tree_costs_zero() {
        let t = tree_from(&[], &[P]);
        let dp = TreeDp::solve(&t, 2.0, 3);
        assert_eq!(dp.k_max(), 1);
        assert_eq!(dp.cost(1), 0.0);
        assert_eq!(dp.initiators(1), vec![(NodeId(0), Sign::Positive)]);
    }

    #[test]
    fn chain_costs_decrease_with_k() {
        // 0 -(+0.5)-> 1 -(-0.25)-> 2, alpha 2: edge probs 1.0 and 0.25.
        let t = tree_from(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Negative, 0.25)],
            &[P, P, N],
        );
        let dp = TreeDp::solve(&t, 2.0, 3);
        // k=1: cost = -ln(1.0) - ln(0.25) = ln 4.
        assert!((dp.cost(1) - 4.0f64.ln()).abs() < 1e-12);
        // k=2: make node 2 an initiator, drop the expensive edge.
        assert!((dp.cost(2) - 0.0).abs() < 1e-12);
        assert_eq!(dp.cost(3), 0.0);
        assert!(dp.cost(2) <= dp.cost(1));
        let inits = dp.initiators(2);
        assert_eq!(
            inits,
            vec![(NodeId(0), Sign::Positive), (NodeId(2), Sign::Negative)]
        );
    }

    #[test]
    fn root_state_matches_observation() {
        let t = tree_from(&[(0, 1, Sign::Negative, 0.5)], &[N, P]);
        let dp = TreeDp::solve(&t, 2.0, 2);
        let inits = dp.initiators(1);
        assert_eq!(inits, vec![(NodeId(0), Sign::Negative)]);
    }

    #[test]
    fn unknown_states_are_inferred() {
        // Root unknown; child observed negative over a positive edge →
        // the root must have been negative for the edge to be consistent.
        let t = tree_from(&[(0, 1, Sign::Positive, 0.5)], &[U, N]);
        let dp = TreeDp::solve(&t, 2.0, 2);
        let inits = dp.initiators(1);
        assert_eq!(inits, vec![(NodeId(0), Sign::Negative)]);
    }

    #[test]
    fn wide_star_uses_dummies_correctly() {
        // Root 0 with 4 children over identical edges.
        let t = tree_from(
            &[
                (0, 1, Sign::Positive, 0.25),
                (0, 2, Sign::Positive, 0.25),
                (0, 3, Sign::Positive, 0.25),
                (0, 4, Sign::Positive, 0.25),
            ],
            &[P, P, P, P, P],
        );
        let dp = TreeDp::solve(&t, 2.0, 5);
        // alpha 2 → each edge prob 0.5; k=1 explains all 4: cost 4 ln 2.
        assert!((dp.cost(1) - 4.0 * 2.0f64.ln()).abs() < 1e-10);
        // Each extra initiator saves exactly ln 2.
        for k in 2..=5 {
            assert!((dp.cost(k) - (5 - k) as f64 * 2.0f64.ln()).abs() < 1e-10);
        }
        // Dummy nodes are never reported.
        for k in 1..=5 {
            let inits = dp.initiators(k);
            assert_eq!(inits.len(), k);
            assert!(inits.iter().all(|&(n, _)| n.index() < 5));
        }
    }

    #[test]
    fn best_k_balances_cost_and_penalty() {
        let t = tree_from(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Negative, 0.25)],
            &[P, P, N],
        );
        let dp = TreeDp::solve(&t, 2.0, 3);
        // Cheap penalty: worth paying beta to drop the -ln 0.25 edge.
        let (k, _) = dp.best_k(0.1, 3);
        assert_eq!(k, 2);
        // Expensive penalty: keep a single initiator.
        let (k, _) = dp.best_k(10.0, 3);
        assert_eq!(k, 1);
    }

    #[test]
    fn penalized_matches_budgeted_scan() {
        let t = tree_from(
            &[
                (0, 1, Sign::Positive, 0.3),
                (0, 2, Sign::Negative, 0.6),
                (2, 3, Sign::Positive, 0.2),
                (2, 4, Sign::Negative, 0.9),
            ],
            &[P, P, N, N, P],
        );
        let dp = TreeDp::solve(&t, 2.0, 5);
        for beta in [0.0, 0.05, 0.1, 0.5, 1.0, 3.0] {
            let outcome = TreeDp::solve_penalized(&t, 2.0, beta);
            let exhaustive = (1..=dp.k_max())
                .map(|k| dp.objective(k, beta))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (outcome.objective - exhaustive).abs() < 1e-9,
                "beta {beta}: penalized {} vs exhaustive {exhaustive}",
                outcome.objective
            );
            // Cost consistency: cost(k*) recomputed from the budgeted DP.
            let k = outcome.initiators.len();
            assert!((outcome.cost - dp.cost(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_zero_makes_everyone_an_initiator() {
        let t = tree_from(
            &[(0, 1, Sign::Positive, 0.3), (1, 2, Sign::Positive, 0.3)],
            &[P, P, P],
        );
        let outcome = TreeDp::solve_penalized(&t, 1.0, 0.0);
        // With no penalty, dropping every edge is free and optimal
        // (edges cost −ln 0.3 > 0 each).
        assert_eq!(outcome.initiators.len(), 3);
        assert_eq!(outcome.cost, 0.0);
    }

    #[test]
    fn huge_beta_keeps_single_root() {
        let t = tree_from(
            &[(0, 1, Sign::Positive, 0.3), (1, 2, Sign::Positive, 0.3)],
            &[P, P, P],
        );
        let outcome = TreeDp::solve_penalized(&t, 1.0, 100.0);
        assert_eq!(outcome.initiators.len(), 1);
        assert_eq!(outcome.initiators[0].0, NodeId(0));
    }

    #[test]
    fn penalized_on_deep_chain_is_fast_and_correct() {
        // 10k-node chain with strong edges: one initiator suffices.
        let edges: Vec<(u32, u32, Sign, f64)> = (0..9_999)
            .map(|i| (i, i + 1, Sign::Positive, 0.6))
            .collect();
        let states = vec![P; 10_000];
        let t = tree_from(&edges, &states);
        let outcome = TreeDp::solve_penalized(&t, 2.0, 0.5);
        assert_eq!(outcome.initiators.len(), 1);
        assert_eq!(outcome.cost, 0.0); // all edges boosted to prob 1
    }

    #[test]
    #[should_panic(expected = "k_max must be positive")]
    fn zero_k_max_panics() {
        let t = tree_from(&[], &[P]);
        TreeDp::solve(&t, 2.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cost_out_of_range_panics() {
        let t = tree_from(&[], &[P]);
        TreeDp::solve(&t, 2.0, 1).cost(2);
    }
}
