//! The fixed-budget variant of the detection problem: given the infected
//! snapshot and a known initiator count `k`, find the best `k`
//! initiators across the **whole forest** — the paper's k-ISOMIT
//! generalized from one binary tree to the full snapshot.
//!
//! Per-tree budgeted costs come from [`TreeDp::solve`]; the budget is
//! then distributed across trees with a second (convexity-free) knapsack
//! over per-tree cost tables. Every tree needs at least one initiator
//! (its root has no incoming activation link), so `k` must be at least
//! the number of extracted trees.

use crate::detection::{DetectedInitiator, Detection};
use crate::dp::TreeDp;
use crate::forest_extraction::extract_cascade_forest;
use isomit_diffusion::InfectedNetwork;
use isomit_graph::NodeState;

/// Solves the fixed-budget ISOMIT problem on a snapshot: the `k`
/// initiators (identities and states) minimizing the total negative
/// log-likelihood of the extracted cascade forest.
///
/// Returns `None` when the budget is infeasible: `k` smaller than the
/// number of extracted trees (each tree root is a forced initiator) or
/// larger than the number of infected nodes.
///
/// The returned [`Detection`]'s `objective` is the total cost
/// `Σ_T −OPT_T(k_T)` under the optimal budget split `Σ k_T = k`.
///
/// # Panics
///
/// Panics if `alpha < 1`.
///
/// # Examples
///
/// ```
/// use isomit_core::solve_k_isomit;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.2),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.9),
///     ],
/// )?;
/// let snapshot = InfectedNetwork::from_parts(
///     g,
///     vec![NodeState::Positive; 3],
/// );
/// // k = 2: the root plus the node whose in-edge is weakest.
/// let detection = solve_k_isomit(&snapshot, 3.0, 2).expect("feasible");
/// assert_eq!(detection.len(), 2);
/// assert!(detection.contains(NodeId(0)));
/// assert!(detection.contains(NodeId(1)));
/// # Ok(())
/// # }
/// ```
pub fn solve_k_isomit(snapshot: &InfectedNetwork, alpha: f64, k: usize) -> Option<Detection> {
    assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
    let (trees, component_count) = extract_cascade_forest(snapshot, alpha);
    let t = trees.len();
    if k < t || k > snapshot.node_count() {
        return None;
    }
    if t == 0 {
        return Some(Detection {
            initiators: Vec::new(),
            component_count,
            tree_count: 0,
            objective: 0.0,
        });
    }

    // Per-tree budgeted cost tables (index = budget, 1-based).
    let spare = k - t; // budget beyond the forced one-per-tree minimum
    let dps: Vec<TreeDp> = trees
        .iter()
        .map(|tree| TreeDp::solve(tree, alpha, (1 + spare).min(tree.len())))
        .collect();

    // Knapsack across trees: best[j] = min total cost using j spare
    // initiators over the trees processed so far; choice[i][j] = spare
    // given to tree i in the optimum.
    let mut best = vec![f64::INFINITY; spare + 1];
    best[0] = 0.0;
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(t);
    for dp in &dps {
        let max_extra = dp.k_max() - 1;
        let mut next = vec![f64::INFINITY; spare + 1];
        let mut chosen = vec![0usize; spare + 1];
        for j in 0..=spare {
            for extra in 0..=max_extra.min(j) {
                let prev = best[j - extra];
                if !prev.is_finite() {
                    continue;
                }
                let total = prev + dp.cost(1 + extra);
                if total < next[j] {
                    next[j] = total;
                    chosen[j] = extra;
                }
            }
        }
        best = next;
        choice.push(chosen);
    }

    // All spare budget is usable only if trees are big enough; find the
    // best feasible total spend <= spare, preferring the full budget.
    let spent = (0..=spare).rev().find(|&j| best[j].is_finite())?;
    let objective = best[spent];

    // Traceback the per-tree budgets.
    let mut budgets = vec![1usize; t];
    let mut j = spent;
    for i in (0..t).rev() {
        let extra = choice[i][j];
        budgets[i] = 1 + extra;
        j -= extra;
    }

    let mut initiators = Vec::with_capacity(k);
    for (dp, &budget) in dps.iter().zip(&budgets) {
        for (sub_id, state) in dp.initiators(budget) {
            initiators.push(DetectedInitiator {
                node: snapshot
                    .mapping()
                    .to_original(sub_id)
                    .expect("snapshot id maps to original network"),
                state: NodeState::from_sign(state),
            });
        }
    }
    let mut detection = Detection {
        initiators,
        component_count,
        tree_count: t,
        objective,
    };
    detection.sort();
    Some(detection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    use NodeState::{Negative as N, Positive as P};

    fn snapshot(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, states.to_vec())
    }

    #[test]
    fn budget_below_tree_count_is_infeasible() {
        // Two disconnected chains → two trees.
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.5), (2, 3, Sign::Positive, 0.5)],
            &[P, P, N, N],
        );
        assert!(solve_k_isomit(&s, 3.0, 1).is_none());
        assert!(solve_k_isomit(&s, 3.0, 5).is_none());
        let d = solve_k_isomit(&s, 3.0, 2).unwrap();
        assert_eq!(d.nodes(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn extra_budget_goes_to_the_weakest_explanation() {
        // One tree: 0 -> 1 (weak) and 0 -> 2 (strong, boosted to 1).
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.05), (0, 2, Sign::Positive, 0.5)],
            &[P, P, P],
        );
        let d = solve_k_isomit(&s, 3.0, 2).unwrap();
        assert!(d.contains(NodeId(0)));
        assert!(d.contains(NodeId(1)), "weak child should take the budget");
        assert!(!d.contains(NodeId(2)));
    }

    #[test]
    fn budget_split_across_trees_favours_expensive_tree() {
        // Tree A: cheap chain (prob 1 edges). Tree B: expensive chain.
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.9), // boosted to 1: free
                (2, 3, Sign::Negative, 0.1), // cost -ln 0.1
            ],
            &[P, P, P, N],
        );
        let d = solve_k_isomit(&s, 3.0, 3).unwrap();
        // The spare initiator must land on node 3 (the expensive edge).
        assert!(d.contains(NodeId(0)));
        assert!(d.contains(NodeId(2)));
        assert!(d.contains(NodeId(3)));
        assert!((d.objective - 0.0).abs() < 1e-12);
    }

    #[test]
    fn full_budget_means_everyone() {
        let s = snapshot(&[(0, 1, Sign::Positive, 0.4)], &[P, P]);
        let d = solve_k_isomit(&s, 3.0, 2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.objective, 0.0);
    }

    #[test]
    fn objective_decreases_with_budget() {
        let s = snapshot(
            &[
                (0, 1, Sign::Negative, 0.3),
                (1, 2, Sign::Negative, 0.4),
                (2, 3, Sign::Negative, 0.5),
            ],
            &[P, N, P, N],
        );
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let d = solve_k_isomit(&s, 3.0, k).unwrap();
            assert_eq!(d.len(), k);
            assert!(d.objective <= last + 1e-12, "objective rose at k={k}");
            last = d.objective;
        }
    }

    #[test]
    fn empty_snapshot_needs_zero_budget() {
        let s = snapshot(&[], &[]);
        let d = solve_k_isomit(&s, 3.0, 0).unwrap();
        assert!(d.is_empty());
        assert!(solve_k_isomit(&s, 3.0, 1).is_none());
    }
}
