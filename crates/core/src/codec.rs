//! Wire-format (JSON) codecs for detector configs and results, built on
//! the in-repo [`isomit_graph::json`] codec.
//!
//! These are the payloads of the serving protocol's `rid` request and
//! response. All numbers round-trip bit-exactly (`f64` is printed with
//! `{:?}`), so a decoded [`RidResult`] compares equal — including the
//! floating objective — to the one the server computed.

use crate::detection::{DetectedInitiator, Detection};
use crate::rid::{RidConfig, RidObjective};
use isomit_graph::json::{JsonError, Value};
use isomit_graph::{NodeId, NodeState};

impl RidObjective {
    /// The snake_case wire label of the objective.
    pub fn as_label(&self) -> &'static str {
        match self {
            RidObjective::ProbabilitySum => "probability_sum",
            RidObjective::LogLikelihood => "log_likelihood",
        }
    }

    /// Parses the label produced by
    /// [`as_label`](RidObjective::as_label).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on an unknown label.
    pub fn from_label(label: &str) -> Result<Self, JsonError> {
        match label {
            "probability_sum" => Ok(RidObjective::ProbabilitySum),
            "log_likelihood" => Ok(RidObjective::LogLikelihood),
            other => Err(JsonError::new(format!("unknown objective `{other}`"))),
        }
    }
}

impl RidConfig {
    /// Encodes the config as a JSON object.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("alpha".into(), Value::Number(self.alpha)),
            ("beta".into(), Value::Number(self.beta)),
            (
                "objective".into(),
                Value::String(self.objective.as_label().into()),
            ),
            (
                "external_support".into(),
                Value::Bool(self.external_support),
            ),
        ])
    }

    /// Decodes a config from the encoding of
    /// [`to_json_value`](RidConfig::to_json_value). Missing `objective`
    /// or `external_support` keys fall back to the [`Default`] values,
    /// so clients can send just `{"alpha": 3, "beta": 0.1}`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input. Range validation is
    /// deferred to [`Rid::from_config`](crate::Rid::from_config).
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let defaults = RidConfig::default();
        let number = |key: &str| -> Result<f64, JsonError> {
            value
                .require(key)?
                .as_f64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a number")))
        };
        let objective = match value.get("objective") {
            None => defaults.objective,
            Some(v) => RidObjective::from_label(
                v.as_str()
                    .ok_or_else(|| JsonError::new("`objective` must be a string"))?,
            )?,
        };
        let external_support = match value.get("external_support") {
            None => defaults.external_support,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| JsonError::new("`external_support` must be a boolean"))?,
        };
        Ok(RidConfig {
            alpha: number("alpha")?,
            beta: number("beta")?,
            objective,
            external_support,
        })
    }

    /// Encodes the config as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a config from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json_str(input: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(input)?)
    }
}

impl Detection {
    /// Encodes the detection as a JSON object with initiators as
    /// `[node, state-symbol]` pairs in sorted (deterministic) order.
    pub fn to_json_value(&self) -> Value {
        let initiators = self
            .initiators
            .iter()
            .map(|i| {
                Value::Array(vec![
                    Value::Number(i.node.index() as f64),
                    Value::String(i.state.as_symbol().into()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("initiators".into(), Value::Array(initiators)),
            (
                "component_count".into(),
                Value::Number(self.component_count as f64),
            ),
            ("tree_count".into(), Value::Number(self.tree_count as f64)),
            ("objective".into(), Value::Number(self.objective)),
        ])
    }

    /// Decodes a detection from the encoding of
    /// [`to_json_value`](Detection::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let raw = value
            .require("initiators")?
            .as_array()
            .ok_or_else(|| JsonError::new("`initiators` must be an array"))?;
        let mut initiators = Vec::with_capacity(raw.len());
        for entry in raw {
            let parts = entry
                .as_array()
                .ok_or_else(|| JsonError::new("each initiator must be [node, state]"))?;
            let [node_v, state_v] = parts else {
                return Err(JsonError::new("each initiator must be [node, state]"));
            };
            let node = node_v
                .as_usize()
                .map(NodeId::from_index)
                .ok_or_else(|| JsonError::new("initiator node must be a non-negative id"))?;
            let state = NodeState::from_symbol(
                state_v
                    .as_str()
                    .ok_or_else(|| JsonError::new("initiator state must be a string"))?,
            )?;
            initiators.push(DetectedInitiator { node, state });
        }
        let count = |key: &str| -> Result<usize, JsonError> {
            value
                .require(key)?
                .as_usize()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a non-negative integer")))
        };
        Ok(Detection {
            initiators,
            component_count: count("component_count")?,
            tree_count: count("tree_count")?,
            objective: value
                .require("objective")?
                .as_f64()
                .ok_or_else(|| JsonError::new("`objective` must be a number"))?,
        })
    }
}

/// A detection together with the config that produced it — the payload
/// of the serving protocol's `rid` response.
#[derive(Debug, Clone, PartialEq)]
pub struct RidResult {
    /// The exact detector parameters the answer was computed under
    /// (defaults filled in), so clients can audit what they got.
    pub config: RidConfig,
    /// The detection itself.
    pub detection: Detection,
}

impl RidResult {
    /// Encodes the result as a JSON object.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("config".into(), self.config.to_json_value()),
            ("detection".into(), self.detection.to_json_value()),
        ])
    }

    /// Decodes a result from the encoding of
    /// [`to_json_value`](RidResult::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(RidResult {
            config: RidConfig::from_json_value(value.require("config")?)?,
            detection: Detection::from_json_value(value.require("detection")?)?,
        })
    }

    /// Encodes the result as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a result from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json_str(input: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_text() {
        let config = RidConfig {
            alpha: 2.5,
            beta: 0.07,
            objective: RidObjective::LogLikelihood,
            external_support: false,
        };
        let back = RidConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.alpha.to_bits(), config.alpha.to_bits());
    }

    #[test]
    fn config_defaults_optional_fields() {
        let parsed = RidConfig::from_json_str("{\"alpha\": 3, \"beta\": 0.1}").unwrap();
        assert_eq!(parsed, RidConfig::default());
    }

    #[test]
    fn detection_round_trips() {
        let detection = Detection {
            initiators: vec![
                DetectedInitiator {
                    node: NodeId(2),
                    state: NodeState::Positive,
                },
                DetectedInitiator {
                    node: NodeId(9),
                    state: NodeState::Negative,
                },
            ],
            component_count: 2,
            tree_count: 3,
            objective: 1.25e-3,
        };
        let result = RidResult {
            config: RidConfig::default(),
            detection: detection.clone(),
        };
        let back = RidResult::from_json_str(&result.to_json_string()).unwrap();
        assert_eq!(back, result);
        assert_eq!(
            back.detection.objective.to_bits(),
            detection.objective.to_bits()
        );
    }

    #[test]
    fn objective_labels_round_trip() {
        for obj in [RidObjective::ProbabilitySum, RidObjective::LogLikelihood] {
            assert_eq!(RidObjective::from_label(obj.as_label()).unwrap(), obj);
        }
        assert!(RidObjective::from_label("bogus").is_err());
    }

    #[test]
    fn malformed_detection_is_rejected() {
        for text in [
            "{}",
            "{\"initiators\": [[1]], \"component_count\": 1, \"tree_count\": 1, \"objective\": 0}",
            "{\"initiators\": [[1, \"x\"]], \"component_count\": 1, \"tree_count\": 1, \"objective\": 0}",
        ] {
            let v = Value::parse(text).unwrap();
            assert!(Detection::from_json_value(&v).is_err(), "{text}");
        }
    }
}
