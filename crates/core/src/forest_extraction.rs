// lint:allow-file(indexing) per-component arrays are allocated with the component's node count; sub-ids come from the same component enumeration and CascadeTree::validate() re-checks the parent structure
use crate::likelihood::g_factor_discounted;
use isomit_diffusion::InfectedNetwork;
use isomit_forest::{
    maximum_branching, maximum_branching_components, weakly_connected_components, Branching,
    BranchingArena, WeightedArc,
};
use isomit_graph::{GraphError, NodeId, NodeState, Sign};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

thread_local! {
    /// Per-thread invocation counter of [`extract_cascade_forest`]; see
    /// [`extraction_run_count`].
    static EXTRACTION_RUNS: Cell<u64> = const { Cell::new(0) };

    /// Per-thread pooled scratch space for the component-wise
    /// Chu-Liu/Edmonds driver: repeated extractions on one thread (the
    /// serving engine, batch evaluation) reuse the same buffers instead
    /// of re-allocating per component and per snapshot.
    static BRANCHING_ARENA: RefCell<BranchingArena> = RefCell::new(BranchingArena::default());
}

/// Number of times [`extract_cascade_forest`] has run **on the calling
/// thread** since it started.
///
/// Extraction is the expensive per-snapshot stage of the RID pipeline
/// (components + Chu-Liu/Edmonds + tree materialization), so callers
/// that answer many queries against one snapshot — the §III-E3 model
/// selection sweep, the serving engine's cache — must run it exactly
/// once per snapshot. This counter exists so regression tests can assert
/// that property; it is thread-local (the inner tree materialization may
/// fan out to rayon workers, but the invocation itself is counted on the
/// caller), monotone, and never reset.
///
/// # Examples
///
/// ```
/// use isomit_core::{extract_cascade_forest, extraction_run_count};
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{NodeState, SignedDigraph};
///
/// let snapshot = InfectedNetwork::from_parts(
///     SignedDigraph::from_edges(1, [])?,
///     vec![NodeState::Positive],
/// );
/// let before = extraction_run_count();
/// extract_cascade_forest(&snapshot, 2.0);
/// assert_eq!(extraction_run_count(), before + 1);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn extraction_run_count() -> u64 {
    EXTRACTION_RUNS.with(|c| c.get())
}

/// One extracted cascade tree (Definition 7): a maximum-likelihood guess
/// at "who activated whom" within part of an infected component.
///
/// Node identity is layered: a tree stores *snapshot ids* (ids within the
/// [`InfectedNetwork`]'s subgraph) and additionally numbers its own nodes
/// with dense *local ids* `0..len` used by the dynamic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeTree {
    /// Local id → snapshot id.
    nodes: Vec<NodeId>,
    /// Local id of the root.
    root: usize,
    /// Children lists in local ids.
    children: Vec<Vec<usize>>,
    /// Attributes (sign, raw weight) of the activation edge entering each
    /// local node; `None` for the root.
    parent_edge: Vec<Option<(Sign, f64)>>,
    /// Observed state of each local node.
    states: Vec<NodeState>,
}

impl CascadeTree {
    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree is empty (never produced by
    /// [`extract_cascade_forest`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Local id of the root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Snapshot id of a local node.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn snapshot_id(&self, local: usize) -> NodeId {
        self.nodes[local]
    }

    /// Children (local ids) of a local node.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn children(&self, local: usize) -> &[usize] {
        &self.children[local]
    }

    /// Children lists for all local nodes, indexed by local id.
    pub fn children_lists(&self) -> &[Vec<usize>] {
        &self.children
    }

    /// Activation-edge attributes `(sign, raw weight)` of a local node,
    /// `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn parent_edge(&self, local: usize) -> Option<(Sign, f64)> {
        self.parent_edge[local]
    }

    /// Observed snapshot state of a local node.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn state(&self, local: usize) -> NodeState {
        self.states[local]
    }

    /// Checks every structural invariant of the tree against the snapshot
    /// it was extracted from.
    ///
    /// Verified invariants:
    ///
    /// * all parallel arrays (`nodes`, `children`, `parent_edge`,
    ///   `states`) have equal length and `root` is in bounds;
    /// * exactly the root has no parent edge, and every non-root appears
    ///   in exactly one children list (the children lists encode a tree
    ///   rooted at `root`);
    /// * child indices are in bounds and no node is its own child;
    /// * every snapshot id is distinct, exists in `snapshot`, and carries
    ///   the snapshot's state;
    /// * every parent edge exists in the snapshot graph with the recorded
    ///   sign and weight.
    ///
    /// [`extract_cascade_forest`] upholds these by construction and
    /// re-asserts them in debug builds; call this on trees arriving
    /// through other channels (e.g. serde deserialization), not
    /// per-query.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] naming the first violated
    /// invariant.
    ///
    /// [`GraphError::Invariant`]: isomit_graph::GraphError
    pub fn validate(&self, snapshot: &InfectedNetwork) -> Result<(), GraphError> {
        let n = self.nodes.len();
        let fail = |msg: String| Err(GraphError::Invariant(msg));
        for (name, len) in [
            ("children", self.children.len()),
            ("parent_edge", self.parent_edge.len()),
            ("states", self.states.len()),
        ] {
            if len != n {
                return fail(format!("{name} has {len} entries for {n} nodes"));
            }
        }
        if n == 0 {
            return Ok(());
        }
        if self.root >= n {
            return fail(format!("root {} out of bounds for {n} nodes", self.root));
        }
        // Tree shape: in-degree 1 everywhere except the root.
        let mut parent_of: Vec<Option<usize>> = vec![None; n];
        for (p, kids) in self.children.iter().enumerate() {
            for &c in kids {
                if c >= n {
                    return fail(format!("child {c} of node {p} out of bounds"));
                }
                if c == p {
                    return fail(format!("node {p} lists itself as a child"));
                }
                if let Some(prev) = parent_of.get(c).copied().flatten() {
                    return fail(format!("node {c} has two parents: {prev} and {p}"));
                }
                if let Some(slot) = parent_of.get_mut(c) {
                    *slot = Some(p);
                }
            }
        }
        if parent_of.get(self.root).copied().flatten().is_some() {
            return fail(format!("root {} has a parent", self.root));
        }
        for (v, p) in parent_of.iter().enumerate() {
            if v != self.root && p.is_none() {
                return fail(format!("node {v} is unreachable from root {}", self.root));
            }
            let has_edge = self.parent_edge.get(v).copied().flatten().is_some();
            if p.is_some() != has_edge {
                return fail(format!(
                    "node {v}: children lists and parent_edge disagree on rootness"
                ));
            }
        }
        // Snapshot consistency.
        let mut seen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
        for (local, &sub_id) in self.nodes.iter().enumerate() {
            if !seen.insert(sub_id) {
                return fail(format!("snapshot id {sub_id} appears twice"));
            }
            if sub_id.index() >= snapshot.node_count() {
                return fail(format!(
                    "snapshot id {sub_id} out of bounds for {} snapshot nodes",
                    snapshot.node_count()
                ));
            }
            if snapshot.state(sub_id)
                != self
                    .states
                    .get(local)
                    .copied()
                    .unwrap_or(NodeState::Unknown)
            {
                return fail(format!(
                    "node {local} records state {:?}, snapshot has {:?}",
                    self.states.get(local),
                    snapshot.state(sub_id)
                ));
            }
            if let Some(p) = parent_of.get(local).copied().flatten() {
                let Some(parent_sub) = self.nodes.get(p).copied() else {
                    return fail(format!("parent {p} of node {local} out of bounds"));
                };
                let Some(e) = snapshot.graph().edge(parent_sub, sub_id) else {
                    return fail(format!(
                        "activation edge ({parent_sub}, {sub_id}) missing from the snapshot graph"
                    ));
                };
                if let Some((sign, weight)) = self.parent_edge.get(local).copied().flatten() {
                    if sign != e.sign || weight.to_bits() != e.weight.to_bits() {
                        return fail(format!(
                            "activation edge ({parent_sub}, {sub_id}) records ({sign:?}, {weight}), snapshot has ({:?}, {})",
                            e.sign, e.weight
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds the candidate activation arcs of an infected snapshot: **every**
/// diffusion link of `G_I` (the paper's Algorithm 2 considers all
/// in-links), weighted by the flip-discounted MFC activation likelihood
/// [`g_factor_discounted`] — the boosted probability
/// `w̄ = min(1, α·w)` / `w` on sign-consistent links
/// ([`NodeState::Unknown`] endpoints are wildcards), and
/// `FLIP_DISCOUNT · w̄` on inconsistent links (explainable only via a
/// later flip).
///
/// Arc endpoints are snapshot-subgraph indices, ready for
/// [`maximum_branching`].
///
/// [`FLIP_DISCOUNT`]: crate::likelihood::FLIP_DISCOUNT
///
/// # Panics
///
/// Panics (debug) if `alpha < 1`.
///
/// # Examples
///
/// ```
/// use isomit_core::usable_arcs;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // A consistent positive link is boosted: g = min(1, 2 · 0.25) = 0.5.
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.25)],
/// )?;
/// let snapshot = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 2]);
/// let arcs = usable_arcs(&snapshot, 2.0);
/// assert_eq!((arcs[0].src, arcs[0].dst, arcs[0].weight), (0, 1, 0.5));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn usable_arcs(snapshot: &InfectedNetwork, alpha: f64) -> Vec<WeightedArc> {
    snapshot
        .graph()
        .edges()
        .map(|e| WeightedArc {
            src: e.src.index(),
            dst: e.dst.index(),
            weight: g_factor_discounted(
                alpha,
                snapshot.state(e.src),
                e.sign,
                snapshot.state(e.dst),
                e.weight,
            ),
        })
        .collect()
}

/// Extracts the maximum-likelihood signed infected cascade forest of a
/// snapshot (the paper's Algorithms 2–4 pipeline):
///
/// 1. weight every arc with its flip-discounted activation likelihood,
/// 2. run Chu-Liu/Edmonds per weakly-connected infected component
///    ([`maximum_branching_components`]) against a thread-local pooled
///    [`BranchingArena`] — since usable arcs never cross components, the
///    per-component runs select exactly the arcs a single global run
///    would, but without per-component allocation churn and with
///    singleton components short-circuited to roots,
/// 3. split the branching into its trees.
///
/// Returns the trees (ordered by root snapshot id) and the number of
/// weakly-connected infected components.
///
/// Trees are materialized in parallel, one task per branching root
/// (configure the worker count with `RAYON_NUM_THREADS` or a rayon
/// `ThreadPool`); each tree depends only on its own root's reachable
/// set, and the final sort by root snapshot id makes the output
/// independent of thread count and scheduling order.
///
/// The output is **bit-identical** to
/// [`extract_cascade_forest_reference`], the retained single-run
/// baseline; the determinism suite and golden fixtures pin that
/// equivalence.
///
/// # Examples
///
/// ```
/// use isomit_core::extract_cascade_forest;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // Chain 0 -> 1 plus the isolated node 2: two components, two trees,
/// // ordered by root snapshot id.
/// let g = SignedDigraph::from_edges(
///     3,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
/// )?;
/// let snapshot = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 3]);
/// let (trees, components) = extract_cascade_forest(&snapshot, 2.0);
/// assert_eq!(components, 2);
/// assert_eq!(trees.len(), 2);
/// assert_eq!(trees[0].snapshot_id(trees[0].root()), NodeId(0));
/// assert_eq!(trees[1].snapshot_id(trees[1].root()), NodeId(2));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn extract_cascade_forest(snapshot: &InfectedNetwork, alpha: f64) -> (Vec<CascadeTree>, usize) {
    EXTRACTION_RUNS.with(|c| c.set(c.get() + 1));
    let components = weakly_connected_components(snapshot.graph());
    let component_count = components.len();
    let n = snapshot.node_count();
    let arcs = usable_arcs(snapshot, alpha);
    let branching = BRANCHING_ARENA
        .with(|arena| maximum_branching_components(n, &arcs, &components, &mut arena.borrow_mut()));
    let trees = materialize_forest(snapshot, &branching);
    (trees, component_count)
}

/// Single-run baseline of [`extract_cascade_forest`]: one global
/// Chu-Liu/Edmonds [`maximum_branching`] over the whole snapshot instead
/// of the arena-backed per-component driver.
///
/// Kept public so benchmarks (`batch_eval`, unless `--no-baseline`) can
/// measure the optimized path against it and so equivalence tests can
/// pin the bit-identity contract; production callers should use
/// [`extract_cascade_forest`].
///
/// # Examples
///
/// ```
/// use isomit_core::{extract_cascade_forest, extract_cascade_forest_reference};
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.5),
///     ],
/// )
/// .unwrap();
/// let states = vec![NodeState::Positive, NodeState::Positive, NodeState::Negative];
/// let snapshot = InfectedNetwork::from_parts(g, states);
/// // The optimized and reference extractions agree exactly.
/// assert_eq!(
///     extract_cascade_forest(&snapshot, 2.0),
///     extract_cascade_forest_reference(&snapshot, 2.0),
/// );
/// ```
pub fn extract_cascade_forest_reference(
    snapshot: &InfectedNetwork,
    alpha: f64,
) -> (Vec<CascadeTree>, usize) {
    EXTRACTION_RUNS.with(|c| c.set(c.get() + 1));
    let component_count = weakly_connected_components(snapshot.graph()).len();
    let n = snapshot.node_count();
    let arcs = usable_arcs(snapshot, alpha);
    let branching = maximum_branching(n, &arcs);
    let trees = materialize_forest(snapshot, &branching);
    (trees, component_count)
}

/// Shared tail of both extraction paths: splits a branching into cascade
/// trees, materialized in parallel and sorted by root snapshot id.
fn materialize_forest(snapshot: &InfectedNetwork, branching: &Branching) -> Vec<CascadeTree> {
    let children = branching.children();
    let roots = branching.roots();
    let mut trees: Vec<CascadeTree> = roots
        .par_iter()
        .map(|&root| build_tree(snapshot, &children, root))
        .collect();
    trees.sort_by_key(|t| t.snapshot_id(t.root()));
    debug_assert!(
        trees.iter().all(|t| t.validate(snapshot).is_ok()),
        "extract_cascade_forest produced an invalid tree: {:?}",
        trees.iter().find_map(|t| t.validate(snapshot).err())
    );
    trees
}

/// Materializes the cascade tree rooted at `root` (a snapshot-subgraph
/// index) from the branching's children lists, numbering nodes by DFS
/// pre-order from the root.
fn build_tree(snapshot: &InfectedNetwork, children: &[Vec<usize>], root: usize) -> CascadeTree {
    // Singleton fast path: isolated infected nodes are the most common
    // tree shape in sparse snapshots and need none of the DFS machinery.
    if children[root].is_empty() {
        let sub_id = NodeId::from_index(root);
        return CascadeTree {
            nodes: vec![sub_id],
            root: 0,
            children: vec![Vec::new()],
            parent_edge: vec![None],
            states: vec![snapshot.state(sub_id)],
        };
    }
    let mut nodes = Vec::new();
    let mut local_children: Vec<Vec<usize>> = Vec::new();
    let mut parent_edge: Vec<Option<(Sign, f64)>> = Vec::new();
    let mut states = Vec::new();
    let mut stack: Vec<(usize, Option<usize>)> = vec![(root, None)];
    while let Some((sub_idx, parent_local)) = stack.pop() {
        let local = nodes.len();
        let sub_id = NodeId::from_index(sub_idx);
        nodes.push(sub_id);
        local_children.push(Vec::new());
        states.push(snapshot.state(sub_id));
        match parent_local {
            None => parent_edge.push(None),
            Some(pl) => {
                local_children[pl].push(local);
                let parent_sub = nodes[pl];
                let e = snapshot
                    .graph()
                    .edge(parent_sub, sub_id)
                    .expect("branching arc exists in snapshot graph");
                parent_edge.push(Some((e.sign, e.weight)));
            }
        }
        for &c in &children[sub_idx] {
            stack.push((c, Some(local)));
        }
    }
    CascadeTree {
        nodes,
        root: 0,
        children: local_children,
        parent_edge,
        states,
    }
}

/// Computes each tree node's **external support**: the noisy-or
/// probability that it could be activated by some *plausible alternative
/// activator* in `G_I`,
/// `s_v = 1 − Π_u (1 − g̃(u, v))`,
/// where `g̃` is the flip-discounted activation likelihood and `u`
/// ranges over the in-neighbours of `v` that are **neither its tree
/// parent nor one of its tree descendants** — activation strictly
/// precedes in a cascade, so a node's activator can never be its own
/// descendant (counting descendants would let a rumor initiator look
/// "explained" by the very nodes it infected, e.g. over reciprocal
/// trust links).
///
/// This recovers the §III-B noisy-or over all paths that the
/// single-tree-path product loses: a node with many plausible activators
/// is well explained even when its tree path is weak, so RID's
/// probability-sum objective will not waste an initiator on it — splits
/// concentrate where explanations are genuinely missing. Indexed by the
/// tree's local ids; see
/// [`TreeDp::solve_probability_sum_with_support`](crate::TreeDp::solve_probability_sum_with_support).
///
/// # Examples
///
/// ```
/// use isomit_core::{external_support, extract_cascade_forest};
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // 0 -> 2 wins the branching; the non-tree in-edge 1 -> 2 remains a
/// // plausible alternative activator of node 2 with g = min(1, 2 · 0.25).
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.25),
///     ],
/// )?;
/// let snapshot = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 3]);
/// let (trees, _) = extract_cascade_forest(&snapshot, 2.0);
/// // trees[0] is rooted at node 0 and contains node 2.
/// let support = external_support(&snapshot, &trees[0], 2.0);
/// assert_eq!(support, vec![0.0, 0.5]);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn external_support(snapshot: &InfectedNetwork, tree: &CascadeTree, alpha: f64) -> Vec<f64> {
    let n = tree.len();
    // Snapshot id of each local node's parent (or None for the root).
    let mut parent_snapshot: Vec<Option<NodeId>> = vec![None; n];
    for local in 0..n {
        for &c in tree.children(local) {
            parent_snapshot[c] = Some(tree.snapshot_id(local));
        }
    }
    // Euler intervals for O(1) is-descendant tests, plus a snapshot-id →
    // local-id map restricted to this tree.
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut clock = 0u32;
    let mut stack = vec![(tree.root(), false)];
    while let Some((x, expanded)) = stack.pop() {
        if expanded {
            tout[x] = clock;
        } else {
            tin[x] = clock;
            clock += 1;
            stack.push((x, true));
            for &c in tree.children(x) {
                stack.push((c, false));
            }
        }
    }
    let mut local_of: std::collections::BTreeMap<NodeId, usize> = std::collections::BTreeMap::new();
    for local in 0..n {
        local_of.insert(tree.snapshot_id(local), local);
    }
    let is_descendant = |anc: usize, node: usize| tin[anc] <= tin[node] && tout[node] <= tout[anc];

    (0..n)
        .map(|local| {
            let v = tree.snapshot_id(local);
            let mut miss = 1.0;
            for e in snapshot.graph().in_edges(v) {
                if Some(e.src) == parent_snapshot[local] {
                    continue;
                }
                if let Some(&src_local) = local_of.get(&e.src) {
                    if is_descendant(local, src_local) {
                        continue;
                    }
                }
                // Strict factor: an inconsistent in-edge is not a
                // plausible *alternative* activator on its own (the flip
                // explanation needs a second, consistent edge).
                let g = crate::likelihood::g_factor(
                    alpha,
                    snapshot.state(e.src),
                    e.sign,
                    snapshot.state(e.dst),
                    e.weight,
                );
                miss *= 1.0 - g;
            }
            1.0 - miss
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, SignedDigraph};
    use NodeState::{Negative as N, Positive as P, Unknown as U};

    fn snapshot(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, states.to_vec())
    }

    #[test]
    fn usable_arcs_discount_inconsistent() {
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.4), // consistent P -> P
                (0, 2, Sign::Positive, 0.4), // inconsistent P -> N
                (0, 3, Sign::Negative, 0.4), // consistent P -> N via -
            ],
            &[P, P, N, N],
        );
        let arcs = usable_arcs(&s, 2.0);
        // Every edge is a candidate (Algorithm 2 keeps all in-links)...
        assert_eq!(arcs.len(), 3);
        let w: Vec<f64> = arcs.iter().map(|a| a.weight).collect();
        // ...consistent positive is boosted (0.8), consistent negative
        // keeps its raw weight (0.4), inconsistent is flip-discounted.
        assert!(w.contains(&0.8));
        assert!(w.contains(&0.4));
        assert!(w.contains(&(crate::likelihood::FLIP_DISCOUNT * 0.8)));
    }

    #[test]
    fn unknown_states_keep_arcs_usable() {
        let s = snapshot(&[(0, 1, Sign::Positive, 0.3)], &[U, N]);
        assert_eq!(usable_arcs(&s, 2.0).len(), 1);
    }

    #[test]
    fn chain_yields_single_tree() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Negative, 0.5)],
            &[P, P, N],
        );
        let (trees, components) = extract_cascade_forest(&s, 2.0);
        assert_eq!(components, 1);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.len(), 3);
        assert_eq!(t.snapshot_id(t.root()), NodeId(0));
        assert_eq!(t.parent_edge(t.root()), None);
        // Non-root nodes carry their activation edge's raw attributes.
        for local in 0..t.len() {
            if local != t.root() {
                let (sign, w) = t.parent_edge(local).unwrap();
                assert!((w - 0.5).abs() < 1e-12);
                let _ = sign;
            }
        }
    }

    #[test]
    fn inconsistent_edge_kept_with_discount() {
        // 0 -(+)-> 1 but 1 is negative: the edge stays a candidate (a
        // flip could explain it), so the forest is one tree; the DP
        // decides later whether node 1 is cheaper as an initiator.
        let s = snapshot(&[(0, 1, Sign::Positive, 0.9)], &[P, N]);
        let (trees, components) = extract_cascade_forest(&s, 2.0);
        assert_eq!(components, 1);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].len(), 2);
    }

    #[test]
    fn heaviest_parent_is_selected() {
        // Node 2 could be activated by 0 (boosted 0.9·2 → 1.0 capped) or
        // 1 (negative, 0.95). The boosted positive wins.
        let s = snapshot(
            &[(0, 2, Sign::Positive, 0.9), (1, 2, Sign::Negative, 0.95)],
            &[P, N, P],
        );
        let (trees, _) = extract_cascade_forest(&s, 2.0);
        // Roots: 0 and 1; node 2 hangs under 0.
        assert_eq!(trees.len(), 2);
        let t0 = trees
            .iter()
            .find(|t| t.snapshot_id(t.root()) == NodeId(0))
            .unwrap();
        assert_eq!(t0.len(), 2);
        let t1 = trees
            .iter()
            .find(|t| t.snapshot_id(t.root()) == NodeId(1))
            .unwrap();
        assert_eq!(t1.len(), 1);
    }

    #[test]
    fn multiple_components_multiple_trees() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.5), (2, 3, Sign::Positive, 0.5)],
            &[P, P, N, N],
        );
        let (trees, components) = extract_cascade_forest(&s, 2.0);
        assert_eq!(components, 2);
        assert_eq!(trees.len(), 2);
        // Trees sorted by root id.
        assert_eq!(trees[0].snapshot_id(trees[0].root()), NodeId(0));
        assert_eq!(trees[1].snapshot_id(trees[1].root()), NodeId(2));
    }

    #[test]
    fn forest_covers_every_infected_node_exactly_once() {
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.5),
                (1, 2, Sign::Positive, 0.5),
                (2, 0, Sign::Positive, 0.5), // cycle, broken by Edmonds
                (3, 2, Sign::Negative, 0.7),
            ],
            &[P, P, P, N],
        );
        let (trees, _) = extract_cascade_forest(&s, 2.0);
        let mut all: Vec<NodeId> = trees
            .iter()
            .flat_map(|t| (0..t.len()).map(|l| t.snapshot_id(l)))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn empty_snapshot() {
        let s = snapshot(&[], &[]);
        let (trees, components) = extract_cascade_forest(&s, 2.0);
        assert!(trees.is_empty());
        assert_eq!(components, 0);
    }

    #[test]
    fn external_support_counts_non_parent_in_edges() {
        // Node 2 has two in-edges: from 0 (its tree parent, the heavier)
        // and from 1. Support must count only the edge from 1.
        let s = snapshot(
            &[
                (0, 2, Sign::Positive, 0.4), // boosted to 0.8, tree parent
                (1, 2, Sign::Positive, 0.2), // boosted to 0.4, support
                (0, 1, Sign::Positive, 0.3),
            ],
            &[P, P, P],
        );
        let (trees, _) = extract_cascade_forest(&s, 2.0);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        let support = external_support(&s, t, 2.0);
        let local2 = (0..t.len())
            .find(|&l| t.snapshot_id(l) == NodeId(2))
            .unwrap();
        assert!((support[local2] - 0.4).abs() < 1e-12);
        // The root has no parent, so every in-edge counts (it has none).
        assert_eq!(support[t.root()], 0.0);
    }

    #[test]
    fn validate_accepts_extracted_trees_and_catches_corruption() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Negative, 0.5)],
            &[P, P, N],
        );
        let (trees, _) = extract_cascade_forest(&s, 2.0);
        let good = trees[0].clone();
        good.validate(&s).unwrap();

        fn expect_invariant(t: &CascadeTree, s: &InfectedNetwork, needle: &str) {
            match t.validate(s) {
                Err(GraphError::Invariant(msg)) => {
                    assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
                }
                other => panic!("expected Invariant containing {needle:?}, got {other:?}"),
            }
        }

        let mut t = good.clone();
        t.states.swap(0, 2);
        expect_invariant(&t, &s, "records state");

        let mut t = good.clone();
        t.nodes[1] = t.nodes[0]; // duplicate snapshot id
        expect_invariant(&t, &s, "appears twice");

        let mut t = good.clone();
        t.parent_edge[t.root] = Some((Sign::Positive, 0.5)); // root with an edge
        expect_invariant(&t, &s, "disagree on rootness");

        let mut t = good.clone();
        if let Some((_, w)) = &mut t.parent_edge[1] {
            *w = 0.9; // snapshot edge weight is 0.5
        }
        expect_invariant(&t, &s, "snapshot has");

        let mut t = good.clone();
        t.children[t.root].clear(); // orphan the subtree
        expect_invariant(&t, &s, "unreachable");
    }

    #[test]
    fn optimized_extraction_matches_reference() {
        // Multi-component snapshot with a cycle, an inconsistent edge, a
        // chain and isolated singletons: the arena-backed per-component
        // path must reproduce the single-run reference exactly.
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.5),
                (1, 2, Sign::Positive, 0.5),
                (2, 0, Sign::Positive, 0.5), // cycle
                (3, 2, Sign::Negative, 0.7),
                (4, 5, Sign::Positive, 0.9), // separate chain
                (5, 4, Sign::Negative, 0.9), // reciprocal, inconsistent
            ],
            &[P, P, P, N, P, P, U],
        );
        for alpha in [1.0, 2.0, 3.5] {
            let fast = extract_cascade_forest(&s, alpha);
            let reference = extract_cascade_forest_reference(&s, alpha);
            assert_eq!(fast, reference, "alpha={alpha}");
        }
        // Both paths count as extraction runs.
        let before = extraction_run_count();
        let _ = extract_cascade_forest(&s, 2.0);
        let _ = extract_cascade_forest_reference(&s, 2.0);
        assert_eq!(extraction_run_count(), before + 2);
    }

    #[test]
    fn tree_states_match_snapshot() {
        let s = snapshot(&[(0, 1, Sign::Negative, 0.5)], &[P, N]);
        let (trees, _) = extract_cascade_forest(&s, 2.0);
        let t = &trees[0];
        for local in 0..t.len() {
            assert_eq!(t.state(local), s.state(t.snapshot_id(local)));
        }
    }
}
