// lint:allow-file(indexing) rumor-centrality recursion indexes parent/children/subtree arrays all allocated with the tree's node count n; parent entries are checked < n by CascadeTree::validate()
//! The **rumor centrality** source detector of Shah & Zaman ("Rumors in
//! a network: who's the culprit?", IEEE Trans. IT 2011) — the classic
//! unsigned single-source estimator the paper's related work (§V)
//! contrasts RID against. Provided as an additional baseline: it
//! ignores signs, states and weights entirely and scores nodes purely by
//! the combinatorics of how many infection orderings they could have
//! initiated.
//!
//! For a tree with root `v`, `R(v) = n! / Π_u T_u^v` where `T_u^v` is
//! the size of the subtree rooted at `u` when the tree hangs from `v`.
//! All centralities are computed in one two-pass message-passing sweep
//! (log-space, so factorials never overflow). On general graphs, the
//! standard BFS-tree heuristic applies the tree formula to a spanning
//! tree of each infected component.

use crate::detection::{DetectedInitiator, Detection, InitiatorDetector};
use isomit_diffusion::InfectedNetwork;
use isomit_forest::weakly_connected_components;
use isomit_graph::{NodeId, SignedDigraph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Log-space rumor centralities of every node of a tree, given as a
/// parent-pointer array over `0..n` (exactly one root with
/// `parent[root] == usize::MAX`).
///
/// Returns `log R(v)` for every `v`; differences between entries are
/// meaningful, the absolute scale is `log n!`-shifted.
///
/// # Panics
///
/// Panics if the parent array is empty or does not describe a tree.
///
/// # Examples
///
/// ```
/// use isomit_core::tree_rumor_centralities;
///
/// // Star 1 <- 0 -> 2: R(0) = 3!/(3·1·1) = 2 beats the leaves'
/// // R = 3!/(3·2·1) = 1, so the center is the likeliest source.
/// let r = tree_rumor_centralities(&[usize::MAX, 0, 0]);
/// assert!((r[0] - 2f64.ln()).abs() < 1e-12);
/// assert!(r[0] > r[1]);
/// assert!((r[1] - r[2]).abs() < 1e-12);
/// ```
pub fn tree_rumor_centralities(parent: &[usize]) -> Vec<f64> {
    let n = parent.len();
    assert!(n > 0, "empty tree");
    let root = (0..n)
        .find(|&v| parent[v] == usize::MAX)
        .expect("tree must have a root");

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if v != root {
            assert!(parent[v] < n, "parent out of bounds");
            children[parent[v]].push(v);
        }
    }

    // Post-order subtree sizes (iterative).
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![(root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            order.push(v);
        } else {
            stack.push((v, true));
            for &c in &children[v] {
                stack.push((c, false));
            }
        }
    }
    assert_eq!(order.len(), n, "parent pointers do not form one tree");
    let mut size = vec![1usize; n];
    for &v in &order {
        for &c in &children[v] {
            size[v] += size[c];
        }
    }

    // log R(root) = log n! - sum_u log T_u (with T_root = n).
    let log_fact: f64 = (2..=n).map(|i| (i as f64).ln()).sum();
    let mut log_r = vec![0.0f64; n];
    log_r[root] = log_fact - size.iter().map(|&s| (s as f64).ln()).sum::<f64>();

    // Rerooting: R(c) = R(parent) * T_c / (n - T_c).
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &c in &children[v] {
            log_r[c] = log_r[v] + (size[c] as f64).ln() - ((n - size[c]) as f64).ln();
            queue.push_back(c);
        }
    }
    log_r
}

/// BFS spanning tree (undirected view) of the subgraph induced by
/// `component`, as parent pointers over component-local indices.
fn bfs_spanning_tree(graph: &SignedDigraph, component: &[NodeId]) -> Vec<usize> {
    let local_of: std::collections::BTreeMap<NodeId, usize> =
        component.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut parent = vec![usize::MAX; component.len()];
    let mut visited = vec![false; component.len()];
    visited[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        let u_id = component[u];
        for &v_id in graph
            .out_neighbors(u_id)
            .iter()
            .chain(graph.in_neighbors(u_id))
        {
            if let Some(&v) = local_of.get(&v_id) {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
    }
    parent
}

/// The rumor-centrality baseline detector: one estimated source per
/// infected weakly-connected component (the estimator is inherently
/// single-source), scored by tree rumor centrality on a BFS spanning
/// tree. Signs, states, link directions and weights are ignored — which
/// is precisely why it struggles on signed multi-initiator snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RumorCentrality {
    _private: (),
}

impl RumorCentrality {
    /// Creates the parameter-free detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InitiatorDetector for RumorCentrality {
    fn name(&self) -> String {
        "Rumor-Centrality".to_string()
    }

    fn detect(&self, snapshot: &InfectedNetwork) -> Detection {
        let components = weakly_connected_components(snapshot.graph());
        let mut initiators = Vec::with_capacity(components.len());
        for component in &components {
            let parent = bfs_spanning_tree(snapshot.graph(), component);
            let log_r = tree_rumor_centralities(&parent);
            let best_local = (0..component.len())
                .max_by(|&a, &b| log_r[a].total_cmp(&log_r[b]))
                .expect("non-empty component");
            let sub_id = component[best_local];
            initiators.push(DetectedInitiator {
                node: snapshot
                    .mapping()
                    .to_original(sub_id)
                    .expect("snapshot id maps to original network"),
                state: snapshot.state(sub_id),
            });
        }
        let mut detection = Detection {
            initiators,
            component_count: components.len(),
            tree_count: components.len(),
            objective: 0.0,
        };
        detection.sort();
        detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeState, Sign};

    fn chain_parents(n: usize) -> Vec<usize> {
        // Path 0 - 1 - ... - n-1 rooted at 0.
        (0..n)
            .map(|v| if v == 0 { usize::MAX } else { v - 1 })
            .collect()
    }

    #[test]
    fn path_center_has_max_centrality() {
        let log_r = tree_rumor_centralities(&chain_parents(5));
        let best = (0..5)
            .max_by(|&a, &b| log_r[a].total_cmp(&log_r[b]))
            .unwrap();
        assert_eq!(best, 2, "centre of a 5-path");
        // Symmetry: ends tie, next-to-ends tie.
        assert!((log_r[0] - log_r[4]).abs() < 1e-9);
        assert!((log_r[1] - log_r[3]).abs() < 1e-9);
    }

    #[test]
    fn star_hub_has_max_centrality() {
        // Star rooted at the hub 0 with 4 leaves.
        let parent = vec![usize::MAX, 0, 0, 0, 0];
        let log_r = tree_rumor_centralities(&parent);
        for leaf in 1..5 {
            assert!(log_r[0] > log_r[leaf], "hub must beat leaf {leaf}");
        }
    }

    #[test]
    fn centrality_counts_orderings_exactly_on_tiny_tree() {
        // Path of 3: R(center) = 3!/（3·1·1) = 2, R(end) = 3!/(3·2·1) = 1.
        let log_r = tree_rumor_centralities(&chain_parents(3));
        assert!((log_r[1] - 2.0f64.ln()).abs() < 1e-12);
        assert!((log_r[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_tree() {
        let log_r = tree_rumor_centralities(&[usize::MAX]);
        assert_eq!(log_r, vec![0.0]);
    }

    fn snapshot(edges: &[(u32, u32)], n: usize) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 0.5)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive; n])
    }

    #[test]
    fn detector_picks_the_centre_of_a_path() {
        let s = snapshot(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let d = RumorCentrality::new().detect(&s);
        assert_eq!(d.nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn one_source_per_component() {
        let s = snapshot(&[(0, 1), (2, 3)], 4);
        let d = RumorCentrality::new().detect(&s);
        assert_eq!(d.len(), 2);
        assert_eq!(d.component_count, 2);
    }

    #[test]
    fn direction_is_ignored() {
        // Same undirected path regardless of edge orientations.
        let a = RumorCentrality::new().detect(&snapshot(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5));
        let b = RumorCentrality::new().detect(&snapshot(&[(1, 0), (2, 1), (3, 2), (4, 3)], 5));
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    #[should_panic(expected = "tree must have a root")]
    fn cyclic_parents_panic() {
        tree_rumor_centralities(&[1, 0]);
    }
}
