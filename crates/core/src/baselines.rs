use crate::detection::{DetectedInitiator, Detection, InitiatorDetector};
use crate::error::RidError;
use crate::forest_extraction::extract_cascade_forest;
use isomit_diffusion::InfectedNetwork;
use isomit_forest::{maximum_branching, weakly_connected_components, WeightedArc};
use isomit_graph::Sign;
use serde::{Deserialize, Serialize};

/// The **RID-Tree** baseline (§IV-B1): run the first two stages of RID —
/// component detection and maximum-likelihood cascade-forest extraction —
/// and report the tree *roots* as the initiators, without the per-tree
/// dynamic program.
///
/// This is the signed generalization of Lappas et al.'s k-effectors tree
/// method. Per the paper, "the infected users without incoming diffusion
/// links (i.e., the roots of extracted diffusion trees) will definitely
/// be rumor initiators" — so RID-Tree reports exactly the nodes with no
/// incoming links in `G_I`, which gives it perfect precision but poor
/// recall. (Chu-Liu/Edmonds can additionally strand a root inside an
/// isolated mutual-infection cycle, where the paper's root/no-in-link
/// equivalence breaks; those cycle-break roots are a coin flip and are
/// *not* reported, keeping the baseline's precision-1 property.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RidTree {
    alpha: f64,
}

impl RidTree {
    /// Creates the baseline with boosting coefficient `alpha` (used to
    /// weight arcs during forest extraction, like RID).
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] unless `alpha >= 1`.
    pub fn new(alpha: f64) -> Result<Self, RidError> {
        if !alpha.is_finite() || alpha < 1.0 {
            return Err(RidError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and >= 1",
            });
        }
        Ok(RidTree { alpha })
    }
}

impl InitiatorDetector for RidTree {
    fn name(&self) -> String {
        "RID-Tree".to_string()
    }

    fn detect(&self, snapshot: &InfectedNetwork) -> Detection {
        let (trees, component_count) = extract_cascade_forest(snapshot, self.alpha);
        let initiators = trees
            .iter()
            .map(|t| t.snapshot_id(t.root()))
            // Keep only the definite roots: nodes nobody could have
            // activated. Cycle-break roots still have in-links and are
            // dropped (see the type-level docs).
            .filter(|&sub_id| snapshot.graph().in_degree(sub_id) == 0)
            .map(|sub_id| DetectedInitiator {
                node: snapshot
                    .mapping()
                    .to_original(sub_id)
                    .expect("snapshot id maps to original network"),
                // Roots report their observed snapshot state (possibly
                // Unknown) — RID-Tree has no state-inference stage.
                state: snapshot.state(sub_id),
            })
            .collect();
        let mut detection = Detection {
            initiators,
            component_count,
            tree_count: trees.len(),
            objective: 0.0,
        };
        detection.sort();
        detection
    }
}

/// The **RID-Positive** baseline (§IV-B1): discard every negative link,
/// then run the plain *unsigned* diffusion-tree extraction of Lappas et
/// al. on the positive remainder — no sign-consistency filtering, no
/// boosting — and report the roots.
///
/// Nodes reachable only through distrust links lose all incoming arcs and
/// surface as (mostly false) roots, which reproduces the paper's
/// observation that RID-Positive detects many initiators at low
/// precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RidPositive {
    _private: (),
}

impl RidPositive {
    /// Creates the parameter-free baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InitiatorDetector for RidPositive {
    fn name(&self) -> String {
        "RID-Positive".to_string()
    }

    fn detect(&self, snapshot: &InfectedNetwork) -> Detection {
        let graph = snapshot.graph();
        let component_count = weakly_connected_components(graph).len();
        // Unsigned method: keep positive arcs with their raw weights,
        // ignoring node states entirely.
        let arcs: Vec<WeightedArc> = graph
            .edges()
            .filter(|e| e.sign == Sign::Positive)
            .map(|e| WeightedArc {
                src: e.src.index(),
                dst: e.dst.index(),
                weight: e.weight,
            })
            .collect();
        let branching = maximum_branching(graph.node_count(), &arcs);
        let initiators = branching
            .roots()
            .into_iter()
            .map(|root| {
                let sub_id = isomit_graph::NodeId::from_index(root);
                DetectedInitiator {
                    node: snapshot
                        .mapping()
                        .to_original(sub_id)
                        .expect("snapshot id maps to original network"),
                    state: snapshot.state(sub_id),
                }
            })
            .collect();
        let mut detection = Detection {
            initiators,
            component_count,
            tree_count: branching.roots().len(),
            objective: 0.0,
        };
        detection.sort();
        detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, NodeState, SignedDigraph};
    use NodeState::{Negative as N, Positive as P};

    fn snapshot(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, states.to_vec())
    }

    #[test]
    fn rid_tree_reports_forest_roots_only() {
        // A chain: only the true root (no in-links at all) is reported,
        // even across the inconsistent middle edge (which stays a
        // flip-discounted candidate per Algorithm 2).
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.5),
                (1, 2, Sign::Positive, 0.5), // P -> N over +: inconsistent
                (2, 3, Sign::Negative, 0.5),
            ],
            &[P, P, N, P],
        );
        let d = RidTree::new(2.0).unwrap().detect(&s);
        assert_eq!(d.nodes(), vec![NodeId(0)]);
        assert_eq!(d.tree_count, 1);
        assert_eq!(d.state_of(NodeId(0)), Some(P));
    }

    #[test]
    fn rid_tree_rejects_bad_alpha() {
        assert!(RidTree::new(0.0).is_err());
    }

    #[test]
    fn rid_positive_ignores_states_and_negative_links() {
        // Node 2 is only reachable over a negative link: RID-Positive
        // drops it and reports 2 as a root. Node 1's inconsistent
        // positive in-link is kept anyway (states are ignored).
        let s = snapshot(
            &[
                (0, 1, Sign::Positive, 0.5), // kept despite P -> N mismatch
                (1, 2, Sign::Negative, 0.5), // dropped
            ],
            &[P, N, P],
        );
        let d = RidPositive::new().detect(&s);
        assert_eq!(d.nodes(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn rid_positive_on_all_negative_graph_reports_everyone() {
        let s = snapshot(
            &[(0, 1, Sign::Negative, 0.5), (1, 2, Sign::Negative, 0.5)],
            &[P, N, P],
        );
        let d = RidPositive::new().detect(&s);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn names() {
        assert_eq!(RidTree::new(3.0).unwrap().name(), "RID-Tree");
        assert_eq!(RidPositive::new().name(), "RID-Positive");
    }
}
