// lint:allow-file(indexing) set-cover gadget ids are constructed below n + set_count + 1, the size of every gadget-side array
//! The §III-C NP-hardness apparatus: set-cover instances, their exact and
//! greedy solvers, and the paper's reduction gadget mapping a set-cover
//! instance to an ISOMIT instance.
//!
//! # Faithfulness note
//!
//! We build the gadget **exactly as printed** in the paper's Proof 1
//! (element nodes → set nodes with weight 1, element nodes → dummy `d`
//! with weight `1/n`, `d` → set nodes with weight 1, all signs `+1`, all
//! states `+1`). As printed, element nodes have no incoming links, so
//! *every* element must be an initiator and the minimum-certainty
//! initiator set is `{all elements}` plus `d` when `α < n` — a quantity
//! independent of the cover structure (the reduction as published does
//! not actually vary with the chosen cover; see DESIGN.md for the
//! analysis). The gadget is still valuable: it exercises the
//! `P(G_I|I,S) = 1` machinery of [`crate::exact`], and
//! [`minimum_gadget_initiators`] states the provable optimum so tests can
//! pin the behaviour.

use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState, Sign, SignedDigraphBuilder};

/// A set-cover instance: `universe` elements `0..universe` and a family
/// of subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverInstance {
    universe: usize,
    sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Creates an instance, validating element ranges.
    ///
    /// # Panics
    ///
    /// Panics if a set references an element `>= universe`.
    pub fn new(universe: usize, sets: Vec<Vec<usize>>) -> Self {
        for (j, set) in sets.iter().enumerate() {
            for &e in set {
                assert!(e < universe, "set {j} references element {e} >= {universe}");
            }
        }
        SetCoverInstance { universe, sets }
    }

    /// Number of elements.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The subsets.
    pub fn sets(&self) -> &[Vec<usize>] {
        &self.sets
    }

    /// `true` if the chosen set indices cover the universe.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &j in chosen {
            for &e in &self.sets[j] {
                covered[e] = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// The classical greedy `ln n`-approximation: repeatedly pick the set
    /// covering the most uncovered elements. Returns `None` if no cover
    /// exists.
    pub fn greedy_cover(&self) -> Option<Vec<usize>> {
        let mut covered = vec![false; self.universe];
        let mut remaining = self.universe;
        let mut chosen = Vec::new();
        while remaining > 0 {
            let (best_j, gain) = self
                .sets
                .iter()
                .enumerate()
                .map(|(j, s)| (j, s.iter().filter(|&&e| !covered[e]).count()))
                .max_by_key(|&(_, gain)| gain)?;
            if gain == 0 {
                return None;
            }
            chosen.push(best_j);
            for &e in &self.sets[best_j] {
                if !covered[e] {
                    covered[e] = true;
                    remaining -= 1;
                }
            }
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Exact minimum cover by subset enumeration (exponential in the
    /// number of sets). Returns `None` if no cover exists.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 20 sets.
    pub fn exact_cover(&self) -> Option<Vec<usize>> {
        let m = self.sets.len();
        assert!(m <= 20, "exact cover limited to 20 sets, got {m}");
        if self.universe == 0 {
            return Some(Vec::new());
        }
        let masks: Vec<u64> = self
            .sets
            .iter()
            .map(|s| s.iter().fold(0u64, |acc, &e| acc | (1 << e)))
            .collect();
        let full = if self.universe == 64 {
            u64::MAX
        } else {
            (1u64 << self.universe) - 1
        };
        let mut best: Option<Vec<usize>> = None;
        for choice in 0u32..(1u32 << m) {
            let covered = (0..m)
                .filter(|j| choice & (1 << j) != 0)
                .fold(0u64, |acc, j| acc | masks[j]);
            if covered & full == full {
                let size = choice.count_ones() as usize;
                if best.as_ref().is_none_or(|b| size < b.len()) {
                    best = Some((0..m).filter(|j| choice & (1 << j) != 0).collect());
                }
            }
        }
        best
    }
}

/// The ISOMIT gadget built from a set-cover instance, with named access
/// to the three node groups of the paper's construction.
#[derive(Debug, Clone)]
pub struct Gadget {
    network: InfectedNetwork,
    universe: usize,
    set_count: usize,
}

impl Gadget {
    /// The infected snapshot of the gadget (all states `+1`).
    pub fn network(&self) -> &InfectedNetwork {
        &self.network
    }

    /// Node standing for element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn element_node(&self, i: usize) -> NodeId {
        assert!(i < self.universe, "element {i} out of range");
        NodeId::from_index(i)
    }

    /// Node standing for set `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_node(&self, j: usize) -> NodeId {
        assert!(j < self.set_count, "set {j} out of range");
        NodeId::from_index(self.universe + j)
    }

    /// The dummy node `d`.
    pub fn dummy_node(&self) -> NodeId {
        NodeId::from_index(self.universe + self.set_count)
    }

    /// Total node count (`n + m + 1`).
    pub fn len(&self) -> usize {
        self.universe + self.set_count + 1
    }

    /// `true` for a degenerate empty gadget (never produced — the dummy
    /// always exists).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Builds the paper's Proof-1 gadget for a set-cover instance: a directed
/// all-positive infected network with
///
/// * `element → set` links of weight 1 for every membership `e_i ∈ L_j`,
/// * `element → d` links of weight `1/n`,
/// * `d → set` links of weight 1,
///
/// and every node observed in state `+1`.
///
/// # Examples
///
/// ```
/// use isomit_core::reduction::{set_cover_to_isomit, SetCoverInstance};
///
/// // Universe {0, 1} and a single set {0, 1}: the gadget holds the two
/// // element nodes, one set node and the dummy d.
/// let inst = SetCoverInstance::new(2, vec![vec![0, 1]]);
/// let gadget = set_cover_to_isomit(&inst);
/// assert_eq!(gadget.len(), 4);
/// assert_eq!(gadget.network().node_count(), 4);
/// ```
pub fn set_cover_to_isomit(instance: &SetCoverInstance) -> Gadget {
    let n = instance.universe();
    let m = instance.sets().len();
    let mut b = SignedDigraphBuilder::with_nodes(n + m + 1);
    let d = NodeId::from_index(n + m);
    let inv_n = if n == 0 { 1.0 } else { 1.0 / n as f64 };
    for (j, set) in instance.sets().iter().enumerate() {
        let set_node = NodeId::from_index(n + j);
        for &e in set {
            b.add_edge(NodeId::from_index(e), set_node, Sign::Positive, 1.0)
                .expect("gadget edges are valid");
        }
        b.add_edge(d, set_node, Sign::Positive, 1.0)
            .expect("gadget edges are valid");
    }
    for e in 0..n {
        b.add_edge(NodeId::from_index(e), d, Sign::Positive, inv_n)
            .expect("gadget edges are valid");
    }
    let graph = b.build();
    let states = vec![NodeState::Positive; graph.node_count()];
    Gadget {
        network: InfectedNetwork::from_parts(graph, states),
        universe: n,
        set_count: m,
    }
}

/// The provable minimum-certainty initiator set of the printed gadget:
/// all element nodes, plus `d` iff `α < n` (the `1/n`-weight links are
/// only boosted to probability 1 when `α ≥ n`).
///
/// Returned in ascending node order, states all `+1`. Validated against
/// the exponential [`minimum_certain_initiators`](crate::exact::minimum_certain_initiators) in tests.
///
/// # Examples
///
/// ```
/// use isomit_core::reduction::{
///     minimum_gadget_initiators, set_cover_to_isomit, SetCoverInstance,
/// };
///
/// let gadget = set_cover_to_isomit(&SetCoverInstance::new(2, vec![vec![0, 1]]));
/// // alpha < n: the 1/n-weight links stay uncertain, so the dummy is
/// // needed alongside both elements.
/// assert_eq!(minimum_gadget_initiators(&gadget, 1.5).len(), 3);
/// // alpha >= n boosts them to probability 1; the elements suffice.
/// assert_eq!(minimum_gadget_initiators(&gadget, 2.0).len(), 2);
/// ```
pub fn minimum_gadget_initiators(gadget: &Gadget, alpha: f64) -> Vec<(NodeId, Sign)> {
    let mut seeds: Vec<(NodeId, Sign)> = (0..gadget.universe)
        .map(|i| (gadget.element_node(i), Sign::Positive))
        .collect();
    let n = gadget.universe as f64;
    if alpha < n || gadget.universe == 0 {
        seeds.push((gadget.dummy_node(), Sign::Positive));
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn small_instance() -> SetCoverInstance {
        // Universe {0, 1, 2, 3}; sets: {0, 1}, {1, 2}, {2, 3}, {0, 3}.
        SetCoverInstance::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]])
    }

    #[test]
    fn cover_checking() {
        let inst = small_instance();
        assert!(inst.is_cover(&[0, 2]));
        assert!(inst.is_cover(&[1, 3]));
        assert!(!inst.is_cover(&[0, 1]));
    }

    #[test]
    fn greedy_finds_a_cover() {
        let inst = small_instance();
        let cover = inst.greedy_cover().unwrap();
        assert!(inst.is_cover(&cover));
    }

    #[test]
    fn exact_cover_is_minimum() {
        let inst = small_instance();
        let exact = inst.exact_cover().unwrap();
        assert!(inst.is_cover(&exact));
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn uncoverable_instance() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1]]);
        assert_eq!(inst.greedy_cover(), None);
        assert_eq!(inst.exact_cover(), None);
    }

    #[test]
    fn empty_universe_needs_no_sets() {
        let inst = SetCoverInstance::new(0, vec![]);
        assert_eq!(inst.exact_cover(), Some(vec![]));
        assert!(inst.is_cover(&[]));
    }

    #[test]
    fn gadget_structure_matches_paper() {
        let inst = SetCoverInstance::new(2, vec![vec![0], vec![0, 1]]);
        let gadget = set_cover_to_isomit(&inst);
        assert_eq!(gadget.len(), 5); // 2 elements + 2 sets + d
        let g = gadget.network().graph();
        // e0 -> L0, e0 -> L1, e1 -> L1 memberships.
        assert!(g.has_edge(gadget.element_node(0), gadget.set_node(0)));
        assert!(g.has_edge(gadget.element_node(0), gadget.set_node(1)));
        assert!(g.has_edge(gadget.element_node(1), gadget.set_node(1)));
        assert!(!g.has_edge(gadget.element_node(1), gadget.set_node(0)));
        // d -> sets, elements -> d with weight 1/n.
        assert!(g.has_edge(gadget.dummy_node(), gadget.set_node(0)));
        let e = g.edge(gadget.element_node(0), gadget.dummy_node()).unwrap();
        assert!((e.weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gadget_minimum_matches_exact_solver_small_alpha() {
        // alpha = 1 < n = 2: d must be seeded too.
        let inst = SetCoverInstance::new(2, vec![vec![0, 1]]);
        let gadget = set_cover_to_isomit(&inst);
        let predicted = minimum_gadget_initiators(&gadget, 1.0);
        let exact = exact::minimum_certain_initiators(gadget.network(), 1.0).unwrap();
        assert_eq!(exact.len(), predicted.len());
        assert!(exact::certainly_infected(gadget.network(), 1.0, &predicted));
    }

    #[test]
    fn gadget_minimum_matches_exact_solver_large_alpha() {
        // alpha = 4 >= n = 2: the 1/n links boost to probability 1, so d
        // is reachable from the elements and need not be seeded.
        let inst = SetCoverInstance::new(2, vec![vec![0, 1]]);
        let gadget = set_cover_to_isomit(&inst);
        let predicted = minimum_gadget_initiators(&gadget, 4.0);
        assert_eq!(predicted.len(), 2); // elements only
        let exact = exact::minimum_certain_initiators(gadget.network(), 4.0).unwrap();
        assert_eq!(exact.len(), predicted.len());
        assert!(exact::certainly_infected(gadget.network(), 4.0, &predicted));
    }

    #[test]
    fn dropping_any_element_breaks_certainty() {
        let inst = small_instance();
        let gadget = set_cover_to_isomit(&inst);
        let full = minimum_gadget_initiators(&gadget, 1.0);
        assert!(exact::certainly_infected(gadget.network(), 1.0, &full));
        for skip in 0..full.len() {
            let partial: Vec<_> = full
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &s)| s)
                .collect();
            assert!(
                !exact::certainly_infected(gadget.network(), 1.0, &partial),
                "dropping seed {skip} should break certainty"
            );
        }
    }
}
