//! # isomit-core
//!
//! The **RID** (Rumor Initiator Detector) framework of *Rumor Initiator
//! Detection in Infected Signed Networks* (Zhang, Aggarwal, Yu — ICDCS
//! 2017): given a snapshot of an infected signed diffusion network
//! (`G_I`, node opinions in `{+1, −1, ?}`), infer the number, identities
//! and initial states of the rumor initiators that most likely produced
//! it — the **ISOMIT** problem.
//!
//! The pipeline (§III-E of the paper):
//!
//! 1. **Infected connected components** — weakly connected components of
//!    `G_I` ([`isomit_forest::weakly_connected_components`]).
//! 2. **Cascade forest extraction** — per component, the
//!    maximum-likelihood set of cascade trees: keep only *usable*
//!    (sign-consistent under MFC) diffusion links, then run
//!    Chu-Liu/Edmonds ([`isomit_forest::maximum_branching`]) on the
//!    boosted activation probabilities (Algorithms 2–4). See
//!    [`extract_cascade_forest`].
//! 3. **Per-tree initiator inference** — binarize each cascade tree
//!    (Figure 3), then run the k-ISOMIT-BT dynamic program (§III-D) and
//!    select `k` by the penalized objective
//!    `argmin_k  −OPT(k) + (k−1)·β` (§III-E3). See [`Rid`] and
//!    [`TreeDp`].
//!
//! Baselines from the paper's evaluation are provided: [`RidTree`]
//! (forest roots only, the signed generalization of Lappas et al.'s
//! k-effectors tree method) and [`RidPositive`] (positive links only).
//! All detectors implement [`InitiatorDetector`].
//!
//! The §III-B likelihood (`P(u, s(u) | I, S)` and `P(G_I | I, S)`) is
//! implemented in [`likelihood`], and the §III-C NP-hardness apparatus
//! (set-cover gadget, exact exponential solver) in [`reduction`] and
//! [`exact`].
//!
//! # Example
//!
//! ```
//! use isomit_core::{InitiatorDetector, Rid};
//! use isomit_diffusion::{DiffusionModel, InfectedNetwork, Mfc, SeedSet};
//! use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate an MFC outbreak, then work backwards with RID.
//! let g = SignedDigraph::from_edges(
//!     4,
//!     [
//!         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.9),
//!         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.9),
//!         Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.9),
//!     ],
//! )?;
//! let seeds = SeedSet::single(NodeId(0), Sign::Positive);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let cascade = Mfc::new(3.0)?.simulate(&g, &seeds, &mut rng)?;
//! let snapshot = InfectedNetwork::from_cascade(&g, &cascade);
//!
//! let detection = Rid::new(3.0, 0.1)?.detect(&snapshot);
//! assert!(detection.contains(NodeId(0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod baselines;
mod centrality;
mod codec;
mod detection;
mod dp;
mod error;
mod forest_extraction;
mod incremental;
mod kisomit;
mod rid;
mod stages;

pub mod exact;
pub mod likelihood;
pub mod reduction;

pub use baselines::{RidPositive, RidTree};
pub use centrality::{tree_rumor_centralities, RumorCentrality};
pub use codec::RidResult;
pub use detection::{DetectedInitiator, Detection, InitiatorDetector};
pub use dp::{DpOutcome, TreeDp};
pub use error::RidError;
pub use forest_extraction::{
    external_support, extract_cascade_forest, extract_cascade_forest_reference,
    extraction_run_count, usable_arcs, CascadeTree,
};
pub use incremental::{AnswerOutcome, DeltaError, IncrementalRid, RidDelta};
pub use kisomit::solve_k_isomit;
pub use rid::{Rid, RidConfig, RidObjective};
pub use stages::ForestArtifacts;
