use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState};
use serde::{Deserialize, Serialize};

/// One detected rumor initiator: identity (in **original-network** ids)
/// plus inferred initial state.
///
/// Tree-root baselines report the observed snapshot state (possibly
/// [`NodeState::Unknown`]); the full RID dynamic program always infers a
/// concrete `+1`/`−1` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedInitiator {
    /// The initiator's id in the original diffusion network.
    pub node: NodeId,
    /// The inferred (or observed) initial opinion.
    pub state: NodeState,
}

/// The output of an [`InitiatorDetector`]: the inferred initiator set
/// `(I*, S*)` together with pipeline diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected initiators, ascending by node id.
    pub initiators: Vec<DetectedInitiator>,
    /// Number of infected weakly-connected components.
    pub component_count: usize,
    /// Number of cascade trees in the extracted forest (a lower bound on
    /// the number of initiators, per §III-E3).
    pub tree_count: usize,
    /// Total penalized objective value `Σ_T (−OPT + (k−1)β)`; `0.0` for
    /// baselines that do not optimize an objective.
    pub objective: f64,
}

impl Detection {
    /// `true` if `node` (original-network id) was detected.
    pub fn contains(&self, node: NodeId) -> bool {
        self.initiators.iter().any(|d| d.node == node)
    }

    /// Inferred state of a detected initiator, `None` if not detected.
    pub fn state_of(&self, node: NodeId) -> Option<NodeState> {
        self.initiators
            .iter()
            .find(|d| d.node == node)
            .map(|d| d.state)
    }

    /// Number of detected initiators.
    pub fn len(&self) -> usize {
        self.initiators.len()
    }

    /// `true` if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.initiators.is_empty()
    }

    /// The detected node ids, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.initiators.iter().map(|d| d.node).collect()
    }

    pub(crate) fn sort(&mut self) {
        self.initiators.sort_by_key(|d| d.node);
    }
}

/// A rumor-initiator detection algorithm solving the ISOMIT problem on
/// an infected snapshot.
///
/// Implemented by [`Rid`](crate::Rid), [`RidTree`](crate::RidTree) and
/// [`RidPositive`](crate::RidPositive); object-safe so experiment
/// harnesses can iterate over `Vec<Box<dyn InitiatorDetector>>`.
pub trait InitiatorDetector: std::fmt::Debug {
    /// Human-readable detector name used in reports, e.g. `"RID(0.1)"`.
    fn name(&self) -> String;

    /// Runs detection on an infected snapshot. Reported initiator ids are
    /// translated back to the original network through the snapshot's
    /// [`mapping`](InfectedNetwork::mapping).
    fn detect(&self, snapshot: &InfectedNetwork) -> Detection;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let mut d = Detection {
            initiators: vec![
                DetectedInitiator {
                    node: NodeId(5),
                    state: NodeState::Positive,
                },
                DetectedInitiator {
                    node: NodeId(2),
                    state: NodeState::Negative,
                },
            ],
            component_count: 1,
            tree_count: 2,
            objective: 1.5,
        };
        d.sort();
        assert_eq!(d.nodes(), vec![NodeId(2), NodeId(5)]);
        assert!(d.contains(NodeId(2)));
        assert!(!d.contains(NodeId(3)));
        assert_eq!(d.state_of(NodeId(5)), Some(NodeState::Positive));
        assert_eq!(d.state_of(NodeId(9)), None);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
