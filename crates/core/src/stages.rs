//! Two-stage RID pipeline: extract once, query many times.
//!
//! [`Rid::detect`](crate::InitiatorDetector::detect) runs the full
//! pipeline per call, but its two halves have very different reuse
//! profiles. The *extract* half (weakly-connected components,
//! Chu-Liu/Edmonds branching, cascade-tree materialization, external
//! support accumulation) depends only on the snapshot and `alpha`; the
//! *query* half (binarized-tree DP + penalized model selection) also
//! depends on `beta`, the objective, and the external-support toggle.
//! Splitting them lets callers that answer many queries against one
//! snapshot — the §III-E3 β model-selection sweep, the serving engine's
//! artifact cache — pay the expensive half exactly once.
//!
//! Determinism contract: for any snapshot,
//! `rid.query_stage(&s, &rid.extract_stage(&s))` is bit-identical to
//! `rid.detect(&s)`, regardless of how often or on which thread the
//! artifacts are reused.

use crate::detection::{DetectedInitiator, Detection};
use crate::dp::TreeDp;
use crate::error::RidError;
use crate::forest_extraction::{external_support, extract_cascade_forest, CascadeTree};
use crate::rid::{Rid, RidObjective};
use isomit_diffusion::InfectedNetwork;
use isomit_graph::NodeState;
use isomit_telemetry::{names, Histogram};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Cached handle into the process-global telemetry registry; looked up
/// once so the hot path pays one pointer load, not a map lookup.
fn extract_stage_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::RID_EXTRACT_STAGE_NS))
}

fn query_stage_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::RID_QUERY_STAGE_NS))
}

/// Snapshot-level artifacts produced by [`Rid::extract_stage`]: the
/// extracted cascade forest plus per-tree external-support tables.
///
/// Artifacts are tied to the `(snapshot, alpha)` pair they were
/// extracted from; [`Rid::query_stage`] rejects artifacts whose `alpha`
/// differs bit-for-bit from the detector's. They are immutable and
/// `Send + Sync`, so a server can share one `Arc<ForestArtifacts>`
/// across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestArtifacts {
    alpha: f64,
    trees: Vec<CascadeTree>,
    component_count: usize,
    /// `supports[i][v]` is the external-support term of local node `v`
    /// in tree `i`; always computed so cached artifacts can answer both
    /// support-enabled and support-ablated queries.
    supports: Vec<Vec<f64>>,
}

impl ForestArtifacts {
    /// The `alpha` the artifacts were extracted under.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The extracted cascade trees, in deterministic extraction order.
    pub fn trees(&self) -> &[CascadeTree] {
        &self.trees
    }

    /// Number of weakly-connected components in the snapshot.
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// Per-tree external-support tables, aligned with [`trees`](Self::trees).
    /// Crate-internal: the incremental session replays the query-stage DP
    /// tree by tree to regroup outcomes per component.
    pub(crate) fn supports(&self) -> &[Vec<f64>] {
        &self.supports
    }

    /// Approximate heap footprint in bytes, used by cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let tree_bytes: usize = self.trees.iter().map(|t| t.len() * 48).sum();
        let support_bytes: usize = self
            .supports
            .iter()
            .map(|s| s.len() * std::mem::size_of::<f64>())
            .sum();
        std::mem::size_of::<Self>() + tree_bytes + support_bytes
    }
}

impl Rid {
    /// Stage 1: extracts the per-snapshot artifacts (components,
    /// maximum-likelihood branching forest, external-support tables).
    ///
    /// This is the expensive half of the pipeline and depends only on
    /// the snapshot and `alpha` — never on `beta`, the objective, or
    /// the support toggle — so the result can be cached and reused
    /// across every query variant against the same snapshot.
    pub fn extract_stage(&self, snapshot: &InfectedNetwork) -> ForestArtifacts {
        let _span = extract_stage_histogram().span();
        let (trees, component_count) = extract_cascade_forest(snapshot, self.alpha());
        let supports: Vec<Vec<f64>> = trees
            .par_iter()
            .map(|tree| external_support(snapshot, tree, self.alpha()))
            .collect();
        ForestArtifacts {
            alpha: self.alpha(),
            trees,
            component_count,
            supports,
        }
    }

    /// Stage 2: answers a detection query from previously extracted
    /// artifacts, skipping extraction entirely.
    ///
    /// Bit-identical to [`detect`](crate::InitiatorDetector::detect) on
    /// the same snapshot: trees are solved in parallel but folded in
    /// extraction order, so the objective sum and the sorted initiator
    /// list do not depend on thread count or cache state.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::ArtifactMismatch`] if `artifacts` were
    /// extracted under a different `alpha` (compared via
    /// `f64::to_bits`); the branching structure depends on `alpha`, so
    /// answering anyway would silently change results.
    pub fn query_stage(
        &self,
        snapshot: &InfectedNetwork,
        artifacts: &ForestArtifacts,
    ) -> Result<Detection, RidError> {
        let _span = query_stage_histogram().span();
        if artifacts.alpha.to_bits() != self.alpha().to_bits() {
            return Err(RidError::ArtifactMismatch {
                expected_alpha: self.alpha(),
                artifact_alpha: artifacts.alpha,
            });
        }
        let outcomes: Vec<_> = artifacts
            .trees
            .par_iter()
            .zip(artifacts.supports.par_iter())
            .map(|(tree, support)| match self.objective() {
                RidObjective::ProbabilitySum => TreeDp::solve_probability_sum_with_support(
                    tree,
                    self.alpha(),
                    self.beta(),
                    self.external_support_enabled()
                        .then_some(support.as_slice()),
                ),
                RidObjective::LogLikelihood => {
                    TreeDp::solve_penalized(tree, self.alpha(), self.beta())
                }
            })
            .collect();
        let mut initiators = Vec::new();
        let mut objective = 0.0;
        for outcome in outcomes {
            objective += outcome.objective;
            for (sub_id, state) in outcome.initiators {
                let node = snapshot
                    .mapping()
                    .to_original(sub_id)
                    .expect("snapshot id maps to original network");
                initiators.push(DetectedInitiator {
                    node,
                    state: NodeState::from_sign(state),
                });
            }
        }
        let mut detection = Detection {
            initiators,
            component_count: artifacts.component_count,
            tree_count: artifacts.trees.len(),
            objective,
        };
        detection.sort();
        Ok(detection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::InitiatorDetector;
    use crate::forest_extraction::extraction_run_count;
    use isomit_diffusion::{DiffusionModel, Mfc, SeedSet};
    use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_snapshot() -> InfectedNetwork {
        let edges: Vec<Edge> = (0..14)
            .map(|i| {
                Edge::new(
                    NodeId(i),
                    NodeId(i + 1),
                    if i % 3 == 0 {
                        Sign::Negative
                    } else {
                        Sign::Positive
                    },
                    0.7,
                )
            })
            .collect();
        let g = SignedDigraph::from_edges(15, edges).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let cascade = Mfc::new(3.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(11))
            .unwrap();
        InfectedNetwork::from_cascade(&g, &cascade)
    }

    #[test]
    fn staged_equals_detect_bit_for_bit() {
        let snapshot = chain_snapshot();
        for beta in [0.0, 0.05, 0.1, 0.5, 2.0] {
            for support in [true, false] {
                let rid = Rid::new(3.0, beta).unwrap().with_external_support(support);
                let artifacts = rid.extract_stage(&snapshot);
                let staged = rid.query_stage(&snapshot, &artifacts).unwrap();
                let direct = rid.detect(&snapshot);
                assert_eq!(staged, direct, "beta {beta} support {support}");
                assert_eq!(staged.objective.to_bits(), direct.objective.to_bits());
            }
        }
    }

    #[test]
    fn staged_equals_detect_log_likelihood() {
        let snapshot = chain_snapshot();
        let rid = Rid::new(3.0, 0.3)
            .unwrap()
            .with_objective(RidObjective::LogLikelihood);
        let artifacts = rid.extract_stage(&snapshot);
        assert_eq!(
            rid.query_stage(&snapshot, &artifacts).unwrap(),
            rid.detect(&snapshot)
        );
    }

    #[test]
    fn alpha_mismatch_is_rejected() {
        let snapshot = chain_snapshot();
        let artifacts = Rid::new(3.0, 0.1).unwrap().extract_stage(&snapshot);
        let other = Rid::new(2.0, 0.1).unwrap();
        match other.query_stage(&snapshot, &artifacts) {
            Err(RidError::ArtifactMismatch {
                expected_alpha,
                artifact_alpha,
            }) => {
                assert_eq!(expected_alpha, 2.0);
                assert_eq!(artifact_alpha, 3.0);
            }
            other => panic!("expected ArtifactMismatch, got {other:?}"),
        }
    }

    /// Regression test for the §III-E3 model-selection cost: the whole
    /// β sweep (each β re-runs the per-tree DP and re-selects `k`) must
    /// extract the cascade forest exactly once per snapshot.
    #[test]
    fn model_selection_sweep_extracts_once_per_snapshot() {
        let snapshot = chain_snapshot();
        let extractor = Rid::new(3.0, 0.0).unwrap();
        let before = extraction_run_count();
        let artifacts = extractor.extract_stage(&snapshot);
        let mut lens = Vec::new();
        for i in 0..20 {
            let beta = f64::from(i) * 0.05;
            let rid = Rid::new(3.0, beta).unwrap();
            lens.push(rid.query_stage(&snapshot, &artifacts).unwrap().len());
        }
        assert_eq!(
            extraction_run_count() - before,
            1,
            "a 20-point beta sweep must extract exactly once"
        );
        // Sanity: the sweep actually exercised different selections.
        assert!(lens.first().unwrap() >= lens.last().unwrap());
    }

    #[test]
    fn detect_extracts_once_per_call() {
        let snapshot = chain_snapshot();
        let rid = Rid::new(3.0, 0.1).unwrap();
        let before = extraction_run_count();
        rid.detect(&snapshot);
        assert_eq!(extraction_run_count() - before, 1);
    }

    #[test]
    fn artifacts_report_nonzero_footprint() {
        let snapshot = chain_snapshot();
        let artifacts = Rid::new(3.0, 0.1).unwrap().extract_stage(&snapshot);
        assert!(artifacts.approx_bytes() > std::mem::size_of::<ForestArtifacts>());
        assert_eq!(artifacts.alpha(), 3.0);
        assert!(!artifacts.trees().is_empty());
        assert!(artifacts.component_count() >= 1);
    }
}
