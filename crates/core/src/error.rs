use std::fmt;

/// Errors produced while configuring RID detectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RidError {
    /// A detector parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name, e.g. `"beta"`.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for RidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RidError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
        }
    }
}

impl std::error::Error for RidError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = RidError::InvalidParameter {
            name: "beta",
            value: -1.0,
            constraint: "must be >= 0",
        };
        assert!(e.to_string().contains("beta = -1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RidError>();
    }
}
