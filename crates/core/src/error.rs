use std::fmt;

/// Errors produced while configuring RID detectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RidError {
    /// A detector parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name, e.g. `"beta"`.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A query stage was handed [`ForestArtifacts`](crate::ForestArtifacts)
    /// extracted under a different `alpha` than the detector's own. The
    /// branching structure depends on `alpha`, so answering from such
    /// artifacts would silently change results; the mismatch is rejected
    /// instead. Compared bit-for-bit (`f64::to_bits`).
    ArtifactMismatch {
        /// The detector's `alpha`.
        expected_alpha: f64,
        /// The `alpha` the artifacts were extracted under.
        artifact_alpha: f64,
    },
}

impl fmt::Display for RidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RidError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            RidError::ArtifactMismatch {
                expected_alpha,
                artifact_alpha,
            } => write!(
                f,
                "forest artifacts were extracted with alpha = {artifact_alpha} \
                 but the detector expects alpha = {expected_alpha}"
            ),
        }
    }
}

impl std::error::Error for RidError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = RidError::InvalidParameter {
            name: "beta",
            value: -1.0,
            constraint: "must be >= 0",
        };
        assert!(e.to_string().contains("beta = -1"));
    }

    #[test]
    fn display_names_both_alphas() {
        let e = RidError::ArtifactMismatch {
            expected_alpha: 3.0,
            artifact_alpha: 2.0,
        };
        let text = e.to_string();
        assert!(text.contains("alpha = 2"));
        assert!(text.contains("alpha = 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RidError>();
    }
}
