//! Incremental streaming RID: maintain a detection across typed deltas.
//!
//! One-shot [`Rid::detect`](crate::InitiatorDetector::detect) re-runs
//! the whole §III-E pipeline per snapshot, which is the wrong cost model
//! for the paper's monitoring scenario — an infection that *grows* while
//! an operator watches. [`IncrementalRid`] accepts typed [`RidDelta`]s
//! (infect a node, add a diffusion edge, flip an observed state),
//! tracks which weakly-connected components each delta dirties (a
//! growable [`isomit_forest::UnionFind`] handles merges), and on
//! [`answer`](IncrementalRid::answer) re-extracts **only the dirty
//! components** — with a best-in-edge screen that skips the
//! Chu-Liu/Edmonds branching entirely when a delta's new arcs lose
//! everywhere.
//!
//! The headline contract, pinned by the `incremental` tier-1 suite and
//! golden fixtures: replaying any valid delta sequence yields a
//! [`RidResult`] **bit-identical** (objective included) to a cold
//! [`Rid`] run on the final snapshot, at any rayon thread count.
//!
//! Why per-component answers compose bit-identically: the global CSR
//! stores edges sorted by `(src, dst)`, so a component's sub-snapshot
//! (members sorted by original id) is a monotone relabeling of the
//! global snapshot restricted to that component — the branching sees
//! the same arcs in the same order, the per-tree DP sees the same local
//! structure, and the final objective is folded over trees in ascending
//! root order exactly as [`Rid::query_stage`] does.

use crate::codec::RidResult;
use crate::detection::{DetectedInitiator, Detection};
use crate::dp::{DpOutcome, TreeDp};
use crate::error::RidError;
use crate::forest_extraction::{
    external_support, extract_cascade_forest, usable_arcs, CascadeTree,
};
use crate::rid::{Rid, RidConfig, RidObjective};
use crate::stages::ForestArtifacts;
use isomit_diffusion::InfectedNetwork;
use isomit_forest::{UnionFind, WeightedArc};
use isomit_graph::json::{JsonError, Value};
use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
use std::collections::BTreeMap;
use std::fmt;

/// One typed mutation of the observed infected network.
///
/// Node ids are *original-network* ids: the session renumbers internally
/// and answers in original ids, exactly like the one-shot pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RidDelta {
    /// A node newly enters the infected snapshot with an observed
    /// opinion ([`NodeState::Positive`], [`NodeState::Negative`]) or as
    /// an observed-but-unlabeled infection ([`NodeState::Unknown`]).
    Infect {
        /// Original-network id of the infected node.
        node: NodeId,
        /// Observed state; [`NodeState::Inactive`] is invalid (inactive
        /// nodes are by definition outside `G_I`).
        state: NodeState,
    },
    /// A diffusion link between two already-infected nodes becomes
    /// visible.
    AddEdge {
        /// Source (influencing) node, original id.
        src: NodeId,
        /// Destination (influenced) node, original id.
        dst: NodeId,
        /// Polarity of the link.
        sign: Sign,
        /// Activation weight in `[0, 1]`.
        weight: f64,
    },
    /// An already-infected node's observed state is corrected.
    FlipState {
        /// Original-network id of the node.
        node: NodeId,
        /// The new state; [`NodeState::Inactive`] is invalid.
        state: NodeState,
    },
}

impl RidDelta {
    /// Encodes the delta as a JSON object:
    /// `{"op": "infect", "node": 3, "state": "+"}`,
    /// `{"op": "add_edge", "src": 0, "dst": 3, "sign": "-", "weight": 0.5}`
    /// or `{"op": "flip_state", "node": 3, "state": "-"}`.
    pub fn to_json_value(&self) -> Value {
        match *self {
            RidDelta::Infect { node, state } => Value::Object(vec![
                ("op".into(), Value::String("infect".into())),
                ("node".into(), Value::Number(node.index() as f64)),
                ("state".into(), Value::String(state.as_symbol().into())),
            ]),
            RidDelta::AddEdge {
                src,
                dst,
                sign,
                weight,
            } => Value::Object(vec![
                ("op".into(), Value::String("add_edge".into())),
                ("src".into(), Value::Number(src.index() as f64)),
                ("dst".into(), Value::Number(dst.index() as f64)),
                ("sign".into(), Value::String(sign.to_string())),
                ("weight".into(), Value::Number(weight)),
            ]),
            RidDelta::FlipState { node, state } => Value::Object(vec![
                ("op".into(), Value::String("flip_state".into())),
                ("node".into(), Value::Number(node.index() as f64)),
                ("state".into(), Value::String(state.as_symbol().into())),
            ]),
        }
    }

    /// Decodes a delta from the encoding of
    /// [`to_json_value`](RidDelta::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on an unknown `op`, a missing field, or a
    /// field of the wrong type. Semantic validation (duplicate edges,
    /// uninfected endpoints, weight range) happens later, in
    /// [`IncrementalRid::apply`].
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let node_field = |key: &str| -> Result<NodeId, JsonError> {
            value
                .require(key)?
                .as_usize()
                .map(NodeId::from_index)
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a non-negative node id")))
        };
        let state_field = |key: &str| -> Result<NodeState, JsonError> {
            NodeState::from_symbol(
                value
                    .require(key)?
                    .as_str()
                    .ok_or_else(|| JsonError::new(format!("`{key}` must be a state symbol")))?,
            )
        };
        let op = value
            .require("op")?
            .as_str()
            .ok_or_else(|| JsonError::new("`op` must be a string"))?;
        match op {
            "infect" => Ok(RidDelta::Infect {
                node: node_field("node")?,
                state: state_field("state")?,
            }),
            "add_edge" => {
                let sign = match value
                    .require("sign")?
                    .as_str()
                    .ok_or_else(|| JsonError::new("`sign` must be a string"))?
                {
                    "+" => Sign::Positive,
                    "-" => Sign::Negative,
                    other => return Err(JsonError::new(format!("unknown sign `{other}`"))),
                };
                Ok(RidDelta::AddEdge {
                    src: node_field("src")?,
                    dst: node_field("dst")?,
                    sign,
                    weight: value
                        .require("weight")?
                        .as_f64()
                        .ok_or_else(|| JsonError::new("`weight` must be a number"))?,
                })
            }
            "flip_state" => Ok(RidDelta::FlipState {
                node: node_field("node")?,
                state: state_field("state")?,
            }),
            other => Err(JsonError::new(format!("unknown delta op `{other}`"))),
        }
    }
}

/// Why a [`RidDelta`] was rejected. Rejected deltas leave the session
/// exactly as it was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaError {
    /// `Infect` named a node that is already in the snapshot.
    AlreadyInfected(NodeId),
    /// A delta referenced a node that has not been infected yet.
    NotInfected(NodeId),
    /// `AddEdge` with `src == dst`.
    SelfLoop(NodeId),
    /// `AddEdge` duplicated an existing `(src, dst)` link.
    DuplicateEdge(NodeId, NodeId),
    /// `AddEdge` weight was non-finite or outside `[0, 1]`.
    InvalidWeight(f64),
    /// `Infect` or `FlipState` with [`NodeState::Inactive`].
    InactiveState(NodeId),
    /// `FlipState` to the state the node already holds.
    SameState(NodeId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::AlreadyInfected(n) => write!(f, "node {n} is already infected"),
            DeltaError::NotInfected(n) => write!(f, "node {n} is not infected"),
            DeltaError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            DeltaError::DuplicateEdge(s, d) => write!(f, "edge ({s}, {d}) already exists"),
            DeltaError::InvalidWeight(w) => write!(f, "weight {w} must be finite in [0, 1]"),
            DeltaError::InactiveState(n) => {
                write!(
                    f,
                    "node {n}: inactive nodes cannot appear in an infected network"
                )
            }
            DeltaError::SameState(n) => write!(f, "node {n} already holds that state"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// What one [`IncrementalRid::answer`] call actually did — the session's
/// cost telemetry, surfaced as `watch.*` counters by the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnswerOutcome {
    /// Components whose cached solution was stale and had to be
    /// recomputed (after merging, a merged component counts once).
    pub dirty_components: usize,
    /// Dirty components whose best-in-edge set was unchanged and
    /// acyclic, so the cached trees were reused without re-running the
    /// branching.
    pub screened_components: usize,
    /// `true` when the answer fell back to a full cold recompute
    /// because the deltas dirtied too much of the snapshot.
    pub full_recompute: bool,
}

/// Per-tree outcome in original-network ids: membership-independent, so
/// it survives everything except dirtying its own component.
#[derive(Debug, Clone)]
struct SolvedTree {
    /// Original id of the tree root (unique across the session, and the
    /// global fold order of [`Rid::query_stage`]).
    root: NodeId,
    objective: f64,
    initiators: Vec<DetectedInitiator>,
}

/// Best-in-edge screen state cached by the last full extraction of a
/// component. Valid only while the member set and their states are
/// unchanged (local ids are positions in the sorted member list).
#[derive(Debug, Clone)]
struct Screen {
    /// Per local node: the winning real in-arc `(src_local, weight
    /// bits)` under the level-0 "first strictly greater wins" rule, or
    /// `None` for nodes with no usable in-arc.
    signature: Vec<Option<(usize, u64)>>,
    /// Whether the winning-arc functional graph is acyclic — the
    /// precondition for the branching to be fully determined by the
    /// signature (no contraction levels).
    acyclic: bool,
    /// The trees of the last full extraction, in component-local ids.
    trees: Vec<CascadeTree>,
}

/// One weakly-connected component of the session.
#[derive(Debug, Clone, Default)]
struct ComponentState {
    /// Member slots, sorted by original id (the component-local
    /// numbering: local id = position in this list).
    members: Vec<usize>,
    /// `true` when `solved` no longer reflects the session state.
    dirty: bool,
    /// Screen cache; dropped whenever members or states change.
    screen: Option<Screen>,
    /// Per-tree outcomes of the last solve.
    solved: Option<Vec<SolvedTree>>,
}

/// A streaming RID session: applies [`RidDelta`]s and answers initiator
/// queries incrementally, bit-identical to a cold recompute.
///
/// # Examples
///
/// ```
/// use isomit_core::{IncrementalRid, InitiatorDetector, Rid, RidConfig, RidDelta};
/// use isomit_graph::{NodeId, NodeState, Sign};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = RidConfig::default();
/// let mut session = IncrementalRid::new(config)?;
/// session.apply(&RidDelta::Infect { node: NodeId(7), state: NodeState::Positive })?;
/// session.apply(&RidDelta::Infect { node: NodeId(3), state: NodeState::Negative })?;
/// session.apply(&RidDelta::AddEdge {
///     src: NodeId(7),
///     dst: NodeId(3),
///     sign: Sign::Negative,
///     weight: 0.8,
/// })?;
/// let incremental = session.answer();
///
/// // Bit-identical to a cold run over the final snapshot.
/// let cold = Rid::from_config(config)?.detect(&session.snapshot());
/// assert_eq!(incremental.detection, cold);
/// // Under the default α both nodes are kept as initiators (the α
/// // discount makes single-edge propagation unattractive), reported
/// // in ascending original-id order.
/// assert_eq!(incremental.detection.initiators[0].node, NodeId(3));
/// assert_eq!(incremental.detection.initiators[1].node, NodeId(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IncrementalRid {
    rid: Rid,
    config: RidConfig,
    /// Original id → session slot.
    index_of: BTreeMap<NodeId, usize>,
    /// Session slot → original id (slots are handed out in infection
    /// order and never reused).
    originals: Vec<NodeId>,
    /// Session slot → observed state.
    states: Vec<NodeState>,
    /// Session slot → out-links `(dst slot, sign, weight)`.
    out_edges: Vec<Vec<(usize, Sign, f64)>>,
    uf: UnionFind,
    /// Component root slot (union-find representative) → state.
    components: BTreeMap<usize, ComponentState>,
    deltas_applied: u64,
    fallbacks: u64,
    /// Snapshot + artifacts of the last full-recompute fallback, kept
    /// for the serving engine to adopt into its artifact cache.
    pending_artifacts: Option<(InfectedNetwork, ForestArtifacts)>,
}

impl IncrementalRid {
    /// Opens an empty session under the given detector configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RidError`] if the configuration is invalid (see
    /// [`Rid::from_config`]).
    pub fn new(config: RidConfig) -> Result<Self, RidError> {
        Ok(IncrementalRid {
            rid: Rid::from_config(config)?,
            config,
            index_of: BTreeMap::new(),
            originals: Vec::new(),
            states: Vec::new(),
            out_edges: Vec::new(),
            uf: UnionFind::new(0),
            components: BTreeMap::new(),
            deltas_applied: 0,
            fallbacks: 0,
            pending_artifacts: None,
        })
    }

    /// The configuration the session answers under.
    pub fn config(&self) -> RidConfig {
        self.config
    }

    /// Number of infected nodes observed so far.
    pub fn node_count(&self) -> usize {
        self.originals.len()
    }

    /// Number of diffusion links observed so far.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Number of weakly-connected components of the current snapshot.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Total deltas successfully applied.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Total answers that fell back to a full cold recompute.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Applies one delta, dirtying exactly the affected components.
    ///
    /// Validation happens before any mutation: a rejected delta leaves
    /// the session untouched, so a streaming caller can report the
    /// error and keep going.
    ///
    /// # Errors
    ///
    /// Returns a [`DeltaError`] naming the violated precondition — see
    /// the variants for the full taxonomy.
    pub fn apply(&mut self, delta: &RidDelta) -> Result<(), DeltaError> {
        match *delta {
            RidDelta::Infect { node, state } => {
                if !state.is_active() && !state.is_unknown() {
                    return Err(DeltaError::InactiveState(node));
                }
                if self.index_of.contains_key(&node) {
                    return Err(DeltaError::AlreadyInfected(node));
                }
                let slot = self.originals.len();
                self.index_of.insert(node, slot);
                self.originals.push(node);
                self.states.push(state);
                self.out_edges.push(Vec::new());
                let uf_slot = self.uf.push();
                debug_assert_eq!(uf_slot, slot, "union-find and slot arrays grow in lockstep");
                self.components.insert(
                    slot,
                    ComponentState {
                        members: vec![slot],
                        dirty: true,
                        screen: None,
                        solved: None,
                    },
                );
            }
            RidDelta::AddEdge {
                src,
                dst,
                sign,
                weight,
            } => {
                if src == dst {
                    return Err(DeltaError::SelfLoop(src));
                }
                if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
                    return Err(DeltaError::InvalidWeight(weight));
                }
                let s = *self
                    .index_of
                    .get(&src)
                    .ok_or(DeltaError::NotInfected(src))?;
                let d = *self
                    .index_of
                    .get(&dst)
                    .ok_or(DeltaError::NotInfected(dst))?;
                let out = self
                    .out_edges
                    .get_mut(s)
                    .expect("index_of slots index the adjacency array");
                if out.iter().any(|&(to, _, _)| to == d) {
                    return Err(DeltaError::DuplicateEdge(src, dst));
                }
                out.push((d, sign, weight));
                let (ra, rb) = (self.uf.find(s), self.uf.find(d));
                if ra == rb {
                    let comp = self
                        .components
                        .get_mut(&ra)
                        .expect("every union-find root has a component entry");
                    comp.dirty = true;
                } else {
                    self.uf.union(ra, rb);
                    let merged_root = self.uf.find(s);
                    let a = self
                        .components
                        .remove(&ra)
                        .expect("every union-find root has a component entry");
                    let b = self
                        .components
                        .remove(&rb)
                        .expect("every union-find root has a component entry");
                    self.components.insert(
                        merged_root,
                        ComponentState {
                            members: merge_by_original(&self.originals, a.members, b.members),
                            dirty: true,
                            screen: None,
                            solved: None,
                        },
                    );
                }
            }
            RidDelta::FlipState { node, state } => {
                if !state.is_active() && !state.is_unknown() {
                    return Err(DeltaError::InactiveState(node));
                }
                let slot = *self
                    .index_of
                    .get(&node)
                    .ok_or(DeltaError::NotInfected(node))?;
                let held = self
                    .states
                    .get_mut(slot)
                    .expect("index_of slots index the state array");
                if *held == state {
                    return Err(DeltaError::SameState(node));
                }
                *held = state;
                let root = self.uf.find(slot);
                let comp = self
                    .components
                    .get_mut(&root)
                    .expect("every union-find root has a component entry");
                comp.dirty = true;
                // The screen's signature depends on endpoint states
                // (flip discounting), so it cannot vouch for reuse.
                comp.screen = None;
            }
        }
        self.deltas_applied += 1;
        Ok(())
    }

    /// Materializes the current snapshot, with nodes numbered densely in
    /// ascending original-id order — exactly the numbering
    /// [`InfectedNetwork::from_states`] would produce for the same
    /// infection, so a cold detector run on this snapshot is the
    /// reference the incremental answer is bit-identical to.
    pub fn snapshot(&self) -> InfectedNetwork {
        let slots: Vec<usize> = self.index_of.values().copied().collect();
        self.snapshot_of(&slots)
    }

    /// Answers the initiator query for the current snapshot,
    /// recomputing only what the deltas since the previous answer
    /// dirtied. See [`answer_detailed`](IncrementalRid::answer_detailed)
    /// for the cost breakdown.
    pub fn answer(&mut self) -> RidResult {
        self.answer_detailed().0
    }

    /// [`answer`](IncrementalRid::answer), plus what the call actually
    /// cost: how many components were recomputed, how many were
    /// screened, and whether the session fell back to a cold recompute.
    pub fn answer_detailed(&mut self) -> (RidResult, AnswerOutcome) {
        let mut outcome = AnswerOutcome::default();
        let dirty_roots: Vec<usize> = self
            .components
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&root, _)| root)
            .collect();
        outcome.dirty_components = dirty_roots.len();
        let dirty_members: usize = dirty_roots
            .iter()
            .map(|root| {
                self.components
                    .get(root)
                    .expect("dirty roots are live component roots")
                    .members
                    .len()
            })
            .sum();
        // Safe fallback: when the deltas dirtied most of the snapshot,
        // per-component bookkeeping only adds overhead over the
        // optimized whole-snapshot extraction — recompute cold.
        if !self.originals.is_empty() && 2 * dirty_members > self.originals.len() {
            outcome.full_recompute = true;
            self.full_recompute();
        } else {
            for root in dirty_roots {
                if self.solve_component(root) {
                    outcome.screened_components += 1;
                }
            }
        }
        (self.assemble(), outcome)
    }

    /// Takes the snapshot and forest artifacts produced by the most
    /// recent full-recompute fallback, if one has happened since the
    /// last take. The serving engine adopts them into its artifact
    /// cache (evicting the entry they supersede) so a later one-shot
    /// `rid` of the same snapshot is a cache hit.
    pub fn take_fallback_artifacts(&mut self) -> Option<(InfectedNetwork, ForestArtifacts)> {
        self.pending_artifacts.take()
    }

    /// Cold whole-snapshot recompute; repopulates every component's
    /// per-tree outcomes (original-id based, so membership-independent)
    /// and clears all dirty flags. Screens are dropped: the next
    /// incremental solve of a component re-extracts it.
    fn full_recompute(&mut self) {
        self.fallbacks += 1;
        let snapshot = self.snapshot();
        let artifacts = self.rid.extract_stage(&snapshot);
        let mut per_component: BTreeMap<usize, Vec<SolvedTree>> = BTreeMap::new();
        for (tree, support) in artifacts.trees().iter().zip(artifacts.supports()) {
            let solved = self.solve_tree(&snapshot, tree, support);
            let root_slot = *self
                .index_of
                .get(&solved.root)
                .expect("tree roots are infected session nodes");
            let comp_root = self.uf.find(root_slot);
            per_component.entry(comp_root).or_default().push(solved);
        }
        for (&root, comp) in &mut self.components {
            comp.solved = Some(per_component.remove(&root).unwrap_or_default());
            comp.dirty = false;
            comp.screen = None;
        }
        debug_assert!(
            per_component.is_empty(),
            "every extracted tree belongs to a tracked component"
        );
        self.pending_artifacts = Some((snapshot, artifacts));
    }

    /// Recomputes one dirty component; returns `true` if the best-in
    /// screen allowed reusing the cached trees without re-running the
    /// branching.
    fn solve_component(&mut self, root: usize) -> bool {
        let comp = self
            .components
            .get(&root)
            .expect("solve_component called with a live component root");
        let members = comp.members.clone();
        let sub = self.snapshot_of(&members);
        let arcs = usable_arcs(&sub, self.rid.alpha());
        let (signature, acyclic) = best_in_signature(sub.node_count(), &arcs);
        // Screen: if every arc the deltas added since the last
        // extraction *loses* its destination's best-in contest, the
        // level-0 best-in forest — and, when it is acyclic, the whole
        // branching — is unchanged, so the cached trees stand. Supports
        // and the DP still rerun: losing arcs change the noisy-or
        // external support of their destinations.
        let comp = self
            .components
            .get_mut(&root)
            .expect("solve_component called with a live component root");
        let (screened, trees) = match comp.screen.take() {
            Some(screen) if screen.acyclic && screen.signature == signature => (true, screen.trees),
            _ => (false, extract_cascade_forest(&sub, self.rid.alpha()).0),
        };
        let mut solved = Vec::with_capacity(trees.len());
        for tree in &trees {
            let support = external_support(&sub, tree, self.rid.alpha());
            solved.push(self.solve_tree(&sub, tree, &support));
        }
        let comp = self
            .components
            .get_mut(&root)
            .expect("solve_component called with a live component root");
        comp.solved = Some(solved);
        comp.screen = Some(Screen {
            signature,
            acyclic,
            trees,
        });
        comp.dirty = false;
        screened
    }

    /// Runs the query-stage DP on one tree, mirroring
    /// [`Rid::query_stage`] exactly, and translates the outcome to
    /// original ids.
    fn solve_tree(
        &self,
        snapshot: &InfectedNetwork,
        tree: &CascadeTree,
        support: &[f64],
    ) -> SolvedTree {
        let outcome: DpOutcome = match self.rid.objective() {
            RidObjective::ProbabilitySum => TreeDp::solve_probability_sum_with_support(
                tree,
                self.rid.alpha(),
                self.rid.beta(),
                self.rid.external_support_enabled().then_some(support),
            ),
            RidObjective::LogLikelihood => {
                TreeDp::solve_penalized(tree, self.rid.alpha(), self.rid.beta())
            }
        };
        let to_original = |sub_id: NodeId| {
            snapshot
                .mapping()
                .to_original(sub_id)
                .expect("snapshot id maps to original network")
        };
        SolvedTree {
            root: to_original(tree.snapshot_id(tree.root())),
            objective: outcome.objective,
            initiators: outcome
                .initiators
                .into_iter()
                .map(|(sub_id, state)| DetectedInitiator {
                    node: to_original(sub_id),
                    state: NodeState::from_sign(state),
                })
                .collect(),
        }
    }

    /// Assembles the global [`RidResult`] from the (now all-clean)
    /// per-component outcomes. Trees are folded in ascending
    /// original-root order — the same order a cold run folds them in
    /// (tree roots ascend with snapshot ids, which ascend with original
    /// ids) — so the objective sum is bit-identical.
    fn assemble(&self) -> RidResult {
        let mut trees: Vec<&SolvedTree> = self
            .components
            .values()
            .flat_map(|c| {
                c.solved
                    .as_deref()
                    .expect("answer solved every dirty component")
            })
            .collect();
        trees.sort_by_key(|t| t.root);
        let mut objective = 0.0;
        let mut initiators = Vec::new();
        for tree in &trees {
            objective += tree.objective;
            initiators.extend(tree.initiators.iter().cloned());
        }
        let mut detection = Detection {
            initiators,
            component_count: self.components.len(),
            tree_count: trees.len(),
            objective,
        };
        detection.sort();
        RidResult {
            config: self.config,
            detection,
        }
    }

    /// Builds the sub-snapshot induced by `slots` (which must be sorted
    /// by original id and closed under session edges), numbering nodes
    /// by position.
    fn snapshot_of(&self, slots: &[usize]) -> InfectedNetwork {
        let local_of: BTreeMap<usize, usize> = slots
            .iter()
            .enumerate()
            .map(|(local, &slot)| (slot, local))
            .collect();
        let mut edges = Vec::new();
        for (local, &slot) in slots.iter().enumerate() {
            let out = self
                .out_edges
                .get(slot)
                .expect("member slots index the adjacency array");
            for &(dst_slot, sign, weight) in out {
                let dst_local = *local_of
                    .get(&dst_slot)
                    .expect("session edges never cross component boundaries");
                edges.push(Edge::new(
                    NodeId::from_index(local),
                    NodeId::from_index(dst_local),
                    sign,
                    weight,
                ));
            }
        }
        let graph = SignedDigraph::from_edge_vec(slots.len(), edges)
            .expect("session deltas are validated on apply");
        let states = slots
            .iter()
            .map(|&slot| {
                *self
                    .states
                    .get(slot)
                    .expect("member slots index the state array")
            })
            .collect();
        let original_ids = slots
            .iter()
            .map(|&slot| {
                *self
                    .originals
                    .get(slot)
                    .expect("member slots index the originals array")
            })
            .collect();
        InfectedNetwork::from_subgraph_parts(graph, states, original_ids)
            .expect("session state forms a valid snapshot")
    }
}

/// Merges two member lists, keeping them sorted by original id.
fn merge_by_original(originals: &[NodeId], a: Vec<usize>, b: Vec<usize>) -> Vec<usize> {
    let key = |slot: usize| {
        *originals
            .get(slot)
            .expect("member slots index the originals array")
    };
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    while let (Some(&x), Some(&y)) = (ia.peek(), ib.peek()) {
        if key(x) < key(y) {
            merged.push(x);
            ia.next();
        } else {
            merged.push(y);
            ib.next();
        }
    }
    merged.extend(ia);
    merged.extend(ib);
    merged
}

/// Computes the level-0 best-in signature of a component's usable arcs:
/// per destination, the winning real arc under the branching's "first
/// strictly greater wins" rule (virtual root edges never beat a real
/// arc), plus whether the winning-arc functional graph is acyclic.
///
/// When it is acyclic, Chu-Liu/Edmonds terminates at level 0 and the
/// branching *is* this signature — which is what makes signature
/// equality a sound screen for tree reuse. Acyclicity itself is a
/// function of the signature, so equal signatures always agree on it.
fn best_in_signature(n: usize, arcs: &[WeightedArc]) -> (Vec<Option<(usize, u64)>>, bool) {
    let mut best: Vec<Option<(usize, f64)>> = vec![None; n];
    for arc in arcs {
        let incumbent = best
            .get_mut(arc.dst)
            .expect("arc endpoints lie inside the component");
        let wins = match *incumbent {
            None => true,
            Some((_, held)) => arc.weight > held,
        };
        if wins {
            *incumbent = Some((arc.src, arc.weight));
        }
    }
    // Cycle check over the parent-pointer graph dst -> winning src.
    // 0 = unvisited, 1 = on the current walk, 2 = known cycle-free.
    let mut color = vec![0u8; n];
    let mut acyclic = true;
    let mut path = Vec::new();
    for start in 0..n {
        if color.get(start).copied() != Some(0) {
            continue;
        }
        let mut cur = start;
        loop {
            let mark = color
                .get_mut(cur)
                .expect("the parent-pointer walk stays inside the component");
            match *mark {
                1 => {
                    acyclic = false;
                    break;
                }
                2 => break,
                _ => {}
            }
            *mark = 1;
            path.push(cur);
            match best.get(cur).copied().flatten() {
                Some((src, _)) => cur = src,
                None => break,
            }
        }
        for &v in &path {
            *color
                .get_mut(v)
                .expect("walked vertices are component slots") = 2;
        }
        path.clear();
        if !acyclic {
            break;
        }
    }
    let signature = best
        .into_iter()
        .map(|slot| slot.map(|(src, weight)| (src, weight.to_bits())))
        .collect();
    (signature, acyclic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::InitiatorDetector;
    use crate::forest_extraction::extraction_run_count;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn infect(node: u32, state: NodeState) -> RidDelta {
        RidDelta::Infect {
            node: NodeId(node),
            state,
        }
    }

    fn edge(src: u32, dst: u32, sign: Sign, weight: f64) -> RidDelta {
        RidDelta::AddEdge {
            src: NodeId(src),
            dst: NodeId(dst),
            sign,
            weight,
        }
    }

    fn session() -> IncrementalRid {
        IncrementalRid::new(RidConfig::default()).unwrap()
    }

    /// Replays a random but valid delta stream, checking every prefix
    /// answer against a cold run of the materialized prefix snapshot.
    fn replay_matches_cold(seed: u64, deltas: usize, config: RidConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = IncrementalRid::new(config).unwrap();
        let rid = Rid::from_config(config).unwrap();
        let mut infected: Vec<u32> = Vec::new();
        let weights = [0.0, 0.25, 0.5, 0.75, 1.0];
        let states = [NodeState::Positive, NodeState::Negative, NodeState::Unknown];
        let mut applied = 0;
        while applied < deltas {
            let roll: f64 = rng.gen_range(0.0..1.0);
            let delta = if infected.len() < 2 || roll < 0.4 {
                let node = rng.gen_range(0..500u32);
                infect(node, states[rng.gen_range(0..3usize)])
            } else if roll < 0.85 {
                let src = infected[rng.gen_range(0..infected.len())];
                let dst = infected[rng.gen_range(0..infected.len())];
                let sign = if rng.gen_bool(0.5) {
                    Sign::Positive
                } else {
                    Sign::Negative
                };
                edge(src, dst, sign, weights[rng.gen_range(0..weights.len())])
            } else {
                let node = infected[rng.gen_range(0..infected.len())];
                RidDelta::FlipState {
                    node: NodeId(node),
                    state: states[rng.gen_range(0..3usize)],
                }
            };
            match s.apply(&delta) {
                Ok(()) => {
                    if let RidDelta::Infect { node, .. } = delta {
                        infected.push(node.0);
                    }
                    applied += 1;
                }
                Err(_) => continue,
            }
            let incremental = s.answer();
            let cold = rid.detect(&s.snapshot());
            assert_eq!(incremental.detection, cold, "seed {seed} delta {applied}");
            assert_eq!(
                incremental.detection.objective.to_bits(),
                cold.objective.to_bits(),
                "seed {seed} delta {applied}: objective not bit-identical"
            );
        }
    }

    #[test]
    fn replay_equals_cold_across_seeds() {
        for seed in 0..8 {
            replay_matches_cold(seed, 40, RidConfig::default());
        }
    }

    #[test]
    fn replay_equals_cold_log_likelihood_objective() {
        let config = RidConfig {
            beta: 0.3,
            objective: RidObjective::LogLikelihood,
            ..RidConfig::default()
        };
        replay_matches_cold(99, 30, config);
    }

    #[test]
    fn replay_equals_cold_without_external_support() {
        let config = RidConfig {
            external_support: false,
            ..RidConfig::default()
        };
        replay_matches_cold(7, 30, config);
    }

    #[test]
    fn empty_session_answers_an_empty_detection() {
        let mut s = session();
        let result = s.answer();
        assert!(result.detection.initiators.is_empty());
        assert_eq!(result.detection.component_count, 0);
        assert_eq!(result.detection.tree_count, 0);
        assert_eq!(result.detection.objective, 0.0);
    }

    #[test]
    fn delta_validation_taxonomy() {
        let mut s = session();
        assert_eq!(
            s.apply(&infect(1, NodeState::Inactive)),
            Err(DeltaError::InactiveState(NodeId(1)))
        );
        s.apply(&infect(1, NodeState::Positive)).unwrap();
        assert_eq!(
            s.apply(&infect(1, NodeState::Negative)),
            Err(DeltaError::AlreadyInfected(NodeId(1)))
        );
        assert_eq!(
            s.apply(&edge(1, 1, Sign::Positive, 0.5)),
            Err(DeltaError::SelfLoop(NodeId(1)))
        );
        assert_eq!(
            s.apply(&edge(1, 2, Sign::Positive, 0.5)),
            Err(DeltaError::NotInfected(NodeId(2)))
        );
        s.apply(&infect(2, NodeState::Positive)).unwrap();
        assert_eq!(
            s.apply(&edge(1, 2, Sign::Positive, 1.5)),
            Err(DeltaError::InvalidWeight(1.5))
        );
        s.apply(&edge(1, 2, Sign::Positive, 0.5)).unwrap();
        assert_eq!(
            s.apply(&edge(1, 2, Sign::Negative, 0.25)),
            Err(DeltaError::DuplicateEdge(NodeId(1), NodeId(2)))
        );
        assert_eq!(
            s.apply(&RidDelta::FlipState {
                node: NodeId(2),
                state: NodeState::Positive
            }),
            Err(DeltaError::SameState(NodeId(2)))
        );
        assert_eq!(
            s.apply(&RidDelta::FlipState {
                node: NodeId(9),
                state: NodeState::Positive
            }),
            Err(DeltaError::NotInfected(NodeId(9)))
        );
        // Failed deltas left the session consistent.
        assert_eq!(s.deltas_applied(), 3);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.edge_count(), 1);
        let cold = Rid::from_config(s.config()).unwrap().detect(&s.snapshot());
        assert_eq!(s.answer().detection, cold);
    }

    #[test]
    fn clean_components_are_not_reextracted() {
        let mut s = session();
        for node in 0..10 {
            s.apply(&infect(node, NodeState::Positive)).unwrap();
        }
        s.apply(&edge(0, 1, Sign::Positive, 0.5)).unwrap();
        s.answer();
        let before = extraction_run_count();
        // Dirty one far-away singleton; only that component recomputes.
        s.apply(&edge(8, 9, Sign::Positive, 0.5)).unwrap();
        let (_, outcome) = s.answer_detailed();
        assert_eq!(outcome.dirty_components, 1);
        assert!(!outcome.full_recompute);
        assert_eq!(
            extraction_run_count() - before,
            1,
            "only the dirtied component may be extracted"
        );
        // An untouched snapshot answers from cache, extracting nothing.
        let before = extraction_run_count();
        let (_, outcome) = s.answer_detailed();
        assert_eq!(outcome.dirty_components, 0);
        assert_eq!(extraction_run_count() - before, 0);
    }

    #[test]
    fn losing_edge_is_screened_without_branching_rerun() {
        let mut s = session();
        for node in 0..12 {
            s.apply(&infect(node, NodeState::Positive)).unwrap();
        }
        // Strong chain 0 -> 1 -> 2; weaker cross edges will lose.
        s.apply(&edge(0, 1, Sign::Positive, 0.9)).unwrap();
        s.apply(&edge(1, 2, Sign::Positive, 0.9)).unwrap();
        s.apply(&edge(3, 1, Sign::Positive, 0.8)).unwrap();
        s.answer(); // All-dirty: falls back, leaving no screen caches.
        s.apply(&edge(0, 3, Sign::Positive, 0.2)).unwrap();
        s.answer(); // Full component extraction populates the screen.
        let before = extraction_run_count();
        // Boosted to 0.3, strictly below node 2's incumbent best-in.
        s.apply(&edge(3, 2, Sign::Positive, 0.1)).unwrap();
        let (result, outcome) = s.answer_detailed();
        assert_eq!(outcome.dirty_components, 1);
        assert_eq!(
            outcome.screened_components, 1,
            "a strictly-losing arc must pass the best-in screen"
        );
        assert_eq!(
            extraction_run_count() - before,
            0,
            "screened components skip the branching entirely"
        );
        let cold = Rid::from_config(s.config()).unwrap().detect(&s.snapshot());
        assert_eq!(result.detection, cold);
    }

    #[test]
    fn massive_dirtying_falls_back_to_cold_recompute() {
        let mut s = session();
        for node in 0..8 {
            s.apply(&infect(node, NodeState::Positive)).unwrap();
        }
        let (result, outcome) = s.answer_detailed();
        assert!(outcome.full_recompute, "all-dirty session must fall back");
        assert_eq!(s.fallbacks(), 1);
        let (snapshot, artifacts) = s
            .take_fallback_artifacts()
            .expect("fallback leaves artifacts to adopt");
        assert_eq!(snapshot.node_count(), 8);
        assert_eq!(artifacts.trees().len(), 8);
        assert!(s.take_fallback_artifacts().is_none(), "take is one-shot");
        let cold = Rid::from_config(s.config()).unwrap().detect(&snapshot);
        assert_eq!(result.detection, cold);
        // The fallback repopulated per-component caches: the next
        // answer after a small delta is incremental again.
        s.apply(&edge(0, 1, Sign::Positive, 0.5)).unwrap();
        let (result, outcome) = s.answer_detailed();
        assert!(!outcome.full_recompute);
        assert_eq!(outcome.dirty_components, 1);
        let cold = Rid::from_config(s.config()).unwrap().detect(&s.snapshot());
        assert_eq!(result.detection, cold);
    }

    #[test]
    fn component_merge_across_earlier_answers() {
        let mut s = session();
        let rid = Rid::from_config(s.config()).unwrap();
        s.apply(&infect(10, NodeState::Positive)).unwrap();
        s.apply(&infect(20, NodeState::Negative)).unwrap();
        s.apply(&infect(30, NodeState::Positive)).unwrap();
        s.answer();
        s.apply(&edge(10, 20, Sign::Negative, 0.7)).unwrap();
        assert_eq!(s.component_count(), 2);
        assert_eq!(s.answer().detection, rid.detect(&s.snapshot()));
        s.apply(&edge(30, 20, Sign::Positive, 0.9)).unwrap();
        assert_eq!(s.component_count(), 1);
        assert_eq!(s.answer().detection, rid.detect(&s.snapshot()));
    }

    #[test]
    fn delta_json_round_trips() {
        let deltas = [
            infect(3, NodeState::Positive),
            infect(4, NodeState::Unknown),
            edge(0, 3, Sign::Negative, 0.125),
            RidDelta::FlipState {
                node: NodeId(3),
                state: NodeState::Negative,
            },
        ];
        for delta in deltas {
            let back = RidDelta::from_json_value(&delta.to_json_value()).unwrap();
            assert_eq!(back, delta);
        }
        for bad in [
            "{\"op\": \"bogus\"}",
            "{\"op\": \"infect\", \"node\": 1}",
            "{\"op\": \"add_edge\", \"src\": 0, \"dst\": 1, \"sign\": \"*\", \"weight\": 0.5}",
            "{\"node\": 1, \"state\": \"+\"}",
        ] {
            let value = Value::parse(bad).unwrap();
            assert!(RidDelta::from_json_value(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn delta_errors_render_their_context() {
        assert_eq!(
            DeltaError::DuplicateEdge(NodeId(1), NodeId(2)).to_string(),
            "edge (n1, n2) already exists"
        );
        assert!(DeltaError::InvalidWeight(2.0).to_string().contains("2"));
    }
}
