//! Exact (exponential-time) solvers for the ISOMIT problem, used to
//! validate the RID heuristic on small instances and to exercise the
//! §III-C NP-hardness apparatus.
//!
//! The key observation: under the §III-B likelihood,
//! `P(G_I | I, S) = 1` holds **iff every infected node is reachable from
//! an initiator through a chain of probability-1, sign-consistent
//! diffusion links** (a path's contribution is `Π g` and the noisy-or
//! over paths reaches 1 only if some path has product 1), and every
//! initiator's assumed state matches its observation. These routines work
//! with that deterministic-reachability characterization, which is exact
//! and avoids enumerating paths.

use crate::likelihood::g_factor;
use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState, Sign};
use std::collections::VecDeque;

/// Hard cap on nodes for subset-enumeration solvers.
pub const EXACT_SEARCH_LIMIT: usize = 20;

/// `true` iff seeding `initiators` (with the given states) infects the
/// whole snapshot **with probability 1** under MFC with boosting
/// `alpha` — the `P(G_I | I, S) = 1` condition of Lemma 3.1.
///
/// # Panics
///
/// Panics if any snapshot state is [`NodeState::Unknown`] (the
/// deterministic characterization needs fully observed states), if an
/// initiator is out of bounds, or if `alpha < 1`.
///
/// # Examples
///
/// ```
/// use isomit_core::exact::certainly_infected;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // w = 0.5 boosted by alpha = 3 saturates at probability 1, so the
/// // chain 0 -> 1 is certainly infected from node 0 — but not from 1,
/// // which leaves node 0 unexplained.
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
/// )?;
/// let snap = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 2]);
/// assert!(certainly_infected(&snap, 3.0, &[(NodeId(0), Sign::Positive)]));
/// assert!(!certainly_infected(&snap, 3.0, &[(NodeId(1), Sign::Positive)]));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn certainly_infected(
    snapshot: &InfectedNetwork,
    alpha: f64,
    initiators: &[(NodeId, Sign)],
) -> bool {
    assert!(alpha >= 1.0, "alpha {alpha} must be >= 1");
    assert!(
        snapshot.states().iter().all(|s| !s.is_unknown()),
        "certainly_infected requires fully observed states"
    );
    let g = snapshot.graph();
    let mut reached = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    for &(node, state) in initiators {
        assert!(g.contains(node), "initiator {node} out of bounds");
        // An initiator whose assumed state contradicts the snapshot can
        // never produce it with probability 1.
        if snapshot.state(node) != NodeState::from_sign(state) {
            return false;
        }
        if !reached[node.index()] {
            reached[node.index()] = true;
            queue.push_back(node);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in g.out_edges(u) {
            if reached[e.dst.index()] {
                continue;
            }
            let f = g_factor(
                alpha,
                snapshot.state(u),
                e.sign,
                snapshot.state(e.dst),
                e.weight,
            );
            if f >= 1.0 {
                reached[e.dst.index()] = true;
                queue.push_back(e.dst);
            }
        }
    }
    reached.iter().all(|&r| r)
}

/// Finds a **minimum** initiator set achieving `P(G_I | I, S) = 1`, by
/// brute-force subset enumeration in increasing cardinality — the exact
/// solution of the NP-hard problem of Lemma 3.1.
///
/// Returns `None` if even seeding every node fails (impossible when
/// states are fully observed, since seeding everything trivially matches
/// the snapshot).
///
/// # Panics
///
/// Panics if the snapshot exceeds [`EXACT_SEARCH_LIMIT`] nodes or
/// contains unknown states, or if `alpha < 1`.
///
/// # Examples
///
/// ```
/// use isomit_core::exact::minimum_certain_initiators;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // Two disconnected deterministic chains need one seed each.
/// let g = SignedDigraph::from_edges(
///     4,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.5),
///     ],
/// )?;
/// let snap = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 4]);
/// let seeds = minimum_certain_initiators(&snap, 3.0).expect("solvable");
/// assert_eq!(seeds.len(), 2);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn minimum_certain_initiators(
    snapshot: &InfectedNetwork,
    alpha: f64,
) -> Option<Vec<(NodeId, Sign)>> {
    let n = snapshot.node_count();
    assert!(
        n <= EXACT_SEARCH_LIMIT,
        "exact search limited to {EXACT_SEARCH_LIMIT} nodes, got {n}"
    );
    if n == 0 {
        return Some(Vec::new());
    }
    // Initiator states are forced to the observed states (anything else
    // yields probability 0), so the search is over node subsets only.
    let as_seed = |v: usize| -> (NodeId, Sign) {
        let id = NodeId::from_index(v);
        (
            id,
            snapshot
                .state(id)
                .sign()
                .expect("states are fully observed"),
        )
    };
    for size in 1..=n {
        // Enumerate subsets of the given size via bitmasks.
        let mut found: Option<Vec<(NodeId, Sign)>> = None;
        for mask in 0u32..(1u32 << n) {
            if mask.count_ones() as usize != size {
                continue;
            }
            let seeds: Vec<(NodeId, Sign)> = (0..n)
                .filter(|v| mask & (1 << v) != 0)
                .map(as_seed)
                .collect();
            if certainly_infected(snapshot, alpha, &seeds) {
                found = Some(seeds);
                break;
            }
        }
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Exhaustively maximizes the exact §III-B snapshot likelihood over all
/// initiator sets of size at most `max_size` (states forced to the
/// observations). Used to validate RID's heuristic choices on tiny
/// instances.
///
/// Returns `(best initiator set, best likelihood)`.
///
/// # Panics
///
/// Panics under the same limits as
/// [`likelihood::snapshot_likelihood`](crate::likelihood::snapshot_likelihood)
/// plus [`EXACT_SEARCH_LIMIT`], and if states contain unknowns.
///
/// # Examples
///
/// ```
/// use isomit_core::exact::best_initiators_by_likelihood;
/// use isomit_diffusion::InfectedNetwork;
/// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
///
/// // One seed allowed: seeding 0 explains node 1 with probability
/// // 3 · 0.25 = 0.75, the best single-seed likelihood (seeding 1
/// // instead leaves node 0 with probability 0).
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.25)],
/// )?;
/// let snap = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 2]);
/// let (seeds, likelihood) = best_initiators_by_likelihood(&snap, 3.0, 1);
/// assert_eq!(seeds, vec![(NodeId(0), Sign::Positive)]);
/// assert_eq!(likelihood, 0.75);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn best_initiators_by_likelihood(
    snapshot: &InfectedNetwork,
    alpha: f64,
    max_size: usize,
) -> (Vec<(NodeId, Sign)>, f64) {
    let n = snapshot.node_count();
    assert!(
        n <= EXACT_SEARCH_LIMIT,
        "exact search limited to {EXACT_SEARCH_LIMIT} nodes, got {n}"
    );
    assert!(
        snapshot.states().iter().all(|s| !s.is_unknown()),
        "exhaustive likelihood search requires fully observed states"
    );
    let mut best = (Vec::new(), 0.0f64);
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) > max_size {
            continue;
        }
        let seeds: Vec<(NodeId, Sign)> = (0..n)
            .filter(|v| mask & (1 << v) != 0)
            .map(|v| {
                let id = NodeId::from_index(v);
                (id, snapshot.state(id).sign().expect("observed"))
            })
            .collect();
        let l = crate::likelihood::snapshot_likelihood(snapshot, alpha, &seeds);
        if l > best.1 {
            best = (seeds, l);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, SignedDigraph};
    use NodeState::{Negative as N, Positive as P};

    fn snapshot(edges: &[(u32, u32, Sign, f64)], states: &[NodeState]) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            states.len(),
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, states.to_vec())
    }

    #[test]
    fn certainty_follows_probability_one_edges() {
        // 0 -> 1 with w = 0.5, alpha = 2 → boosted to 1.0.
        let s = snapshot(&[(0, 1, Sign::Positive, 0.5)], &[P, P]);
        assert!(certainly_infected(&s, 2.0, &[(NodeId(0), Sign::Positive)]));
        // alpha = 1: probability 0.5 < 1 → not certain.
        assert!(!certainly_infected(&s, 1.0, &[(NodeId(0), Sign::Positive)]));
    }

    #[test]
    fn wrong_initiator_state_fails() {
        let s = snapshot(&[], &[P]);
        assert!(!certainly_infected(&s, 2.0, &[(NodeId(0), Sign::Negative)]));
        assert!(certainly_infected(&s, 2.0, &[(NodeId(0), Sign::Positive)]));
    }

    #[test]
    fn inconsistent_edges_do_not_transmit_certainty() {
        let s = snapshot(&[(0, 1, Sign::Positive, 1.0)], &[P, N]);
        assert!(!certainly_infected(&s, 3.0, &[(NodeId(0), Sign::Positive)]));
    }

    #[test]
    fn minimum_set_on_deterministic_chain_is_the_root() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 1.0), (1, 2, Sign::Negative, 1.0)],
            &[P, P, N],
        );
        let min = minimum_certain_initiators(&s, 1.0).unwrap();
        assert_eq!(min, vec![(NodeId(0), Sign::Positive)]);
    }

    #[test]
    fn weak_edge_forces_second_initiator() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 1.0), (1, 2, Sign::Negative, 0.5)],
            &[P, P, N],
        );
        // The negative edge is never boosted: node 2 needs its own seed.
        let min = minimum_certain_initiators(&s, 3.0).unwrap();
        assert_eq!(min.len(), 2);
        assert!(min.contains(&(NodeId(0), Sign::Positive)));
        assert!(min.contains(&(NodeId(2), Sign::Negative)));
    }

    #[test]
    fn likelihood_search_prefers_true_root() {
        let s = snapshot(
            &[(0, 1, Sign::Positive, 0.8), (1, 2, Sign::Positive, 0.8)],
            &[P, P, P],
        );
        let (best, l) = best_initiators_by_likelihood(&s, 1.0, 1);
        assert_eq!(best, vec![(NodeId(0), Sign::Positive)]);
        assert!((l - 0.8 * 0.64).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_needs_no_initiators() {
        let s = snapshot(&[], &[]);
        assert_eq!(minimum_certain_initiators(&s, 2.0), Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "fully observed")]
    fn unknown_states_rejected() {
        let s = snapshot(&[], &[NodeState::Unknown]);
        certainly_infected(&s, 2.0, &[]);
    }
}
