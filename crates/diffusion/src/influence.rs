//! Influence maximization for signed diffusion networks — the problem
//! family the paper positions ISOMIT against (Table I: Kempe et al. for
//! unsigned networks, Li et al. for signed ones). Provided as a
//! substrate feature: the greedy hill-climbing algorithm with lazy
//! ("CELF") marginal-gain re-evaluation, driven by Monte-Carlo estimates
//! of the expected spread under any [`DiffusionModel`].
//!
//! Greedy is a `(1 − 1/e)`-approximation when the spread function is
//! monotone submodular (true for IC/LT; MFC's flipping breaks the
//! guarantee in theory but greedy remains the standard heuristic).

use crate::{DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeId, Sign, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Result of [`maximize_influence`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceResult {
    /// Chosen seeds in selection order (all seeded with
    /// [`Sign::Positive`]).
    pub seeds: Vec<NodeId>,
    /// Estimated expected spread after each selection:
    /// `spread_trajectory[i]` is the spread of the first `i + 1` seeds.
    pub spread_trajectory: Vec<f64>,
}

impl InfluenceResult {
    /// Estimated expected spread of the full seed set.
    pub fn expected_spread(&self) -> f64 {
        self.spread_trajectory.last().copied().unwrap_or(0.0)
    }

    /// The chosen seeds as a positive-state [`SeedSet`].
    pub fn seed_set(&self) -> SeedSet {
        SeedSet::from_pairs(self.seeds.iter().map(|&n| (n, Sign::Positive)))
            .expect("selection never repeats a node")
    }
}

fn estimate_spread<M: DiffusionModel + ?Sized>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &[NodeId],
    runs: usize,
    rng: &mut dyn RngCore,
) -> Result<f64, DiffusionError> {
    let seed_set = SeedSet::from_pairs(seeds.iter().map(|&n| (n, Sign::Positive)))?;
    let mut total = 0usize;
    for _ in 0..runs {
        total += model.simulate(graph, &seed_set, rng)?.infected_count();
    }
    Ok(total as f64 / runs as f64)
}

/// Greedily selects `k` seeds maximizing the Monte-Carlo estimate of the
/// expected spread of `model` on `graph`, with lazy marginal-gain
/// re-evaluation (CELF): candidates are kept in a priority queue keyed by
/// their last-known gain, and only the top candidate is re-evaluated
/// against the current seed set — typically a 10–100× saving over plain
/// greedy at identical output.
///
/// `runs` Monte-Carlo simulations back every spread estimate; the
/// estimates (and thus the selection) are deterministic given `rng`.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `k` exceeds the node
/// count or `runs == 0`, or any error of the underlying
/// [`DiffusionModel::simulate`] calls.
pub fn maximize_influence<M: DiffusionModel + ?Sized>(
    model: &M,
    graph: &SignedDigraph,
    k: usize,
    runs: usize,
    rng: &mut dyn RngCore,
) -> Result<InfluenceResult, DiffusionError> {
    if k > graph.node_count() {
        return Err(DiffusionError::InvalidParameter {
            name: "k",
            value: k as f64,
            constraint: "must not exceed the node count",
        });
    }
    if runs == 0 {
        return Err(DiffusionError::InvalidParameter {
            name: "runs",
            value: 0.0,
            constraint: "must be positive",
        });
    }

    // Lazy queue of (last-known marginal gain, node, round it was
    // computed in). BinaryHeap is a max-heap over the f64 gain via
    // total ordering on bits.
    #[derive(PartialEq)]
    struct Cand {
        gain: f64,
        node: NodeId,
        round: usize,
    }
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.gain
                .total_cmp(&other.gain)
                .then_with(|| other.node.cmp(&self.node))
        }
    }

    let mut queue: std::collections::BinaryHeap<Cand> = graph
        .nodes()
        .map(|node| Cand {
            // Optimistic initial gain forces one evaluation per node the
            // first time it reaches the top.
            gain: f64::INFINITY,
            node,
            round: usize::MAX,
        })
        .collect();

    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut trajectory = Vec::with_capacity(k);
    let mut current_spread = 0.0;

    for round in 0..k {
        loop {
            let Some(top) = queue.pop() else {
                unreachable!("k <= node count");
            };
            if top.round == round {
                // Gain is current: select it.
                seeds.push(top.node);
                current_spread += top.gain;
                trajectory.push(current_spread);
                break;
            }
            // Stale: re-evaluate against the current seed set.
            let mut candidate_seeds = seeds.clone();
            candidate_seeds.push(top.node);
            let spread = estimate_spread(model, graph, &candidate_seeds, runs, rng)?;
            queue.push(Cand {
                gain: spread - current_spread,
                node: top.node,
                round,
            });
        }
    }
    Ok(InfluenceResult {
        seeds,
        spread_trajectory: trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndependentCascade, Mfc};
    use isomit_graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn picks_the_hub_of_a_star() {
        // Hub 0 reaches 5 leaves with probability 1; leaves reach nothing.
        let g = SignedDigraph::from_edges(
            6,
            (1..6).map(|i| Edge::new(NodeId(0), NodeId(i), Sign::Positive, 1.0)),
        )
        .unwrap();
        let result =
            maximize_influence(&IndependentCascade::new(), &g, 1, 20, &mut rng(0)).unwrap();
        assert_eq!(result.seeds, vec![NodeId(0)]);
        assert!((result.expected_spread() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn second_seed_avoids_redundancy() {
        // Two disjoint stars: greedy must pick both hubs, not two nodes
        // of the same star.
        let mut edges: Vec<Edge> = (1..4)
            .map(|i| Edge::new(NodeId(0), NodeId(i), Sign::Positive, 1.0))
            .collect();
        edges.extend((5..8).map(|i| Edge::new(NodeId(4), NodeId(i), Sign::Positive, 1.0)));
        let g = SignedDigraph::from_edges(8, edges).unwrap();
        let result =
            maximize_influence(&IndependentCascade::new(), &g, 2, 20, &mut rng(1)).unwrap();
        let mut seeds = result.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![NodeId(0), NodeId(4)]);
        assert!((result.expected_spread() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_is_monotone() {
        let g = SignedDigraph::from_edges(
            8,
            (0..7).map(|i| {
                Edge::new(
                    NodeId(i),
                    NodeId(i + 1),
                    if i % 2 == 0 {
                        Sign::Positive
                    } else {
                        Sign::Negative
                    },
                    0.5,
                )
            }),
        )
        .unwrap();
        let result = maximize_influence(&Mfc::new(2.0).unwrap(), &g, 4, 50, &mut rng(2)).unwrap();
        assert_eq!(result.seeds.len(), 4);
        for w in result.spread_trajectory.windows(2) {
            // Estimates are noisy but marginal gains are >= 0 up to MC
            // noise; allow a tiny tolerance.
            assert!(w[1] >= w[0] - 0.5, "spread fell: {} -> {}", w[0], w[1]);
        }
        // Chosen seeds are distinct and convert to a valid SeedSet.
        assert_eq!(result.seed_set().len(), 4);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let g = SignedDigraph::from_edges(3, []).unwrap();
        let result = maximize_influence(&IndependentCascade::new(), &g, 0, 5, &mut rng(0)).unwrap();
        assert!(result.seeds.is_empty());
        assert_eq!(result.expected_spread(), 0.0);
    }

    #[test]
    fn k_too_large_is_rejected() {
        let g = SignedDigraph::from_edges(2, []).unwrap();
        let err =
            maximize_influence(&IndependentCascade::new(), &g, 3, 5, &mut rng(0)).unwrap_err();
        assert!(err.to_string().contains("k"));
    }
}
