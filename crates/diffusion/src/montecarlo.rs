//! Monte-Carlo estimation of per-node infection probabilities — the
//! empirical counterpart to the closed-form §III-B likelihood, used to
//! validate analytical formulas and to answer "how likely is user X to
//! end up believing the rumor?" questions on networks too large for
//! exact path enumeration.

use crate::{DiffusionModel, SeedSet};
use isomit_graph::{NodeId, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Empirical per-node outcome frequencies over repeated simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfectionEstimate {
    runs: usize,
    infected: Vec<u32>,
    positive: Vec<u32>,
}

impl InfectionEstimate {
    /// Number of simulation runs behind the estimate.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Estimated probability that `node` ends up holding *any* opinion.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn infection_probability(&self, node: NodeId) -> f64 {
        self.infected[node.index()] as f64 / self.runs as f64
    }

    /// Estimated probability that `node` ends up with the positive
    /// opinion specifically.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn positive_probability(&self, node: NodeId) -> f64 {
        self.positive[node.index()] as f64 / self.runs as f64
    }

    /// Estimated expected outbreak size.
    pub fn expected_infected(&self) -> f64 {
        self.infected.iter().map(|&c| c as f64).sum::<f64>() / self.runs as f64
    }

    /// Half-width of a ~95% normal-approximation confidence interval for
    /// [`infection_probability`](InfectionEstimate::infection_probability).
    pub fn confidence_halfwidth(&self, node: NodeId) -> f64 {
        let p = self.infection_probability(node);
        1.96 * (p * (1.0 - p) / self.runs as f64).sqrt()
    }
}

/// Runs `runs` independent simulations of `model` and tallies per-node
/// outcome frequencies.
///
/// # Panics
///
/// Panics if `runs == 0` or the seed set is invalid for `graph`.
pub fn estimate_infection_probabilities<M>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    rng: &mut dyn RngCore,
) -> InfectionEstimate
where
    M: DiffusionModel + ?Sized,
{
    assert!(runs > 0, "runs must be positive");
    let n = graph.node_count();
    let mut infected = vec![0u32; n];
    let mut positive = vec![0u32; n];
    for _ in 0..runs {
        let cascade = model.simulate(graph, seeds, rng);
        for (i, state) in cascade.states().iter().enumerate() {
            if state.is_active() {
                infected[i] += 1;
            }
            if *state == isomit_graph::NodeState::Positive {
                positive[i] += 1;
            }
        }
    }
    InfectionEstimate {
        runs,
        infected,
        positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndependentCascade, Mfc};
    use isomit_graph::{Edge, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_ic_probabilities_match_path_products() {
        // On a tree under IC, P(node infected) is exactly the product of
        // edge weights along the unique path from the seed.
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.6),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
                Edge::new(NodeId(0), NodeId(3), Sign::Negative, 0.3),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(0);
        let est = estimate_infection_probabilities(
            &IndependentCascade::new(),
            &g,
            &seeds,
            40_000,
            &mut rng,
        );
        assert_eq!(est.infection_probability(NodeId(0)), 1.0);
        for (node, expected) in [(1u32, 0.6), (2, 0.3), (3, 0.3)] {
            let p = est.infection_probability(NodeId(node));
            let tolerance = est.confidence_halfwidth(NodeId(node)) * 2.0;
            assert!(
                (p - expected).abs() < tolerance.max(0.01),
                "node {node}: estimated {p}, expected {expected}"
            );
        }
        // Node 3 is reached over a negative edge: never positive.
        assert_eq!(est.positive_probability(NodeId(3)), 0.0);
    }

    #[test]
    fn mfc_boost_shows_up_in_estimates() {
        let g = SignedDigraph::from_edges(
            2,
            [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.3)],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimate_infection_probabilities(
            &Mfc::new(3.0).unwrap(),
            &g,
            &seeds,
            20_000,
            &mut rng,
        );
        // Boosted probability min(1, 3·0.3) = 0.9.
        let p = est.infection_probability(NodeId(1));
        assert!((p - 0.9).abs() < 0.02, "estimated {p}");
    }

    #[test]
    fn expected_infected_sums_probabilities() {
        let g = SignedDigraph::from_edges(
            2,
            [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_infection_probabilities(
            &IndependentCascade::new(),
            &g,
            &seeds,
            10_000,
            &mut rng,
        );
        let total = est.expected_infected();
        assert!((total - 1.5).abs() < 0.05, "expected size {total}");
        assert_eq!(est.runs(), 10_000);
    }

    #[test]
    #[should_panic(expected = "runs must be positive")]
    fn zero_runs_panics() {
        let g = SignedDigraph::from_edges(1, []).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(0);
        estimate_infection_probabilities(&IndependentCascade::new(), &g, &seeds, 0, &mut rng);
    }
}
