//! Monte-Carlo estimation of per-node infection probabilities — the
//! empirical counterpart to the closed-form §III-B likelihood, used to
//! validate analytical formulas and to answer "how likely is user X to
//! end up believing the rumor?" questions on networks too large for
//! exact path enumeration.
//!
//! # Determinism
//!
//! The seeded entry points give every run its own RNG stream derived
//! from a master seed
//! (`StdRng::seed_from_u64(master ^ run_index · RUN_STREAM)`), so run
//! `i` draws the same numbers no matter which thread executes it or in
//! what order. Per-run tallies are `u32` counters whose merge
//! (element-wise addition) is commutative and associative, which makes
//! [`par_estimate_infection_probabilities`] **bit-identical** to
//! [`estimate_infection_probabilities_seeded`] for every thread count.

use crate::{DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{json, NodeId, SignedDigraph};
use isomit_telemetry::{names, Histogram};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Cached handle into the process-global telemetry registry: one
/// recording per estimation batch (not per run), so the instrumentation
/// cost is amortized over the whole batch.
fn batch_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::MC_BATCH_NS))
}

/// Empirical per-node outcome frequencies over repeated simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfectionEstimate {
    runs: usize,
    infected: Vec<u32>,
    positive: Vec<u32>,
}

impl InfectionEstimate {
    /// Assembles an estimate from per-node tallies (the wide engine's
    /// popcount tallies use this; lengths are the caller's invariant).
    pub(crate) fn from_tallies(runs: usize, infected: Vec<u32>, positive: Vec<u32>) -> Self {
        debug_assert_eq!(infected.len(), positive.len());
        InfectionEstimate {
            runs,
            infected,
            positive,
        }
    }

    /// Number of simulation runs behind the estimate.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Estimated probability that `node` ends up holding *any* opinion.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn infection_probability(&self, node: NodeId) -> f64 {
        self.infected[node.index()] as f64 / self.runs as f64
    }

    /// Estimated probability that `node` ends up with the positive
    /// opinion specifically.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn positive_probability(&self, node: NodeId) -> f64 {
        self.positive[node.index()] as f64 / self.runs as f64
    }

    /// Estimated expected outbreak size.
    pub fn expected_infected(&self) -> f64 {
        self.infected.iter().map(|&c| c as f64).sum::<f64>() / self.runs as f64
    }

    /// Half-width of a ~95% normal-approximation confidence interval for
    /// [`infection_probability`](InfectionEstimate::infection_probability).
    pub fn confidence_halfwidth(&self, node: NodeId) -> f64 {
        let p = self.infection_probability(node);
        1.96 * (p * (1.0 - p) / self.runs as f64).sqrt()
    }

    /// Encodes the estimate with the in-repo JSON codec as
    /// `{"runs": N, "infected": [...], "positive": [...]}` — the wire
    /// form of the serving protocol's `simulate` response.
    pub fn to_json_value(&self) -> json::Value {
        let counts = |v: &[u32]| {
            json::Value::Array(v.iter().map(|&c| json::Value::Number(c as f64)).collect())
        };
        json::Value::Object(vec![
            ("runs".into(), json::Value::Number(self.runs as f64)),
            ("infected".into(), counts(&self.infected)),
            ("positive".into(), counts(&self.positive)),
        ])
    }

    /// Decodes an estimate from the encoding of
    /// [`to_json_value`](InfectionEstimate::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`json::JsonError`] on malformed input, mismatched array
    /// lengths, or counts that do not fit a `u32`.
    pub fn from_json_value(value: &json::Value) -> Result<Self, json::JsonError> {
        let runs = value
            .require("runs")?
            .as_usize()
            .ok_or_else(|| json::JsonError::new("`runs` must be a non-negative integer"))?;
        let counts = |key: &str| -> Result<Vec<u32>, json::JsonError> {
            value
                .require(key)?
                .as_array()
                .ok_or_else(|| json::JsonError::new(format!("`{key}` must be an array")))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| json::JsonError::new(format!("`{key}` counts must be u32")))
                })
                .collect()
        };
        let infected = counts("infected")?;
        let positive = counts("positive")?;
        if infected.len() != positive.len() {
            return Err(json::JsonError::new(
                "`infected` and `positive` must have the same length",
            ));
        }
        Ok(InfectionEstimate {
            runs,
            infected,
            positive,
        })
    }
}

/// Checks the shared preconditions of the estimators.
fn check_runs(runs: usize) -> Result<(), DiffusionError> {
    if runs == 0 {
        return Err(DiffusionError::InvalidParameter {
            name: "runs",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    Ok(())
}

/// Runs `runs` independent simulations of `model` and tallies per-node
/// outcome frequencies.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or any
/// error of the underlying [`DiffusionModel::simulate`] calls.
pub fn estimate_infection_probabilities<M>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    rng: &mut dyn RngCore,
) -> Result<InfectionEstimate, DiffusionError>
where
    M: DiffusionModel + ?Sized,
{
    check_runs(runs)?;
    let mut tally = Tally::new(graph.node_count());
    for _ in 0..runs {
        tally.record(&model.simulate(graph, seeds, rng)?);
    }
    Ok(InfectionEstimate {
        runs,
        infected: tally.infected,
        positive: tally.positive,
    })
}

/// Per-worker outcome tallies; merging two is element-wise addition,
/// which commutes — the property the parallel estimator's determinism
/// rests on.
struct Tally {
    infected: Vec<u32>,
    positive: Vec<u32>,
}

impl Tally {
    fn new(n: usize) -> Self {
        Tally {
            infected: vec![0u32; n],
            positive: vec![0u32; n],
        }
    }

    fn record(&mut self, cascade: &crate::Cascade) {
        let counters = self.infected.iter_mut().zip(self.positive.iter_mut());
        for ((inf, pos), state) in counters.zip(cascade.states()) {
            if state.is_active() {
                *inf += 1;
            }
            if *state == isomit_graph::NodeState::Positive {
                *pos += 1;
            }
        }
    }

    fn merge(mut self, other: Tally) -> Tally {
        for (a, b) in self.infected.iter_mut().zip(&other.infected) {
            *a += b;
        }
        for (a, b) in self.positive.iter_mut().zip(&other.positive) {
            *a += b;
        }
        self
    }
}

/// Odd multiplier (⌊2⁶⁴/φ⌋) spreading run indices across the seed
/// space. A plain `master ^ run_index` would be wrong here: XOR with a
/// small master merely permutes `{0..runs}`, so two small masters can
/// cover the *same set* of per-run streams and — tallies being
/// order-independent sums — yield identical aggregates.
pub(crate) const RUN_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// The RNG stream for run `run_index` of a master seed: fold the
/// spread index into the seed, then let `seed_from_u64`'s SplitMix64
/// expansion decorrelate the resulting values.
#[inline]
fn run_rng(master_seed: u64, run_index: usize) -> StdRng {
    StdRng::seed_from_u64(master_seed ^ (run_index as u64).wrapping_mul(RUN_STREAM))
}

/// Sequential reference implementation of the seeded estimator: runs
/// `runs` independent simulations, run `i` drawing from its own
/// index-derived stream of `master_seed`.
///
/// [`par_estimate_infection_probabilities`] produces bit-identical
/// output; keep this path for single-threaded use and as the regression
/// oracle.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or any
/// error of the underlying [`DiffusionModel::simulate`] calls.
pub fn estimate_infection_probabilities_seeded<M>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    master_seed: u64,
) -> Result<InfectionEstimate, DiffusionError>
where
    M: DiffusionModel + ?Sized,
{
    check_runs(runs)?;
    let _span = batch_histogram().span();
    let mut tally = Tally::new(graph.node_count());
    for run in 0..runs {
        let mut rng = run_rng(master_seed, run);
        tally.record(&model.simulate(graph, seeds, &mut rng)?);
    }
    Ok(InfectionEstimate {
        runs,
        infected: tally.infected,
        positive: tally.positive,
    })
}

/// Parallel estimator: distributes the `runs` simulations across the
/// current rayon worker count (configure with `RAYON_NUM_THREADS` or
/// `ThreadPool::install`), **bit-identical** to
/// [`estimate_infection_probabilities_seeded`] with the same arguments.
///
/// Each run seeds its own [`StdRng`] from its index-derived stream of
/// `master_seed` and workers accumulate into thread-local tallies that
/// are merged by element-wise addition, so neither scheduling order nor
/// thread count can influence the result.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or any
/// error of the underlying [`DiffusionModel::simulate`] calls. Errors
/// short-circuit the surviving work but cannot perturb successful
/// results: a simulation either fails for every run (seed validation is
/// input-determined) or for none.
pub fn par_estimate_infection_probabilities<M>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    master_seed: u64,
) -> Result<InfectionEstimate, DiffusionError>
where
    M: DiffusionModel + Sync + ?Sized,
{
    check_runs(runs)?;
    let _span = batch_histogram().span();
    let n = graph.node_count();
    let tally = (0..runs).into_par_iter().fold_reduce(
        || Ok(Tally::new(n)),
        |acc: Result<Tally, DiffusionError>, run| {
            let mut acc = acc?;
            let mut rng = run_rng(master_seed, run);
            acc.record(&model.simulate(graph, seeds, &mut rng)?);
            Ok(acc)
        },
        |a, b| Ok(a?.merge(b?)),
    )?;
    Ok(InfectionEstimate {
        runs,
        infected: tally.infected,
        positive: tally.positive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndependentCascade, Mfc};
    use isomit_graph::{Edge, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_ic_probabilities_match_path_products() {
        // On a tree under IC, P(node infected) is exactly the product of
        // edge weights along the unique path from the seed.
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.6),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
                Edge::new(NodeId(0), NodeId(3), Sign::Negative, 0.3),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(0);
        let est = estimate_infection_probabilities(
            &IndependentCascade::new(),
            &g,
            &seeds,
            40_000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(est.infection_probability(NodeId(0)), 1.0);
        for (node, expected) in [(1u32, 0.6), (2, 0.3), (3, 0.3)] {
            let p = est.infection_probability(NodeId(node));
            let tolerance = est.confidence_halfwidth(NodeId(node)) * 2.0;
            assert!(
                (p - expected).abs() < tolerance.max(0.01),
                "node {node}: estimated {p}, expected {expected}"
            );
        }
        // Node 3 is reached over a negative edge: never positive.
        assert_eq!(est.positive_probability(NodeId(3)), 0.0);
    }

    #[test]
    fn mfc_boost_shows_up_in_estimates() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.3)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(1);
        let est =
            estimate_infection_probabilities(&Mfc::new(3.0).unwrap(), &g, &seeds, 20_000, &mut rng)
                .unwrap();
        // Boosted probability min(1, 3·0.3) = 0.9.
        let p = est.infection_probability(NodeId(1));
        assert!((p - 0.9).abs() < 0.02, "estimated {p}");
    }

    #[test]
    fn expected_infected_sums_probabilities() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_infection_probabilities(
            &IndependentCascade::new(),
            &g,
            &seeds,
            10_000,
            &mut rng,
        )
        .unwrap();
        let total = est.expected_infected();
        assert!((total - 1.5).abs() < 0.05, "expected size {total}");
        assert_eq!(est.runs(), 10_000);
    }

    #[test]
    fn zero_runs_is_rejected() {
        let g = SignedDigraph::from_edges(1, []).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut rng = StdRng::seed_from_u64(0);
        let err =
            estimate_infection_probabilities(&IndependentCascade::new(), &g, &seeds, 0, &mut rng)
                .unwrap_err();
        assert!(err.to_string().contains("runs"));
    }
}
