use crate::model::gen_unit;
use crate::{ActivationEvent, Cascade, DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeId, NodeState, Sign, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The **Linear Threshold** model of Kempe, Kleinberg & Tardos (KDD
/// 2003), adapted to signed state-carrying networks for comparison
/// against MFC.
///
/// Each node `v` draws a threshold `θ_v ~ U[0, 1)` once per simulation.
/// In every round, an inactive node whose active in-neighbours' total
/// incoming edge weight reaches `θ_v` becomes active. The adopted opinion
/// is the *weighted signed majority* of its active in-neighbours:
/// `sign(Σ_u w(u,v) · s(u) · s_D(u,v))` (ties resolve positive). As in
/// the classic model, active nodes never change state.
///
/// Incoming weights are normalized by the node's total in-weight so the
/// classic `Σ w ≤ 1` pre-condition holds on arbitrary inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinearThreshold {
    _private: (),
}

impl LinearThreshold {
    /// Creates the parameter-free LT model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiffusionModel for LinearThreshold {
    fn name(&self) -> &'static str {
        "LT"
    }

    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError> {
        seeds.validate_against(graph)?;
        let n = graph.node_count();
        let mut cascade = Cascade::new(n, seeds);
        let thresholds: Vec<f64> = (0..n).map(|_| gen_unit(rng)).collect();
        let total_in_weight: Vec<f64> = (0..n)
            .map(|i| {
                graph
                    .in_edges(NodeId::from_index(i))
                    .map(|e| e.weight)
                    .sum::<f64>()
            })
            .collect();

        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut newly: Vec<(NodeId, NodeId, Sign)> = Vec::new();
            for (i, (&weight_in, &threshold)) in total_in_weight.iter().zip(&thresholds).enumerate()
            {
                let v = NodeId::from_index(i);
                if cascade.state(v) != NodeState::Inactive || weight_in <= 0.0 {
                    continue;
                }
                let mut active_weight = 0.0;
                let mut signed_influence = 0.0;
                // Track the heaviest active in-neighbour as the nominal
                // activator for cascade-tree bookkeeping.
                let mut best: Option<(f64, NodeId, Sign)> = None;
                for e in graph.in_edges(v) {
                    if let Some(su) = cascade.state(e.src).sign() {
                        active_weight += e.weight;
                        let contribution =
                            e.weight * f64::from(su.value()) * f64::from(e.sign.value());
                        signed_influence += contribution;
                        let candidate_state = su * e.sign;
                        if best.is_none_or(|(bw, _, _)| e.weight > bw) {
                            best = Some((e.weight, e.src, candidate_state));
                        }
                    }
                }
                if active_weight / weight_in >= threshold {
                    let opinion = if signed_influence >= 0.0 {
                        Sign::Positive
                    } else {
                        Sign::Negative
                    };
                    let Some((_, activator, _)) = best else {
                        unreachable!("threshold reached implies an active in-neighbour");
                    };
                    newly.push((v, activator, opinion));
                }
            }
            if newly.is_empty() {
                break;
            }
            for (v, activator, opinion) in newly {
                cascade.record(ActivationEvent {
                    step: rounds,
                    src: activator,
                    dst: v,
                    new_state: opinion,
                    flip: false,
                });
            }
        }
        cascade.finish(rounds, false);
        Ok(cascade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn full_weight_neighbor_always_activates() {
        // v's only in-neighbour is active with normalized weight 1 ≥ any
        // threshold in [0, 1).
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.7)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        for s in 0..20 {
            let c = LinearThreshold::new()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap();
            assert_eq!(c.state(NodeId(1)), NodeState::Positive);
        }
    }

    #[test]
    fn signed_majority_decides_opinion() {
        // Two positive-opinion activators: one trusts (+, 0.9), one
        // distrusted path (−, 0.1) → majority positive.
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(2), Sign::Positive, 0.9),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.1),
            ],
        )
        .unwrap();
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Positive)])
            .unwrap();
        for s in 0..20 {
            let c = LinearThreshold::new()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap();
            assert_eq!(c.state(NodeId(2)), NodeState::Positive);
        }
    }

    #[test]
    fn negative_majority_gives_negative_opinion() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Negative, 0.8)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        for s in 0..20 {
            let c = LinearThreshold::new()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap();
            assert_eq!(c.state(NodeId(1)), NodeState::Negative);
        }
    }

    #[test]
    fn isolated_nodes_stay_inactive() {
        let g =
            SignedDigraph::from_edges(3, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = LinearThreshold::new()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(2)), NodeState::Inactive);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.4),
                Edge::new(NodeId(0), NodeId(2), Sign::Negative, 0.6),
                Edge::new(NodeId(1), NodeId(3), Sign::Positive, 0.5),
                Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.5),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let a = LinearThreshold::new()
            .simulate(&g, &seeds, &mut rng(11))
            .unwrap();
        let b = LinearThreshold::new()
            .simulate(&g, &seeds, &mut rng(11))
            .unwrap();
        assert_eq!(a, b);
    }
}
