//! Temporal views of a finished cascade: per-round infection and flip
//! counts, opinion balance over time, and per-node infection times —
//! the raw material for diffusion analyses like the paper's §IV-B3.

use crate::Cascade;
use isomit_graph::{NodeId, Sign};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one diffusion round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundStats {
    /// Nodes activated for the first time in this round.
    pub new_infections: usize,
    /// Opinion flips of already-active nodes in this round.
    pub flips: usize,
    /// First activations (or flips) resulting in a positive opinion.
    pub positive_events: usize,
    /// First activations (or flips) resulting in a negative opinion.
    pub negative_events: usize,
}

/// A round-by-round timeline derived from a [`Cascade`]'s event log.
///
/// ```
/// use isomit_diffusion::{CascadeTimeline, DiffusionModel, Mfc, SeedSet};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 1.0),
///     ],
/// )?;
/// let seeds = SeedSet::single(NodeId(0), Sign::Positive);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cascade = Mfc::new(2.0)?.simulate(&g, &seeds, &mut rng)?;
/// let timeline = CascadeTimeline::from_cascade(&cascade);
/// assert_eq!(timeline.cumulative_infected(1), 2); // seed + round-1 hit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeTimeline {
    /// `rounds[t]` covers diffusion round `t + 1` (seeds are round 0).
    rounds: Vec<RoundStats>,
    seed_count: usize,
    /// First-activation round per node, `None` for seeds (round 0 by
    /// definition) and never-infected nodes.
    infection_round: Vec<Option<usize>>,
}

impl CascadeTimeline {
    /// Builds the timeline from a cascade's event log.
    pub fn from_cascade(cascade: &Cascade) -> Self {
        let n = cascade.states().len();
        let mut infection_round: Vec<Option<usize>> = vec![None; n];
        let last_round = cascade.events().iter().map(|e| e.step).max().unwrap_or(0);
        let mut rounds = vec![RoundStats::default(); last_round];
        for event in cascade.events() {
            let Some(slot) = rounds.get_mut(event.step - 1) else {
                continue; // unrecordable event; `last_round` bounds every step
            };
            if event.flip {
                slot.flips += 1;
            } else {
                slot.new_infections += 1;
                if let Some(first) = infection_round.get_mut(event.dst.index()) {
                    if first.is_none() {
                        *first = Some(event.step);
                    }
                }
            }
            match event.new_state {
                Sign::Positive => slot.positive_events += 1,
                Sign::Negative => slot.negative_events += 1,
            }
        }
        CascadeTimeline {
            rounds,
            seed_count: cascade.seeds().len(),
            infection_round,
        }
    }

    /// Number of recorded rounds (rounds with at least one event may be
    /// followed by quiet rounds that are not recorded).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no events happened (seeds-only cascade).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Statistics of round `t` (1-based, matching
    /// [`ActivationEvent::step`](crate::ActivationEvent)).
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or beyond the last recorded round.
    pub fn round(&self, t: usize) -> RoundStats {
        assert!(t >= 1 && t <= self.rounds.len(), "round {t} out of range");
        self.rounds[t - 1]
    }

    /// Iterator over `(round, stats)` pairs, 1-based.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RoundStats)> + '_ {
        self.rounds.iter().enumerate().map(|(i, &s)| (i + 1, s))
    }

    /// Total infected after round `t` (seeds count as round 0; `t = 0`
    /// returns the seed count, values past the end saturate).
    pub fn cumulative_infected(&self, t: usize) -> usize {
        let through = t.min(self.rounds.len());
        self.seed_count
            + self
                .rounds
                .iter()
                .take(through)
                .map(|r| r.new_infections)
                .sum::<usize>()
    }

    /// The round in which `node` was first infected: `Some(0)` for
    /// seeds, `Some(t)` for nodes first activated in round `t`, `None`
    /// for untouched nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn infection_round(&self, node: NodeId, cascade: &Cascade) -> Option<usize> {
        if cascade.seeds().contains(node) {
            return Some(0);
        }
        self.infection_round[node.index()]
    }

    /// Round with the most new infections (the outbreak's peak), `None`
    /// for an event-free cascade.
    pub fn peak_round(&self) -> Option<usize> {
        self.rounds
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.new_infections)
            .map(|(i, _)| i + 1)
    }

    /// Total flips across all rounds.
    pub fn total_flips(&self) -> usize {
        self.rounds.iter().map(|r| r.flips).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiffusionModel, Mfc, SeedSet};
    use isomit_graph::{Edge, SignedDigraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_cascade() -> Cascade {
        // Deterministic: 0 -> 1 -> 2 -> 3 with probability-1 edges.
        let g = SignedDigraph::from_edges(
            4,
            (0..3).map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Positive, 1.0)),
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(0))
            .unwrap()
    }

    #[test]
    fn chain_timeline_one_infection_per_round() {
        let cascade = chain_cascade();
        let timeline = CascadeTimeline::from_cascade(&cascade);
        assert_eq!(timeline.len(), 3);
        for (t, stats) in timeline.iter() {
            assert_eq!(stats.new_infections, 1, "round {t}");
            assert_eq!(stats.flips, 0);
            assert_eq!(stats.positive_events, 1);
        }
        assert_eq!(timeline.cumulative_infected(0), 1);
        assert_eq!(timeline.cumulative_infected(2), 3);
        assert_eq!(timeline.cumulative_infected(99), 4);
    }

    #[test]
    fn infection_rounds_match_chain_depth() {
        let cascade = chain_cascade();
        let timeline = CascadeTimeline::from_cascade(&cascade);
        assert_eq!(timeline.infection_round(NodeId(0), &cascade), Some(0));
        assert_eq!(timeline.infection_round(NodeId(1), &cascade), Some(1));
        assert_eq!(timeline.infection_round(NodeId(3), &cascade), Some(3));
    }

    #[test]
    fn flips_are_counted_separately() {
        // 0 (+ seed) and 1 (- seed) joined by a trust edge: 1 flips.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Negative)])
            .unwrap();
        let cascade = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let timeline = CascadeTimeline::from_cascade(&cascade);
        assert_eq!(timeline.total_flips(), 1);
        assert_eq!(timeline.round(1).flips, 1);
        assert_eq!(timeline.round(1).new_infections, 0);
        // A flip does not change the cumulative infected count.
        assert_eq!(timeline.cumulative_infected(1), 2);
    }

    #[test]
    fn empty_cascade() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.0)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let cascade = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let timeline = CascadeTimeline::from_cascade(&cascade);
        assert!(timeline.is_empty());
        assert_eq!(timeline.peak_round(), None);
        assert_eq!(timeline.cumulative_infected(5), 1);
        assert_eq!(timeline.infection_round(NodeId(1), &cascade), None);
    }

    #[test]
    fn peak_round_finds_the_burst() {
        // Star: all 4 leaves infected in round 1.
        let g = SignedDigraph::from_edges(
            5,
            (1..5).map(|i| Edge::new(NodeId(0), NodeId(i), Sign::Positive, 1.0)),
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let cascade = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let timeline = CascadeTimeline::from_cascade(&cascade);
        assert_eq!(timeline.peak_round(), Some(1));
        assert_eq!(timeline.round(1).new_infections, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn round_zero_panics() {
        let timeline = CascadeTimeline::from_cascade(&chain_cascade());
        timeline.round(0);
    }
}
