// lint:allow-file(indexing) hot-path bitplane kernel: every node index comes from the validated CSR (dst < node_count) and every edge index from the flat-array prefix sums built over the same CSR
//! 64-lane bitset Monte-Carlo MFC engine: runs up to 64 **independent**
//! trials per pass over the graph, one trial per bit of a `u64`
//! bitplane.
//!
//! # Bitplane layout
//!
//! Trial state is laid out *across* trials rather than across nodes:
//! for every node the engine keeps one `u64` per state plane, bit `l`
//! describing lane (trial) `l` of the batch:
//!
//! * `active[v]` — lane holds an opinion at `v` (the union of the
//!   paper's positive and negative activation states);
//! * `positive[v]` — lane's opinion at `v` is `+1` (only meaningful
//!   where the `active` bit is set; maintained zero elsewhere);
//! * `frontier[v]` / `next[v]` — lane activated or flipped `v` in the
//!   previous / current round and must spread from it next round.
//!
//! One pass over a frontier node's out-edges then advances all 64
//! trials at once: eligibility (Algorithm 1, line 8) is evaluated with
//! three bitwise operations instead of 64 branch chains, and the
//! per-node tallies behind [`InfectionEstimate`] are popcounts.
//!
//! # Per-lane RNG streams and wide ≡ scalar bit-identity
//!
//! A lockstep engine cannot share one sequential RNG stream per lane:
//! the number of draws a lane consumes per round depends on that lane's
//! own frontier, so any interleaving choice would perturb some lane's
//! stream. Instead every *attempt* draws a **counter-based** uniform
//!
//! ```text
//! u(lane, round, edge) = unit(mix(mix(round ⊕ edge·C), lane_key))
//! ```
//!
//! — a pure function of the lane's seed-derived key and the attempt
//! coordinates (`mix` is the SplitMix64 finalizer). Draw *order* is
//! irrelevant by construction, so a scalar replay of one lane
//! ([`simulate_wide_reference`]) consumes exactly the same randomness
//! as the 64-lane engine, and [`estimate_infection_probabilities_wide`]
//! is **bit-identical** to
//! [`estimate_infection_probabilities_wide_reference`] for every batch
//! width, thread count, and trial count. Both paths visit frontier
//! nodes in ascending node order (within-round activations are applied
//! immediately, as in the scalar [`Mfc`] engine), which pins the one
//! remaining order-dependence.
//!
//! Note the wide engine is *distributionally* equivalent to
//! [`Mfc::simulate`] but not bit-identical to it: the scalar engine
//! visits its frontier in insertion order and draws from a sequential
//! per-run stream, neither of which survives vectorization. The scalar
//! reference implementation in this module is the retained oracle.
//!
//! # Ragged tails
//!
//! A trial count that is not a multiple of 64 simply runs its final
//! batch with fewer lanes: lane keys are derived from the *global*
//! trial index (`splitmix64(master ⊕ trial·RUN_STREAM)`, the same
//! spread the sequential estimators use), so trial 70 draws the same
//! numbers whether it runs as lane 6 of batch 1 or alone in a width-1
//! batch.

use crate::montecarlo::RUN_STREAM;
use crate::{DiffusionError, InfectedNetwork, InfectionEstimate, Mfc, SeedSet};
use isomit_graph::{NodeId, NodeState, SignedDigraph};
use isomit_telemetry::{names, Counter, Histogram};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Maximum number of lanes (independent trials) per batch: the width of
/// the `u64` bitplanes.
pub const MAX_LANES: usize = 64;

/// Cached telemetry handles (amortized over batches, like the
/// sequential estimator's `mc.batch_ns`).
fn wide_batch_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::MC_WIDE_BATCH_NS))
}

fn wide_lane_counter() -> &'static Counter {
    static LANES: OnceLock<Counter> = OnceLock::new();
    LANES.get_or_init(|| isomit_telemetry::global().counter(names::MC_WIDE_LANES))
}

fn wide_batch_counter() -> &'static Counter {
    static BATCHES: OnceLock<Counter> = OnceLock::new();
    BATCHES.get_or_init(|| isomit_telemetry::global().counter(names::MC_WIDE_BATCHES))
}

/// SplitMix64 finalizer — the mixing primitive of the counter-based
/// attempt RNG.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Odd multiplier decorrelating edge indices inside a round key.
const EDGE_STREAM: u64 = 0xA24B_AED4_963E_E407;

/// The RNG key of trial `trial` under `master_seed` — the wide
/// counterpart of the sequential estimators' per-run stream derivation
/// (same `RUN_STREAM` spread, finalized so nearby trials land far apart
/// in key space).
#[inline]
pub fn wide_lane_key(master_seed: u64, trial: usize) -> u64 {
    splitmix64(master_seed ^ (trial as u64).wrapping_mul(RUN_STREAM))
}

/// The shared per-round component of attempt coordinates.
#[inline]
fn round_key(round: usize) -> u64 {
    splitmix64(round as u64)
}

/// The shared per-(round, edge) component; hoisted out of the lane loop
/// so each eligible lane costs one further mix.
#[inline]
fn attempt_base(round_key: u64, edge: u64) -> u64 {
    splitmix64(round_key ^ edge.wrapping_mul(EDGE_STREAM))
}

/// The uniform draw in `[0, 1)` of one (lane, round, edge) attempt
/// (53-bit mantissa method, like the scalar engine's `gen_unit`).
#[inline]
fn attempt_unit(base: u64, lane_key: u64) -> f64 {
    (splitmix64(base ^ lane_key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Final state of one wide batch: up to 64 finished MFC trials, one per
/// bitplane lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideBatch {
    lanes: u32,
    active: Vec<u64>,
    positive: Vec<u64>,
    truncated: u64,
}

impl WideBatch {
    /// Number of lanes (trials) this batch ran.
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Bitmask of lanes in which `node` ended up holding an opinion.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn active_mask(&self, node: NodeId) -> u64 {
        self.active[node.index()]
    }

    /// Bitmask of lanes in which `node` ended up with the positive
    /// opinion.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn positive_mask(&self, node: NodeId) -> u64 {
        self.positive[node.index()]
    }

    /// Bitmask of lanes whose trial hit the round cap before
    /// quiescing (the wide counterpart of [`crate::Cascade::truncated`]).
    pub fn truncated_lanes(&self) -> u64 {
        self.truncated
    }

    /// Final per-node states of one lane — the wide counterpart of
    /// [`crate::Cascade::states`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn lane_states(&self, lane: usize) -> Vec<NodeState> {
        assert!(lane < self.lanes(), "lane {lane} out of {}", self.lanes);
        let bit = 1u64 << lane;
        self.active
            .iter()
            .zip(&self.positive)
            .map(|(&a, &p)| {
                if a & bit == 0 {
                    NodeState::Inactive
                } else if p & bit != 0 {
                    NodeState::Positive
                } else {
                    NodeState::Negative
                }
            })
            .collect()
    }

    /// Number of opinion-holding nodes in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn lane_infected_count(&self, lane: usize) -> usize {
        assert!(lane < self.lanes(), "lane {lane} out of {}", self.lanes);
        let bit = 1u64 << lane;
        self.active.iter().filter(|&&a| a & bit != 0).count()
    }

    /// Extracts one lane's infected snapshot — the wide counterpart of
    /// [`InfectedNetwork::from_cascade`], for harnesses that sample many
    /// observation snapshots per graph traversal.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()` or `diffusion` is not the graph
    /// the batch was simulated on (node-count mismatch).
    pub fn lane_snapshot(&self, diffusion: &SignedDigraph, lane: usize) -> InfectedNetwork {
        InfectedNetwork::from_states(diffusion, &self.lane_states(lane))
    }

    /// Adds this batch's outcomes into per-node tally arrays
    /// (popcount per plane; the merge underlying the wide estimators).
    fn tally_into(&self, infected: &mut [u32], positive: &mut [u32]) {
        for (slot, &mask) in infected.iter_mut().zip(&self.active) {
            *slot += mask.count_ones();
        }
        for (slot, &mask) in positive.iter_mut().zip(&self.positive) {
            *slot += mask.count_ones();
        }
    }
}

/// Reusable wide-simulation context: the CSR flattened into plain
/// arrays with **pre-boosted** success probabilities, so the inner loop
/// touches no enum tags and recomputes no `min(1, α·w)`.
///
/// Build once per (model, graph) pair and run any number of batches
/// against it (it is `Sync`; the parallel estimator shares one across
/// workers).
#[derive(Debug)]
pub struct WideSimulator<'g> {
    graph: &'g SignedDigraph,
    max_rounds: usize,
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s out-edges below.
    offsets: Vec<usize>,
    dst: Vec<u32>,
    /// Boosted success probability `min(1, α·w)` / raw `w` per edge.
    prob: Vec<f64>,
    /// Sign plane: `!0` for positive (trust) edges, `0` for negative —
    /// branch-free select masks for the flip rule and the state product.
    pos_edge: Vec<u64>,
}

impl<'g> WideSimulator<'g> {
    /// Flattens `graph` for wide simulation under `model`.
    pub fn new(model: &Mfc, graph: &'g SignedDigraph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dst = Vec::with_capacity(m);
        let mut prob = Vec::with_capacity(m);
        let mut pos_edge = Vec::with_capacity(m);
        offsets.push(0);
        for u in graph.nodes() {
            for e in graph.out_edges(u) {
                dst.push(e.dst.0);
                prob.push(model.boosted_probability(e.sign, e.weight));
                pos_edge.push(if e.sign.is_positive() { !0u64 } else { 0 });
            }
            offsets.push(dst.len());
        }
        WideSimulator {
            graph,
            max_rounds: model.max_rounds(),
            offsets,
            dst,
            prob,
            pos_edge,
        }
    }

    /// The graph this simulator was built over.
    pub fn graph(&self) -> &SignedDigraph {
        self.graph
    }

    /// Runs one batch: `lane_keys.len()` independent MFC trials (lane
    /// `l` keyed by `lane_keys[l]`), all seeded from `seeds`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] if `lane_keys` is
    /// empty or longer than [`MAX_LANES`], or
    /// [`DiffusionError::SeedOutOfBounds`] for seeds outside the graph.
    pub fn run(&self, seeds: &SeedSet, lane_keys: &[u64]) -> Result<WideBatch, DiffusionError> {
        if lane_keys.is_empty() || lane_keys.len() > MAX_LANES {
            return Err(DiffusionError::InvalidParameter {
                name: "lanes",
                value: lane_keys.len() as f64,
                constraint: "must be between 1 and 64",
            });
        }
        seeds.validate_against(self.graph)?;
        let _span = wide_batch_histogram().span();
        wide_batch_counter().inc();
        wide_lane_counter().add(lane_keys.len() as u64);

        let n = self.graph.node_count();
        let full = lane_mask(lane_keys.len());
        let mut active = vec![0u64; n];
        let mut positive = vec![0u64; n];
        let mut frontier_plane = vec![0u64; n];
        let mut next_plane = vec![0u64; n];

        let mut frontier: Vec<u32> = Vec::with_capacity(seeds.len());
        for (node, sign) in seeds.iter() {
            let v = node.index();
            active[v] = full;
            if sign.is_positive() {
                positive[v] = full;
            }
            frontier_plane[v] = full;
            frontier.push(node.0);
        }
        frontier.sort_unstable();
        let mut next: Vec<u32> = Vec::new();

        let mut rounds = 0usize;
        let mut truncated = 0u64;
        while !frontier.is_empty() {
            rounds += 1;
            if rounds > self.max_rounds {
                for &u in &frontier {
                    truncated |= frontier_plane[u as usize];
                }
                break;
            }
            let rkey = round_key(rounds);
            for &u in &frontier {
                let u = u as usize;
                let fu = frontier_plane[u];
                let pu = positive[u];
                for i in self.offsets[u]..self.offsets[u + 1] {
                    let v32 = self.dst[i];
                    let v = v32 as usize;
                    let av = active[v];
                    let sign_plane = self.pos_edge[i];
                    // Algorithm 1, line 8, across all lanes at once:
                    // inactive targets, plus active opposite-opinion
                    // targets reached over a trust edge.
                    let mut eligible = fu & (!av | (sign_plane & (pu ^ positive[v])));
                    if eligible == 0 {
                        continue;
                    }
                    let p = self.prob[i];
                    let succ = if p >= 1.0 {
                        // unit draws live in [0, 1): certain success,
                        // no draws needed (counter-based streams make
                        // skipping free — no state advances).
                        eligible
                    } else {
                        let base = attempt_base(rkey, i as u64);
                        let mut s = 0u64;
                        while eligible != 0 {
                            let lane = eligible.trailing_zeros();
                            eligible &= eligible - 1;
                            if attempt_unit(base, lane_keys[lane as usize]) < p {
                                s |= 1u64 << lane;
                            }
                        }
                        s
                    };
                    if succ == 0 {
                        continue;
                    }
                    // s(v) = s(u) · s_D(u, v): copy u's opinion over
                    // trust edges, invert it over distrust edges.
                    let new_pos = (pu & sign_plane) | (!pu & !sign_plane);
                    positive[v] = (positive[v] & !succ) | (new_pos & succ);
                    active[v] |= succ;
                    if next_plane[v] == 0 {
                        next.push(v32);
                    }
                    next_plane[v] |= succ;
                }
            }
            for &u in &frontier {
                frontier_plane[u as usize] = 0;
            }
            for &v in &next {
                frontier_plane[v as usize] = next_plane[v as usize];
                next_plane[v as usize] = 0;
            }
            next.sort_unstable();
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }

        Ok(WideBatch {
            lanes: u32::try_from(lane_keys.len()).expect("lane count is at most LANES (64)"),
            active,
            positive,
            truncated,
        })
    }
}

/// Bitmask with the low `lanes` bits set.
#[inline]
fn lane_mask(lanes: usize) -> u64 {
    debug_assert!((1..=MAX_LANES).contains(&lanes));
    if lanes == MAX_LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Runs one wide batch of up to 64 MFC trials over `graph` — the
/// one-shot form of [`WideSimulator::run`] (build the simulator
/// yourself to amortize the flattening over many batches).
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] for an empty or
/// over-wide `lane_keys`, or [`DiffusionError::SeedOutOfBounds`] for
/// seeds outside the graph.
pub fn simulate_wide(
    model: &Mfc,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    lane_keys: &[u64],
) -> Result<WideBatch, DiffusionError> {
    WideSimulator::new(model, graph).run(seeds, lane_keys)
}

/// Scalar reference replay of **one lane**: an independent
/// implementation (plain state array, no bitplanes, no flattened CSR)
/// that must reproduce lane `lane_key` of any wide batch bit-exactly.
/// Returns the final per-node states and whether the round cap was hit.
///
/// This is the retained oracle behind the wide-determinism suite and
/// the `bit_identical` gate in `BENCH_montecarlo.json`.
///
/// # Errors
///
/// Returns [`DiffusionError::SeedOutOfBounds`] for seeds outside the
/// graph.
pub fn simulate_wide_reference(
    model: &Mfc,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    lane_key: u64,
) -> Result<(Vec<NodeState>, bool), DiffusionError> {
    seeds.validate_against(graph)?;
    let n = graph.node_count();
    // Flat edge indices: the wide engine numbers edges by CSR position.
    let mut edge_base = vec![0u64; n];
    let mut acc = 0u64;
    for u in graph.nodes() {
        edge_base[u.index()] = acc;
        acc += graph.out_degree(u) as u64;
    }

    let mut state = vec![NodeState::Inactive; n];
    let mut frontier: Vec<u32> = Vec::with_capacity(seeds.len());
    for (node, sign) in seeds.iter() {
        state[node.index()] = NodeState::from_sign(sign);
        frontier.push(node.0);
    }
    frontier.sort_unstable();
    let mut in_next = vec![false; n];

    let mut rounds = 0usize;
    let mut truncated = false;
    while !frontier.is_empty() {
        rounds += 1;
        if rounds > model.max_rounds() {
            truncated = true;
            break;
        }
        let rkey = round_key(rounds);
        let mut next: Vec<u32> = Vec::new();
        for &u in &frontier {
            let su = match state[u as usize].sign() {
                Some(s) => s,
                None => unreachable!("frontier node is always active"),
            };
            for (idx, e) in (edge_base[u as usize]..).zip(graph.out_edges(NodeId(u))) {
                let sv = state[e.dst.index()];
                let eligible = match sv.sign() {
                    None => true,
                    Some(s) => e.sign.is_positive() && s != su,
                };
                if !eligible {
                    continue;
                }
                let p = model.boosted_probability(e.sign, e.weight);
                if attempt_unit(attempt_base(rkey, idx), lane_key) < p {
                    state[e.dst.index()] = NodeState::from_sign(su * e.sign);
                    if !in_next[e.dst.index()] {
                        in_next[e.dst.index()] = true;
                        next.push(e.dst.0);
                    }
                }
            }
        }
        for &v in &next {
            in_next[v as usize] = false;
        }
        next.sort_unstable();
        frontier = next;
    }
    Ok((state, truncated))
}

/// Shared argument check of the wide estimators.
fn check_wide_runs(runs: usize) -> Result<(), DiffusionError> {
    if runs == 0 {
        return Err(DiffusionError::InvalidParameter {
            name: "runs",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    Ok(())
}

/// The lane keys of one batch: trials `first..first + count` of
/// `master_seed`.
fn batch_keys(master_seed: u64, first: usize, count: usize) -> Vec<u64> {
    (first..first + count)
        .map(|t| wide_lane_key(master_seed, t))
        .collect()
}

/// Wide Monte-Carlo estimator: tallies `runs` MFC trials in batches of
/// up to 64 lanes per graph traversal. Deterministic in
/// `(graph, seeds, runs, master_seed)` and **bit-identical** to
/// [`estimate_infection_probabilities_wide_reference`]; the throughput
/// replacement for
/// [`estimate_infection_probabilities_seeded`](crate::estimate_infection_probabilities_seeded)
/// on MFC workloads.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or
/// [`DiffusionError::SeedOutOfBounds`] for seeds outside the graph.
pub fn estimate_infection_probabilities_wide(
    model: &Mfc,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    master_seed: u64,
) -> Result<InfectionEstimate, DiffusionError> {
    check_wide_runs(runs)?;
    let sim = WideSimulator::new(model, graph);
    let n = graph.node_count();
    let mut infected = vec![0u32; n];
    let mut positive = vec![0u32; n];
    let mut first = 0usize;
    while first < runs {
        let count = MAX_LANES.min(runs - first);
        let batch = sim.run(seeds, &batch_keys(master_seed, first, count))?;
        batch.tally_into(&mut infected, &mut positive);
        first += count;
    }
    Ok(InfectionEstimate::from_tallies(runs, infected, positive))
}

/// Parallel wide estimator: distributes whole batches across the rayon
/// pool. Per-batch tallies merge by element-wise addition, so the
/// result is **bit-identical** to
/// [`estimate_infection_probabilities_wide`] (and therefore to the
/// scalar reference) for every thread count.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or
/// [`DiffusionError::SeedOutOfBounds`] for seeds outside the graph.
pub fn par_estimate_infection_probabilities_wide(
    model: &Mfc,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    master_seed: u64,
) -> Result<InfectionEstimate, DiffusionError> {
    check_wide_runs(runs)?;
    let sim = WideSimulator::new(model, graph);
    let n = graph.node_count();
    let batches = runs.div_ceil(MAX_LANES);
    let (infected, positive) = (0..batches).into_par_iter().fold_reduce(
        || Ok((vec![0u32; n], vec![0u32; n])),
        |acc: Result<(Vec<u32>, Vec<u32>), DiffusionError>, b| {
            let (mut infected, mut positive) = acc?;
            let first = b * MAX_LANES;
            let count = MAX_LANES.min(runs - first);
            let batch = sim.run(seeds, &batch_keys(master_seed, first, count))?;
            batch.tally_into(&mut infected, &mut positive);
            Ok((infected, positive))
        },
        |a, b| {
            let (mut ai, mut ap) = a?;
            let (bi, bp) = b?;
            for (x, y) in ai.iter_mut().zip(&bi) {
                *x += y;
            }
            for (x, y) in ap.iter_mut().zip(&bp) {
                *x += y;
            }
            Ok((ai, ap))
        },
    )?;
    Ok(InfectionEstimate::from_tallies(runs, infected, positive))
}

/// Scalar-oracle estimator: replays every trial through
/// [`simulate_wide_reference`] one at a time. Slow by design — it
/// exists so the wide engine has an independent implementation to be
/// bit-identical against.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or
/// [`DiffusionError::SeedOutOfBounds`] for seeds outside the graph.
pub fn estimate_infection_probabilities_wide_reference(
    model: &Mfc,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    master_seed: u64,
) -> Result<InfectionEstimate, DiffusionError> {
    check_wide_runs(runs)?;
    let n = graph.node_count();
    let mut infected = vec![0u32; n];
    let mut positive = vec![0u32; n];
    for trial in 0..runs {
        let (states, _) =
            simulate_wide_reference(model, graph, seeds, wide_lane_key(master_seed, trial))?;
        for (v, s) in states.iter().enumerate() {
            if s.is_active() {
                infected[v] += 1;
            }
            if *s == NodeState::Positive {
                positive[v] += 1;
            }
        }
    }
    Ok(InfectionEstimate::from_tallies(runs, infected, positive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, Sign};

    fn g(edges: &[(u32, u32, Sign, f64)]) -> SignedDigraph {
        SignedDigraph::from_edges(
            0,
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_chain_reaches_everyone_in_every_lane() {
        // All probabilities boosted to 1: every lane must fully infect.
        let g = g(&[
            (0, 1, Sign::Positive, 0.5),
            (1, 2, Sign::Negative, 1.0),
            (2, 3, Sign::Negative, 1.0),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let keys: Vec<u64> = (0..64).map(|t| wide_lane_key(9, t)).collect();
        let batch = simulate_wide(&model, &g, &seeds, &keys).unwrap();
        assert_eq!(batch.lanes(), 64);
        for v in 0..4 {
            assert_eq!(batch.active_mask(NodeId(v)), !0, "node {v}");
        }
        // Signs: + at 0 and 1, − at 2, + at 3 (two flips of the chain).
        assert_eq!(batch.positive_mask(NodeId(1)), !0);
        assert_eq!(batch.positive_mask(NodeId(2)), 0);
        assert_eq!(batch.positive_mask(NodeId(3)), !0);
        assert_eq!(batch.truncated_lanes(), 0);
    }

    #[test]
    fn every_lane_matches_its_scalar_replay() {
        let g = g(&[
            (0, 1, Sign::Positive, 0.5),
            (0, 2, Sign::Negative, 0.6),
            (1, 3, Sign::Positive, 0.4),
            (2, 3, Sign::Positive, 0.7),
            (3, 4, Sign::Negative, 0.5),
            (4, 0, Sign::Positive, 0.3),
        ]);
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(2), Sign::Negative)])
            .unwrap();
        let model = Mfc::new(1.5).unwrap();
        let keys: Vec<u64> = (0..37).map(|t| wide_lane_key(123, t)).collect();
        let batch = simulate_wide(&model, &g, &seeds, &keys).unwrap();
        for (lane, &key) in keys.iter().enumerate() {
            let (states, truncated) = simulate_wide_reference(&model, &g, &seeds, key).unwrap();
            assert_eq!(batch.lane_states(lane), states, "lane {lane}");
            assert_eq!(
                batch.truncated_lanes() & (1 << lane) != 0,
                truncated,
                "lane {lane} truncation"
            );
        }
    }

    #[test]
    fn ragged_batches_match_full_batches_per_trial() {
        // Trial t must draw the same numbers regardless of the batch it
        // runs in: compare a 64-lane batch against singleton batches.
        let g = g(&[
            (0, 1, Sign::Positive, 0.3),
            (1, 2, Sign::Negative, 0.8),
            (0, 2, Sign::Positive, 0.2),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Negative);
        let model = Mfc::new(3.0).unwrap();
        let keys: Vec<u64> = (0..64).map(|t| wide_lane_key(7, t)).collect();
        let full = simulate_wide(&model, &g, &seeds, &keys).unwrap();
        for (lane, &key) in keys.iter().enumerate().take(7) {
            let single = simulate_wide(&model, &g, &seeds, &[key]).unwrap();
            assert_eq!(single.lane_states(0), full.lane_states(lane));
        }
    }

    #[test]
    fn wide_estimator_matches_scalar_reference_bit_for_bit() {
        let g = g(&[
            (0, 1, Sign::Positive, 0.4),
            (1, 2, Sign::Positive, 0.5),
            (2, 0, Sign::Negative, 0.6),
            (0, 3, Sign::Negative, 0.2),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        // 130 = 2 full batches + a ragged 2-lane tail.
        for runs in [1, 63, 64, 65, 130] {
            let wide = estimate_infection_probabilities_wide(&model, &g, &seeds, runs, 42).unwrap();
            let reference =
                estimate_infection_probabilities_wide_reference(&model, &g, &seeds, runs, 42)
                    .unwrap();
            assert_eq!(wide, reference, "runs={runs}");
        }
    }

    #[test]
    fn wide_estimate_agrees_with_closed_form() {
        // Single boosted edge: P(infect) = min(1, α·w) = 0.9.
        let g = g(&[(0, 1, Sign::Positive, 0.3)]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(3.0).unwrap();
        let est = estimate_infection_probabilities_wide(&model, &g, &seeds, 20_000, 5).unwrap();
        let p = est.infection_probability(NodeId(1));
        assert!((p - 0.9).abs() < 0.02, "estimated {p}");
        assert_eq!(est.runs(), 20_000);
    }

    #[test]
    fn distinct_master_seeds_give_distinct_estimates() {
        let g = g(&[(0, 1, Sign::Positive, 0.5), (1, 2, Sign::Negative, 0.5)]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(1.0).unwrap();
        let a = estimate_infection_probabilities_wide(&model, &g, &seeds, 300, 1).unwrap();
        let b = estimate_infection_probabilities_wide(&model, &g, &seeds, 300, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn truncation_reports_per_lane() {
        // Deterministic chain cut off by the round cap: every lane
        // still has a frontier when the cap hits, so all 8 lanes must
        // report truncation; without the cap none do.
        let g = g(&[
            (0, 1, Sign::Positive, 0.5),
            (1, 2, Sign::Positive, 0.5),
            (2, 3, Sign::Positive, 0.5),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let keys: Vec<u64> = (0..8).map(|t| wide_lane_key(3, t)).collect();
        let capped = Mfc::new(2.0).unwrap().with_max_rounds(2);
        let batch = simulate_wide(&capped, &g, &seeds, &keys).unwrap();
        assert_eq!(batch.truncated_lanes(), 0xFF);
        assert_eq!(batch.lane_infected_count(0), 3); // 0, 1, 2 reached; 3 not.
        let uncapped = Mfc::new(2.0).unwrap();
        let batch = simulate_wide(&uncapped, &g, &seeds, &keys).unwrap();
        assert_eq!(batch.truncated_lanes(), 0);
        assert_eq!(batch.lane_infected_count(0), 4);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let g = g(&[(0, 1, Sign::Positive, 0.5)]);
        let model = Mfc::new(2.0).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        assert!(simulate_wide(&model, &g, &seeds, &[]).is_err());
        assert!(simulate_wide(&model, &g, &seeds, &vec![1u64; 65]).is_err());
        let oob = SeedSet::single(NodeId(9), Sign::Positive);
        assert!(simulate_wide(&model, &g, &oob, &[1]).is_err());
        assert!(estimate_infection_probabilities_wide(&model, &g, &seeds, 0, 1).is_err());
    }

    #[test]
    fn empty_seed_set_infects_nothing() {
        let g = g(&[(0, 1, Sign::Positive, 1.0)]);
        let model = Mfc::new(2.0).unwrap();
        let batch = simulate_wide(&model, &g, &SeedSet::new(), &[1, 2, 3]).unwrap();
        assert_eq!(batch.lane_infected_count(0), 0);
        assert_eq!(batch.truncated_lanes(), 0);
    }

    #[test]
    fn lane_snapshot_matches_from_states() {
        let g = g(&[(0, 1, Sign::Positive, 1.0), (1, 2, Sign::Negative, 1.0)]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let batch = simulate_wide(&model, &g, &seeds, &[77]).unwrap();
        let snapshot = batch.lane_snapshot(&g, 0);
        assert_eq!(snapshot.node_count(), batch.lane_infected_count(0));
    }
}
