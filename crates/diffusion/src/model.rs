use crate::{Cascade, DiffusionError, SeedSet};
use isomit_graph::SignedDigraph;
use rand::RngCore;

/// A discrete-step information-diffusion model over a weighted signed
/// diffusion network.
///
/// Implementations simulate forward from a seed set and return the full
/// [`Cascade`] record. The trait is object-safe so harnesses can run a
/// heterogeneous collection of models:
///
/// ```
/// use isomit_diffusion::{DiffusionModel, IndependentCascade, Mfc};
///
/// # fn main() -> Result<(), isomit_diffusion::DiffusionError> {
/// let models: Vec<Box<dyn DiffusionModel>> = vec![
///     Box::new(Mfc::new(3.0)?),
///     Box::new(IndependentCascade::new()),
/// ];
/// assert_eq!(models.len(), 2);
/// # Ok(())
/// # }
/// ```
pub trait DiffusionModel: std::fmt::Debug {
    /// Human-readable model name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Runs one simulation of the model on `graph` starting from `seeds`.
    ///
    /// `graph` is interpreted as a *diffusion* network: an edge `(u, v)`
    /// means influence flows from `u` to `v` (callers reverse social
    /// networks first, per Definition 2 of the paper). Any `&mut rng`
    /// implementing [`rand::RngCore`] can be passed; it coerces to the
    /// trait object.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::SeedOutOfBounds`] if any seed is out of
    /// bounds for `graph` (every implementation validates via
    /// [`SeedSet::validate_against`] before touching the graph).
    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError>;
}

/// Draws a uniform `f64` in `[0, 1)` from any RNG, including through
/// `&mut dyn RngCore` (53-bit mantissa method).
#[inline]
pub(crate) fn gen_unit(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runs `runs` independent simulations and returns the average infected
/// count — the basic statistic of the paper's diffusion analyses.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `runs == 0`, or any
/// error of the underlying [`DiffusionModel::simulate`] calls.
pub fn mean_infected<M, R>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    rng: &mut R,
) -> Result<f64, DiffusionError>
where
    M: DiffusionModel + ?Sized,
    R: RngCore,
{
    if runs == 0 {
        return Err(DiffusionError::InvalidParameter {
            name: "runs",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    let mut total = 0usize;
    for _ in 0..runs {
        total += model.simulate(graph, seeds, rng)?.infected_count();
    }
    Ok(total as f64 / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mfc;
    use isomit_graph::{Edge, NodeId, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gen_unit_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = gen_unit(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_infected_on_deterministic_chain() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 1.0),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mean = mean_infected(&model, &g, &seeds, 4, &mut rng).unwrap();
        assert!((mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_infected_rejects_zero_runs() {
        let g = SignedDigraph::from_edges(1, []).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = mean_infected(&model, &g, &seeds, 0, &mut rng).unwrap_err();
        assert!(err.to_string().contains("runs"));
    }
}
