use crate::{Cascade, SeedSet};
use isomit_graph::SignedDigraph;
use rand::RngCore;

/// A discrete-step information-diffusion model over a weighted signed
/// diffusion network.
///
/// Implementations simulate forward from a seed set and return the full
/// [`Cascade`] record. The trait is object-safe so harnesses can run a
/// heterogeneous collection of models:
///
/// ```
/// use isomit_diffusion::{DiffusionModel, IndependentCascade, Mfc};
///
/// # fn main() -> Result<(), isomit_diffusion::DiffusionError> {
/// let models: Vec<Box<dyn DiffusionModel>> = vec![
///     Box::new(Mfc::new(3.0)?),
///     Box::new(IndependentCascade::new()),
/// ];
/// assert_eq!(models.len(), 2);
/// # Ok(())
/// # }
/// ```
pub trait DiffusionModel: std::fmt::Debug {
    /// Human-readable model name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Runs one simulation of the model on `graph` starting from `seeds`.
    ///
    /// `graph` is interpreted as a *diffusion* network: an edge `(u, v)`
    /// means influence flows from `u` to `v` (callers reverse social
    /// networks first, per Definition 2 of the paper). Any `&mut rng`
    /// implementing [`rand::RngCore`] can be passed; it coerces to the
    /// trait object.
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of bounds for `graph`; validate with
    /// [`SeedSet::validate_against`] when the seed set is untrusted.
    fn simulate(&self, graph: &SignedDigraph, seeds: &SeedSet, rng: &mut dyn RngCore) -> Cascade;
}

/// Draws a uniform `f64` in `[0, 1)` from any RNG, including through
/// `&mut dyn RngCore` (53-bit mantissa method).
#[inline]
pub(crate) fn gen_unit(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runs `runs` independent simulations and returns the average infected
/// count — the basic statistic of the paper's diffusion analyses.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn mean_infected<M, R>(
    model: &M,
    graph: &SignedDigraph,
    seeds: &SeedSet,
    runs: usize,
    rng: &mut R,
) -> f64
where
    M: DiffusionModel + ?Sized,
    R: RngCore,
{
    assert!(runs > 0, "runs must be positive");
    let total: usize = (0..runs)
        .map(|_| model.simulate(graph, seeds, rng).infected_count())
        .sum();
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mfc;
    use isomit_graph::{Edge, NodeId, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gen_unit_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = gen_unit(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_infected_on_deterministic_chain() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 1.0),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mean = mean_infected(&model, &g, &seeds, 4, &mut rng);
        assert!((mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "runs must be positive")]
    fn mean_infected_rejects_zero_runs() {
        let g = SignedDigraph::from_edges(1, []).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        mean_infected(&model, &g, &seeds, 0, &mut rng);
    }
}
