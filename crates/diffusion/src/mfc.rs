use crate::model::gen_unit;
use crate::{ActivationEvent, Cascade, DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeState, Sign, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The paper's **asyMmetric Flipping Cascade** model (Algorithm 1).
///
/// MFC extends the Independent Cascade model to signed, state-carrying
/// networks with two rules (§III-A2):
///
/// 1. **Asymmetric boosting** — a positive (trust) edge `(u, v)` succeeds
///    with probability `min(1, α·w(u, v))` where `α > 1` is the boosting
///    coefficient; a negative (distrust) edge succeeds with the raw
///    weight `w(u, v)`.
/// 2. **Flipping** — a node that is already active can be re-activated
///    (its opinion flipped) by a neighbour it *trusts* (positive edge)
///    holding a different opinion; distrusted neighbours can never flip
///    it.
///
/// On success, the target's state becomes `s(v) = s(u) · s_D(u, v)`.
/// Each node activated at round `τ − 1` gets exactly one attempt per
/// out-neighbour at round `τ`; a node re-enters the frontier whenever its
/// state changes, with a fresh set of attempts — the flip made it a
/// "newly activated" user again.
///
/// A safety cap on rounds (default [`Mfc::DEFAULT_MAX_ROUNDS`]) guards
/// against flip oscillations: when boosted probabilities reach exactly 1
/// on a positive cycle, a single contrarian injection creates a flip
/// wave that chases itself around the cycle forever — MFC as specified
/// by the paper does not terminate on such inputs (it terminates with
/// probability 1 whenever every success probability is below 1).
/// [`Cascade::truncated`] reports whether the cap was hit.
///
/// ```
/// use isomit_diffusion::{DiffusionModel, Mfc, SeedSet};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 0 -(+)-> 1 -(-)-> 2: node 1 adopts +1, node 2 adopts −1.
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
///         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
///     ],
/// )?;
/// let seeds = SeedSet::single(NodeId(0), Sign::Positive);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cascade = Mfc::new(3.0)?.simulate(&g, &seeds, &mut rng)?;
/// assert_eq!(cascade.state(NodeId(2)).opinion(), Some(-1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mfc {
    alpha: f64,
    max_rounds: usize,
}

impl Mfc {
    /// Default safety cap on diffusion rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 1_000_000;

    /// Creates an MFC model with asymmetric boosting coefficient `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless
    /// `alpha >= 1` and finite (the paper requires `α > 1` for genuine
    /// asymmetry; `α = 1` degenerates to sign-aware IC with flipping and
    /// is accepted for ablations).
    pub fn new(alpha: f64) -> Result<Self, DiffusionError> {
        if !alpha.is_finite() || alpha < 1.0 {
            return Err(DiffusionError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and >= 1",
            });
        }
        Ok(Mfc {
            alpha,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        })
    }

    /// Replaces the safety cap on diffusion rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        assert!(max_rounds > 0, "max_rounds must be positive");
        self.max_rounds = max_rounds;
        self
    }

    /// The asymmetric boosting coefficient `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The safety cap on diffusion rounds (see
    /// [`with_max_rounds`](Mfc::with_max_rounds)).
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The boosted success probability of an edge: `min(1, α·w)` if
    /// positive, `w` otherwise (the paper's `w̄_D`).
    #[inline]
    pub fn boosted_probability(&self, sign: Sign, weight: f64) -> f64 {
        match sign {
            Sign::Positive => (self.alpha * weight).min(1.0),
            Sign::Negative => weight,
        }
    }
}

impl DiffusionModel for Mfc {
    fn name(&self) -> &'static str {
        "MFC"
    }

    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError> {
        seeds.validate_against(graph)?;
        let mut cascade = Cascade::new(graph.node_count(), seeds);
        // Frontier of nodes activated (or flipped) in the previous round.
        let mut frontier: Vec<isomit_graph::NodeId> = seeds.nodes().collect();
        let mut in_next = vec![false; graph.node_count()];
        let mut rounds = 0usize;
        let mut truncated = false;

        while !frontier.is_empty() {
            rounds += 1;
            if rounds > self.max_rounds {
                truncated = true;
                break;
            }
            let mut next = Vec::new();
            for &u in &frontier {
                let su = match cascade.state(u).sign() {
                    Some(s) => s,
                    // A frontier node can have been flipped later in the
                    // same round it was activated; it still spreads its
                    // *current* state. Inactive is impossible here.
                    None => unreachable!("frontier node is always active"),
                };
                for e in graph.out_edges(u) {
                    let sv = cascade.state(e.dst);
                    // Algorithm 1, line 8: attempt iff v is inactive, or v
                    // is active with a different opinion and trusts u
                    // (positive diffusion edge u -> v).
                    let eligible = match sv {
                        NodeState::Inactive => true,
                        NodeState::Positive | NodeState::Negative => {
                            e.sign.is_positive() && sv.sign() != Some(su)
                        }
                        NodeState::Unknown => {
                            unreachable!("simulation never produces unknown states")
                        }
                    };
                    if !eligible {
                        continue;
                    }
                    let p = self.boosted_probability(e.sign, e.weight);
                    if gen_unit(rng) < p {
                        let new_state = su * e.sign;
                        let flip = sv.is_active();
                        cascade.record(ActivationEvent {
                            step: rounds,
                            src: u,
                            dst: e.dst,
                            new_state,
                            flip,
                        });
                        let seen = in_next
                            .get_mut(e.dst.index())
                            .expect("in_next has node_count entries and e.dst is a CSR node");
                        if !*seen {
                            *seen = true;
                            next.push(e.dst);
                        }
                    }
                }
            }
            for &v in &next {
                *in_next
                    .get_mut(v.index())
                    .expect("in_next has node_count entries and v was pushed from the CSR") = false;
            }
            frontier = next;
        }
        cascade.finish(rounds.min(self.max_rounds), truncated);
        Ok(cascade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn g(edges: &[(u32, u32, Sign, f64)]) -> SignedDigraph {
        SignedDigraph::from_edges(
            0,
            edges
                .iter()
                .map(|&(a, b, s, w)| Edge::new(NodeId(a), NodeId(b), s, w)),
        )
        .unwrap()
    }

    #[test]
    fn rejects_alpha_below_one() {
        assert!(Mfc::new(0.99).is_err());
        assert!(Mfc::new(f64::NAN).is_err());
        assert!(Mfc::new(1.0).is_ok());
    }

    #[test]
    fn boosted_probability_caps_at_one() {
        let m = Mfc::new(3.0).unwrap();
        assert!((m.boosted_probability(Sign::Positive, 0.2) - 0.6).abs() < 1e-12);
        assert!((m.boosted_probability(Sign::Positive, 0.5) - 1.0).abs() < 1e-12);
        assert!((m.boosted_probability(Sign::Negative, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_propagates_by_sign_product() {
        // + edge keeps the opinion, - edge flips it.
        let g = g(&[
            (0, 1, Sign::Positive, 1.0),
            (1, 2, Sign::Negative, 1.0),
            (2, 3, Sign::Negative, 1.0),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Positive);
        assert_eq!(c.state(NodeId(2)), NodeState::Negative);
        assert_eq!(c.state(NodeId(3)), NodeState::Positive);
        assert_eq!(c.rounds(), 4); // 3 productive rounds + 1 empty check
        assert!(!c.truncated());
    }

    #[test]
    fn zero_weight_edges_never_fire() {
        let g = g(&[(0, 1, Sign::Positive, 0.0)]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        for s in 0..20 {
            let c = Mfc::new(10.0)
                .unwrap()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap();
            assert_eq!(c.infected_count(), 1);
        }
    }

    #[test]
    fn boosting_rescues_weak_positive_edges() {
        // w = 0.34, alpha = 3 → p ≈ 1.0 for positive, stays 0.34 negative.
        let g = g(&[(0, 1, Sign::Positive, 0.34)]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(3.0).unwrap();
        let hits = (0..200)
            .filter(|&s| {
                model
                    .simulate(&g, &seeds, &mut rng(s))
                    .unwrap()
                    .infected_count()
                    == 2
            })
            .count();
        assert!(
            hits > 195,
            "boosted edge should almost always fire, got {hits}"
        );
    }

    #[test]
    fn flipping_only_over_positive_links() {
        // Node 2 is seeded negative; node 0 (positive seed) reaches it via
        // a negative edge → cannot flip. Via positive edge → can flip.
        let negative_path = g(&[(0, 2, Sign::Negative, 1.0)]);
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(2), Sign::Negative)])
            .unwrap();
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&negative_path, &seeds, &mut rng(1))
            .unwrap();
        assert_eq!(
            c.state(NodeId(2)),
            NodeState::Negative,
            "distrust cannot flip"
        );
        assert_eq!(c.flip_count(), 0);

        let positive_path = g(&[(0, 2, Sign::Positive, 1.0)]);
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&positive_path, &seeds, &mut rng(1))
            .unwrap();
        assert_eq!(c.state(NodeId(2)), NodeState::Positive, "trust flips");
        assert_eq!(c.flip_count(), 1);
        // A flip does not reset the first parent (node 2 is a seed: none).
        assert_eq!(c.first_parent(NodeId(2)), None);
        assert_eq!(c.last_parent(NodeId(2)), Some(NodeId(0)));
    }

    #[test]
    fn same_state_neighbors_are_not_reattempted() {
        // 0 (+) and 1 (+) both seeded; positive edge 0 -> 1 is ineligible.
        let g = g(&[(0, 1, Sign::Positive, 1.0)]);
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Positive)])
            .unwrap();
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert!(c.events().is_empty());
    }

    #[test]
    fn flipped_node_respreads_its_new_state() {
        // 0 (+) -> 1 (-, seeded) over trust; after the flip, 1 spreads +1
        // to 2 over a trust edge.
        let g = g(&[(0, 1, Sign::Positive, 1.0), (1, 2, Sign::Positive, 1.0)]);
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Negative)])
            .unwrap();
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(3))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Positive);
        assert_eq!(c.state(NodeId(2)), NodeState::Positive);
        // Round 1: node 1 (still −1) may already activate 2 with −1, then
        // gets flipped; round 2: node 1 re-spreads +1 and flips 2.
        assert!(c.flip_count() >= 1);
    }

    #[test]
    fn simulation_is_deterministic_given_seed() {
        let g = g(&[
            (0, 1, Sign::Positive, 0.5),
            (0, 2, Sign::Negative, 0.5),
            (1, 3, Sign::Positive, 0.5),
            (2, 3, Sign::Positive, 0.5),
            (3, 4, Sign::Negative, 0.5),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Mfc::new(3.0).unwrap();
        let a = model.simulate(&g, &seeds, &mut rng(42)).unwrap();
        let b = model.simulate(&g, &seeds, &mut rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn flip_wave_oscillates_forever() {
        // Positive 3-cycle with boosted probability 1 everywhere, plus a
        // one-shot negative seed injecting a contrarian opinion: the "-"
        // wave chases the "+" wave around the cycle without ever
        // converging. This is inherent to the paper's Algorithm 1, not
        // an implementation artifact; the round cap is the mitigation.
        let g = g(&[
            (0, 1, Sign::Positive, 0.9),
            (1, 2, Sign::Positive, 0.9),
            (2, 0, Sign::Positive, 0.9),
            (3, 2, Sign::Positive, 0.9),
        ]);
        let seeds = SeedSet::from_pairs([(NodeId(2), Sign::Positive), (NodeId(3), Sign::Negative)])
            .unwrap();
        let c = Mfc::new(2.0)
            .unwrap()
            .with_max_rounds(1_000)
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert!(c.truncated(), "flip wave should outlive any finite cap");
        assert!(c.flip_count() > 500, "one flip per wave step expected");
    }

    #[test]
    fn max_rounds_cap_reports_truncation() {
        let g = g(&[
            (0, 1, Sign::Positive, 1.0),
            (1, 2, Sign::Positive, 1.0),
            (2, 3, Sign::Positive, 1.0),
        ]);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = Mfc::new(2.0)
            .unwrap()
            .with_max_rounds(2)
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert!(c.truncated());
        assert_eq!(c.rounds(), 2);
        assert_eq!(c.infected_count(), 3); // 0, 1, 2 reached; 3 not.
    }

    #[test]
    fn out_of_bounds_seed_is_rejected() {
        let g = g(&[(0, 1, Sign::Positive, 1.0)]);
        let seeds = SeedSet::single(NodeId(9), Sign::Positive);
        let err = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn empty_seed_set_infects_nothing() {
        let g = g(&[(0, 1, Sign::Positive, 1.0)]);
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &SeedSet::new(), &mut rng(0))
            .unwrap();
        assert_eq!(c.infected_count(), 0);
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    fn infected_monotone_in_alpha_statistically() {
        // Higher alpha should never shrink average reach on a
        // positive-edge network.
        let edges: Vec<(u32, u32, Sign, f64)> = (0..30)
            .flat_map(|i| {
                [
                    (i, (i + 1) % 30, Sign::Positive, 0.15),
                    (i, (i + 7) % 30, Sign::Positive, 0.15),
                ]
            })
            .collect();
        let g = g(&edges);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let mut total_low = 0usize;
        let mut total_high = 0usize;
        for s in 0..200 {
            total_low += Mfc::new(1.0)
                .unwrap()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap()
                .infected_count();
            total_high += Mfc::new(4.0)
                .unwrap()
                .simulate(&g, &seeds, &mut rng(s))
                .unwrap()
                .infected_count();
        }
        assert!(
            total_high > total_low,
            "alpha=4 reach {total_high} should exceed alpha=1 reach {total_low}"
        );
    }
}
