use crate::DiffusionError;
use isomit_graph::{NodeId, Sign, SignedDigraph};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A set of rumor initiators with their initial opinions — the paper's
/// `(I, S)` pair.
///
/// Seed sets are ordered (simulation processes them in insertion order for
/// determinism) and contain no duplicate nodes.
///
/// ```
/// use isomit_diffusion::SeedSet;
/// use isomit_graph::{NodeId, Sign};
///
/// # fn main() -> Result<(), isomit_diffusion::DiffusionError> {
/// let seeds = SeedSet::from_pairs([
///     (NodeId(3), Sign::Positive),
///     (NodeId(7), Sign::Negative),
/// ])?;
/// assert_eq!(seeds.len(), 2);
/// assert_eq!(seeds.state_of(NodeId(7)), Some(Sign::Negative));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SeedSet {
    seeds: Vec<(NodeId, Sign)>,
}

impl SeedSet {
    /// Creates an empty seed set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a seed set holding a single initiator.
    pub fn single(node: NodeId, state: Sign) -> Self {
        SeedSet {
            seeds: vec![(node, state)],
        }
    }

    /// Builds a seed set from `(node, initial state)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::DuplicateSeed`] if a node appears twice.
    pub fn from_pairs<I>(pairs: I) -> Result<Self, DiffusionError>
    where
        I: IntoIterator<Item = (NodeId, Sign)>,
    {
        let mut seen = BTreeSet::new();
        let mut seeds = Vec::new();
        for (node, state) in pairs {
            if !seen.insert(node) {
                return Err(DiffusionError::DuplicateSeed(node));
            }
            seeds.push((node, state));
        }
        Ok(SeedSet { seeds })
    }

    /// Samples `n` distinct initiators uniformly at random from `graph`
    /// and assigns `⌈n·positive_ratio⌉` of them the positive state — the
    /// paper's experimental setup (§IV-B3, parameters `N` and `θ`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of nodes or if `positive_ratio`
    /// is outside `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(
        graph: &SignedDigraph,
        n: usize,
        positive_ratio: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            n <= graph.node_count(),
            "cannot sample {n} seeds from {} nodes",
            graph.node_count()
        );
        assert!(
            (0.0..=1.0).contains(&positive_ratio),
            "positive_ratio {positive_ratio} must lie in [0, 1]"
        );
        let mut nodes: Vec<NodeId> = graph.nodes().collect();
        nodes.shuffle(rng);
        nodes.truncate(n);
        let positives = (n as f64 * positive_ratio).round() as usize;
        let seeds = nodes
            .into_iter()
            .enumerate()
            .map(|(i, node)| {
                let sign = if i < positives {
                    Sign::Positive
                } else {
                    Sign::Negative
                };
                (node, sign)
            })
            .collect();
        SeedSet { seeds }
    }

    /// Number of initiators.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// `true` if there are no initiators.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Iterates over `(node, initial state)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Sign)> + '_ {
        self.seeds.iter().copied()
    }

    /// The initiator nodes, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.seeds.iter().map(|&(n, _)| n)
    }

    /// Initial state of `node`, if it is an initiator.
    pub fn state_of(&self, node: NodeId) -> Option<Sign> {
        self.seeds
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, s)| s)
    }

    /// `true` if `node` is one of the initiators.
    pub fn contains(&self, node: NodeId) -> bool {
        self.state_of(node).is_some()
    }

    /// Validates the seed set against a network.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::SeedOutOfBounds`] if any seed lies
    /// outside `graph`.
    pub fn validate_against(&self, graph: &SignedDigraph) -> Result<(), DiffusionError> {
        for (node, _) in self.iter() {
            if !graph.contains(node) {
                return Err(DiffusionError::SeedOutOfBounds {
                    node,
                    node_count: graph.node_count(),
                });
            }
        }
        Ok(())
    }

    /// Fraction of initiators with the positive state; `0.0` when empty.
    pub fn positive_ratio(&self) -> f64 {
        if self.seeds.is_empty() {
            return 0.0;
        }
        let pos = self.seeds.iter().filter(|(_, s)| s.is_positive()).count();
        pos as f64 / self.seeds.len() as f64
    }
}

impl FromIterator<(NodeId, Sign)> for SeedSet {
    /// Collects pairs into a seed set, panicking on duplicates. Use
    /// [`SeedSet::from_pairs`] for fallible construction.
    fn from_iter<T: IntoIterator<Item = (NodeId, Sign)>>(iter: T) -> Self {
        SeedSet::from_pairs(iter).expect("duplicate seed in FromIterator")
    }
}

impl<'a> IntoIterator for &'a SeedSet {
    type Item = (NodeId, Sign);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (NodeId, Sign)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.seeds.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, SignedDigraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(n: usize) -> SignedDigraph {
        let mut b = SignedDigraphBuilder::with_nodes(n);
        b.extend(
            (0..n as u32 - 1).map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Positive, 0.5)),
        );
        b.build()
    }

    #[test]
    fn duplicate_seed_rejected() {
        let err = SeedSet::from_pairs([(NodeId(1), Sign::Positive), (NodeId(1), Sign::Negative)])
            .unwrap_err();
        assert_eq!(err, DiffusionError::DuplicateSeed(NodeId(1)));
    }

    #[test]
    fn sample_respects_count_and_ratio() {
        let g = graph(100);
        let mut rng = StdRng::seed_from_u64(1);
        let seeds = SeedSet::sample(&g, 40, 0.25, &mut rng);
        assert_eq!(seeds.len(), 40);
        let positives = seeds.iter().filter(|(_, s)| s.is_positive()).count();
        assert_eq!(positives, 10);
        // Distinct nodes.
        let distinct: BTreeSet<_> = seeds.nodes().collect();
        assert_eq!(distinct.len(), 40);
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let g = graph(50);
        let a = SeedSet::sample(&g, 10, 0.5, &mut StdRng::seed_from_u64(9));
        let b = SeedSet::sample(&g, 10, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_extreme_ratios() {
        let g = graph(10);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((SeedSet::sample(&g, 5, 1.0, &mut rng).positive_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(SeedSet::sample(&g, 5, 0.0, &mut rng).positive_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_too_many_panics() {
        let g = graph(5);
        SeedSet::sample(&g, 6, 0.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn validate_detects_out_of_bounds() {
        let g = graph(5);
        let seeds = SeedSet::single(NodeId(99), Sign::Positive);
        assert!(matches!(
            seeds.validate_against(&g),
            Err(DiffusionError::SeedOutOfBounds { .. })
        ));
        assert!(SeedSet::single(NodeId(4), Sign::Positive)
            .validate_against(&g)
            .is_ok());
    }

    #[test]
    fn lookup_helpers() {
        let seeds = SeedSet::from_pairs([(NodeId(2), Sign::Negative)]).unwrap();
        assert!(seeds.contains(NodeId(2)));
        assert!(!seeds.contains(NodeId(3)));
        assert_eq!(seeds.state_of(NodeId(2)), Some(Sign::Negative));
        assert!(!seeds.is_empty());
        assert!(SeedSet::new().is_empty());
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let pairs = [
            (NodeId(5), Sign::Positive),
            (NodeId(1), Sign::Negative),
            (NodeId(9), Sign::Positive),
        ];
        let seeds: SeedSet = pairs.into_iter().collect();
        let back: Vec<_> = (&seeds).into_iter().collect();
        assert_eq!(back, pairs);
    }
}
