//! # isomit-diffusion
//!
//! Information-diffusion models for weighted signed directed networks,
//! reproducing §III-A of *Rumor Initiator Detection in Infected Signed
//! Networks* (ICDCS 2017).
//!
//! The centrepiece is the paper's **MFC** (asyMmetric Flipping Cascade)
//! model ([`Mfc`], the paper's Algorithm 1), in which
//!
//! * positive (trust) links get their activation probability *boosted* by
//!   the asymmetric coefficient `α > 1` (`p = min(1, α·w)`), while negative
//!   (distrust) links activate with the raw weight `w`;
//! * an activated node's opinion is the product of its activator's opinion
//!   and the link sign (`s(v) = s(u)·s_D(u, v)`);
//! * already-active nodes can be *flipped* by trusted neighbours holding
//!   the opposite opinion (only over positive links).
//!
//! Four reference models from the literature the paper builds on are also
//! provided for comparison: [`IndependentCascade`], [`LinearThreshold`],
//! [`Sir`], and [`PolarityIc`]. All models implement the
//! [`DiffusionModel`] trait and produce a [`Cascade`], from which the
//! infected snapshot handed to the detection side ([`InfectedNetwork`]) is
//! extracted.
//!
//! # Example
//!
//! ```
//! use isomit_diffusion::{DiffusionModel, Mfc, SeedSet};
//! use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let diffusion = SignedDigraph::from_edges(
//!     3,
//!     [
//!         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
//!         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
//!     ],
//! )?;
//! let seeds = SeedSet::single(NodeId(0), Sign::Positive);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cascade = Mfc::new(3.0)?.simulate(&diffusion, &seeds, &mut rng)?;
//! assert_eq!(cascade.infected_count(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cascade;
mod error;
mod ic;
mod infected;
mod influence;
mod json;
mod lt;
mod mfc;
mod model;
mod montecarlo;
mod pic;
mod seed;
mod sir;
mod timeline;
mod wide;

pub use cascade::{ActivationEvent, Cascade};
pub use error::DiffusionError;
pub use ic::IndependentCascade;
pub use infected::InfectedNetwork;
pub use influence::{maximize_influence, InfluenceResult};
pub use lt::LinearThreshold;
pub use mfc::Mfc;
pub use model::{mean_infected, DiffusionModel};
pub use montecarlo::{
    estimate_infection_probabilities, estimate_infection_probabilities_seeded,
    par_estimate_infection_probabilities, InfectionEstimate,
};
pub use pic::PolarityIc;
pub use seed::SeedSet;
pub use sir::Sir;
pub use timeline::{CascadeTimeline, RoundStats};
pub use wide::{
    estimate_infection_probabilities_wide, estimate_infection_probabilities_wide_reference,
    par_estimate_infection_probabilities_wide, simulate_wide, simulate_wide_reference,
    wide_lane_key, WideBatch, WideSimulator, MAX_LANES,
};
