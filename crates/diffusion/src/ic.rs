use crate::model::gen_unit;
use crate::{ActivationEvent, Cascade, DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeState, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The classic **Independent Cascade** model of Kempe, Kleinberg & Tardos
/// (KDD 2003), the unsigned baseline the paper contrasts MFC with
/// (§III-A1).
///
/// IC ignores link polarity for the *dynamics*: every edge `(u, v)` fires
/// with its raw weight `w(u, v)`, there is no boosting, and activated
/// nodes can never be re-activated (no flipping). To keep the resulting
/// snapshot comparable with signed models, the adopted opinion still
/// follows the sign product `s(v) = s(u)·s_D(u, v)` — the paper's Figure 2
/// discussion treats IC as blind to signs only in *who activates whom*.
///
/// ```
/// use isomit_diffusion::{DiffusionModel, IndependentCascade, SeedSet};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)],
/// )?;
/// let seeds = SeedSet::single(NodeId(0), Sign::Positive);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let c = IndependentCascade::new().simulate(&g, &seeds, &mut rng)?;
/// assert_eq!(c.infected_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IndependentCascade {
    _private: (),
}

impl IndependentCascade {
    /// Creates the parameter-free IC model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiffusionModel for IndependentCascade {
    fn name(&self) -> &'static str {
        "IC"
    }

    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError> {
        seeds.validate_against(graph)?;
        let mut cascade = Cascade::new(graph.node_count(), seeds);
        let mut frontier: Vec<isomit_graph::NodeId> = seeds.nodes().collect();
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            rounds += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                let su = match cascade.state(u).sign() {
                    Some(s) => s,
                    None => unreachable!("frontier node is always active"),
                };
                for e in graph.out_edges(u) {
                    if cascade.state(e.dst) != NodeState::Inactive {
                        continue; // once active, forever active — no flips
                    }
                    if gen_unit(rng) < e.weight {
                        cascade.record(ActivationEvent {
                            step: rounds,
                            src: u,
                            dst: e.dst,
                            new_state: su * e.sign,
                            flip: false,
                        });
                        next.push(e.dst);
                    }
                }
            }
            frontier = next;
        }
        cascade.finish(rounds, false);
        Ok(cascade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn no_boosting_in_ic() {
        // A 0.3-weight positive edge fires ~30% of the time in IC even
        // though MFC at alpha=3 would fire ~90%.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.3)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = IndependentCascade::new();
        let hits = (0..2000)
            .filter(|&s| {
                model
                    .simulate(&g, &seeds, &mut rng(s))
                    .unwrap()
                    .infected_count()
                    == 2
            })
            .count();
        let rate = hits as f64 / 2000.0;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "empirical rate {rate} far from 0.3"
        );
    }

    #[test]
    fn no_flipping_in_ic() {
        // Both seeded with opposite opinions over a strong trust edge:
        // IC never revisits an active node.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Negative)])
            .unwrap();
        let c = IndependentCascade::new()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Negative);
        assert_eq!(c.flip_count(), 0);
    }

    #[test]
    fn opinion_follows_sign_product() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Negative, 1.0),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = IndependentCascade::new()
            .simulate(&g, &seeds, &mut rng(5))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Negative);
        assert_eq!(c.state(NodeId(2)), NodeState::Positive);
    }

    #[test]
    fn one_chance_per_edge() {
        // With weight 0, node 1 is never activated no matter how many
        // rounds elapse elsewhere.
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.0),
                Edge::new(NodeId(0), NodeId(2), Sign::Positive, 1.0),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = IndependentCascade::new()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Inactive);
        assert_eq!(c.state(NodeId(2)), NodeState::Positive);
    }
}
