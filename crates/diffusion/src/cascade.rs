// lint:allow-file(indexing) state/parent vectors are allocated with node_count entries; seeds are validated against the graph, event nodes come from the CSR, and the pub accessors document their out-of-bounds panic
use crate::SeedSet;
use isomit_graph::{NodeId, NodeState, Sign};
use serde::{Deserialize, Serialize};

/// One successful activation (or flip) during a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationEvent {
    /// Diffusion round in which the activation happened (seeds are
    /// round 0; their first attempts land in round 1).
    pub step: usize,
    /// The activating node.
    pub src: NodeId,
    /// The activated (or flipped) node.
    pub dst: NodeId,
    /// State of `dst` after the event.
    pub new_state: Sign,
    /// `true` if `dst` was already active and had its opinion flipped,
    /// `false` for a first activation.
    pub flip: bool,
}

/// Complete record of one diffusion simulation: final states, the
/// activation log, and parent pointers for cascade-tree reconstruction.
///
/// Two parent notions coexist because of MFC's flipping rule:
///
/// * [`first_parent`](Cascade::first_parent) — who *first* activated the
///   node. First activations strictly follow time, so these pointers
///   always form a forest rooted at the seeds.
/// * [`last_parent`](Cascade::last_parent) — who set the node's *final*
///   state (the paper's *activation link*, Definition 4). Under flipping
///   these can in rare interleavings form 2-cycles, which is why the
///   ground-truth forest helpers use first parents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cascade {
    states: Vec<NodeState>,
    first_parent: Vec<Option<NodeId>>,
    last_parent: Vec<Option<NodeId>>,
    events: Vec<ActivationEvent>,
    seeds: SeedSet,
    rounds: usize,
    truncated: bool,
}

impl Cascade {
    pub(crate) fn new(node_count: usize, seeds: &SeedSet) -> Self {
        let mut states = vec![NodeState::Inactive; node_count];
        for (node, sign) in seeds.iter() {
            states[node.index()] = NodeState::from_sign(sign);
        }
        Cascade {
            states,
            first_parent: vec![None; node_count],
            last_parent: vec![None; node_count],
            events: Vec::new(),
            seeds: seeds.clone(),
            rounds: 0,
            truncated: false,
        }
    }

    pub(crate) fn record(&mut self, event: ActivationEvent) {
        let dst = event.dst.index();
        if self.first_parent[dst].is_none() && !self.seeds.contains(event.dst) {
            self.first_parent[dst] = Some(event.src);
        }
        self.last_parent[dst] = Some(event.src);
        self.states[dst] = NodeState::from_sign(event.new_state);
        self.events.push(event);
    }

    pub(crate) fn finish(&mut self, rounds: usize, truncated: bool) {
        self.rounds = rounds;
        self.truncated = truncated;
    }

    /// Final state of every node, indexed by node id.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// Final state of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn state(&self, node: NodeId) -> NodeState {
        self.states[node.index()]
    }

    /// The seed set that started the cascade.
    pub fn seeds(&self) -> &SeedSet {
        &self.seeds
    }

    /// Nodes holding an opinion at the end of the simulation, ascending.
    pub fn infected_nodes(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_active())
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Number of infected (opinion-holding) nodes.
    pub fn infected_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_active()).count()
    }

    /// The node that first activated `node`, `None` for seeds and
    /// never-activated nodes.
    pub fn first_parent(&self, node: NodeId) -> Option<NodeId> {
        self.first_parent[node.index()]
    }

    /// The node whose activation/flip produced `node`'s final state,
    /// `None` for seeds that were never flipped and for inactive nodes.
    pub fn last_parent(&self, node: NodeId) -> Option<NodeId> {
        self.last_parent[node.index()]
    }

    /// Every successful activation/flip, in chronological order.
    pub fn events(&self) -> &[ActivationEvent] {
        &self.events
    }

    /// Number of completed diffusion rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// `true` if the simulation stopped at the safety round cap rather
    /// than by quiescence. See [`Mfc::with_max_rounds`](crate::Mfc::with_max_rounds).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of flip events (opinion reversals of already-active nodes).
    pub fn flip_count(&self) -> usize {
        self.events.iter().filter(|e| e.flip).count()
    }

    /// Edges of the ground-truth cascade forest: `(first_parent(v), v)`
    /// for every non-seed infected node. The result is acyclic by
    /// construction (first activations strictly follow time).
    pub fn forest_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.first_parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|parent| (parent, NodeId::from_index(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> SeedSet {
        SeedSet::from_pairs([(NodeId(0), Sign::Positive)]).unwrap()
    }

    #[test]
    fn new_cascade_marks_seeds_active() {
        let c = Cascade::new(3, &seeds());
        assert_eq!(c.state(NodeId(0)), NodeState::Positive);
        assert_eq!(c.state(NodeId(1)), NodeState::Inactive);
        assert_eq!(c.infected_count(), 1);
        assert_eq!(c.infected_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn record_tracks_first_and_last_parents() {
        let mut c = Cascade::new(3, &seeds());
        c.record(ActivationEvent {
            step: 1,
            src: NodeId(0),
            dst: NodeId(1),
            new_state: Sign::Negative,
            flip: false,
        });
        c.record(ActivationEvent {
            step: 2,
            src: NodeId(2),
            dst: NodeId(1),
            new_state: Sign::Positive,
            flip: true,
        });
        assert_eq!(c.first_parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.last_parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(c.state(NodeId(1)), NodeState::Positive);
        assert_eq!(c.flip_count(), 1);
        assert_eq!(c.events().len(), 2);
    }

    #[test]
    fn seeds_never_get_first_parent() {
        let mut c = Cascade::new(2, &seeds());
        c.record(ActivationEvent {
            step: 3,
            src: NodeId(1),
            dst: NodeId(0),
            new_state: Sign::Negative,
            flip: true,
        });
        assert_eq!(c.first_parent(NodeId(0)), None);
        assert_eq!(c.last_parent(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn forest_edges_skip_seeds_and_inactive() {
        let mut c = Cascade::new(4, &seeds());
        c.record(ActivationEvent {
            step: 1,
            src: NodeId(0),
            dst: NodeId(2),
            new_state: Sign::Positive,
            flip: false,
        });
        assert_eq!(c.forest_edges(), vec![(NodeId(0), NodeId(2))]);
    }

    #[test]
    fn finish_records_rounds() {
        let mut c = Cascade::new(1, &seeds());
        c.finish(5, true);
        assert_eq!(c.rounds(), 5);
        assert!(c.truncated());
    }
}
