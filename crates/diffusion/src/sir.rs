use crate::model::gen_unit;
use crate::{ActivationEvent, Cascade, DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeId, NodeState, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A signed **Susceptible-Infectious-Recovered** epidemic model (Hethcote,
/// SIAM Review 2000), the family underlying Shah & Zaman's rumor-centrality
/// source detectors that the paper compares its problem setting to (§V).
///
/// Infectious nodes attempt every out-edge each round with the edge
/// weight as the per-round transmission probability (opinion follows the
/// sign product), then recover independently with probability `gamma`.
/// Recovered nodes keep their opinion (they remain "infected" in the
/// snapshot sense — they hold a state — but no longer transmit), matching
/// the paper's notion that an observed snapshot shows opinions, not
/// activity.
///
/// Unlike IC, an infectious node keeps attempting a susceptible neighbour
/// every round until it recovers, so low-weight edges eventually fire —
/// the classic epidemic behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sir {
    gamma: f64,
    max_rounds: usize,
}

impl Sir {
    /// Default safety cap on rounds (relevant when `gamma` is tiny).
    pub const DEFAULT_MAX_ROUNDS: usize = 100_000;

    /// Creates an SIR model with recovery probability `gamma` per round.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless
    /// `0 < gamma <= 1`.
    pub fn new(gamma: f64) -> Result<Self, DiffusionError> {
        if !gamma.is_finite() || gamma <= 0.0 || gamma > 1.0 {
            return Err(DiffusionError::InvalidParameter {
                name: "gamma",
                value: gamma,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Sir {
            gamma,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        })
    }

    /// Replaces the safety cap on rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        assert!(max_rounds > 0, "max_rounds must be positive");
        self.max_rounds = max_rounds;
        self
    }

    /// The per-round recovery probability.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl DiffusionModel for Sir {
    fn name(&self) -> &'static str {
        "SIR"
    }

    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError> {
        seeds.validate_against(graph)?;
        let mut cascade = Cascade::new(graph.node_count(), seeds);
        let mut infectious: Vec<NodeId> = seeds.nodes().collect();
        let mut rounds = 0usize;
        let mut truncated = false;
        while !infectious.is_empty() {
            rounds += 1;
            if rounds > self.max_rounds {
                truncated = true;
                break;
            }
            let mut newly: Vec<NodeId> = Vec::new();
            for &u in &infectious {
                let su = match cascade.state(u).sign() {
                    Some(s) => s,
                    None => unreachable!("infectious node is always active"),
                };
                for e in graph.out_edges(u) {
                    if cascade.state(e.dst) != NodeState::Inactive {
                        continue;
                    }
                    if gen_unit(rng) < e.weight {
                        cascade.record(ActivationEvent {
                            step: rounds,
                            src: u,
                            dst: e.dst,
                            new_state: su * e.sign,
                            flip: false,
                        });
                        newly.push(e.dst);
                    }
                }
            }
            // Recovery phase: infectious nodes leave the transmitting pool
            // with probability gamma, keeping their opinion.
            infectious.retain(|_| gen_unit(rng) >= self.gamma);
            infectious.extend(newly);
        }
        cascade.finish(rounds.min(self.max_rounds), truncated);
        Ok(cascade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn parameter_validation() {
        assert!(Sir::new(0.0).is_err());
        assert!(Sir::new(1.1).is_err());
        assert!(Sir::new(f64::INFINITY).is_err());
        assert!(Sir::new(1.0).is_ok());
    }

    #[test]
    fn instant_recovery_reduces_to_one_shot() {
        // gamma = 1: every infectious node recovers after one round, so a
        // 3-chain needs the edge to fire first try each hop.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = Sir::new(1.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.infected_count(), 2);
        assert!(c.rounds() <= 3);
    }

    #[test]
    fn persistent_infection_eventually_crosses_weak_edges() {
        // Weight 0.05 edge, gamma 0.001: transmit-before-recover chance
        // is ~ p / (p + γ) ≈ 0.98, so transmission is near-certain.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.05)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Sir::new(0.001).unwrap();
        let hits = (0..100)
            .filter(|&s| {
                model
                    .simulate(&g, &seeds, &mut rng(s))
                    .unwrap()
                    .infected_count()
                    == 2
            })
            .count();
        assert!(
            hits > 90,
            "weak edge should usually fire eventually, got {hits}"
        );
    }

    #[test]
    fn opinion_follows_sign_product() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Negative, 1.0)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = Sir::new(0.5)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(1))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Negative);
    }

    #[test]
    fn truncation_cap_respected() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.001),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.001),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        // gamma tiny → the seed stays infectious; cap must end the run.
        let c = Sir::new(1e-9)
            .unwrap()
            .with_max_rounds(50)
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert!(c.rounds() <= 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.3),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.3),
                Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.3),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = Sir::new(0.4).unwrap();
        assert_eq!(
            model.simulate(&g, &seeds, &mut rng(8)).unwrap(),
            model.simulate(&g, &seeds, &mut rng(8)).unwrap()
        );
    }
}
