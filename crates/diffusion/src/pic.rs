use crate::model::gen_unit;
use crate::{ActivationEvent, Cascade, DiffusionError, DiffusionModel, SeedSet};
use isomit_graph::{NodeState, Sign, SignedDigraph};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The **Polarity-related Independent Cascade** model of Li et al.
/// (PLOS ONE 2014), cited by the paper (§V) as the prior signed diffusion
/// model that MFC improves on.
///
/// P-IC is sign-aware in the opinion (the sign product rule) and lets the
/// *polarity of the adopted opinion* modulate the activation chance: a
/// negative-opinion attempt succeeds with probability `w·δ`, where
/// `δ ∈ (0, 1]` is the negative-opinion damping factor (people are less
/// inclined to propagate disbelief). There is no flipping and no trust
/// boosting — exactly the two mechanisms MFC adds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolarityIc {
    delta: f64,
}

impl PolarityIc {
    /// Creates a P-IC model with negative-opinion damping `delta`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless
    /// `0 < delta <= 1`.
    pub fn new(delta: f64) -> Result<Self, DiffusionError> {
        if !delta.is_finite() || delta <= 0.0 || delta > 1.0 {
            return Err(DiffusionError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(PolarityIc { delta })
    }

    /// The negative-opinion damping factor `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl DiffusionModel for PolarityIc {
    fn name(&self) -> &'static str {
        "P-IC"
    }

    fn simulate(
        &self,
        graph: &SignedDigraph,
        seeds: &SeedSet,
        rng: &mut dyn RngCore,
    ) -> Result<Cascade, DiffusionError> {
        seeds.validate_against(graph)?;
        let mut cascade = Cascade::new(graph.node_count(), seeds);
        let mut frontier: Vec<isomit_graph::NodeId> = seeds.nodes().collect();
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            rounds += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                let su = match cascade.state(u).sign() {
                    Some(s) => s,
                    None => unreachable!("frontier node is always active"),
                };
                for e in graph.out_edges(u) {
                    if cascade.state(e.dst) != NodeState::Inactive {
                        continue;
                    }
                    let adopted = su * e.sign;
                    let p = match adopted {
                        Sign::Positive => e.weight,
                        Sign::Negative => e.weight * self.delta,
                    };
                    if gen_unit(rng) < p {
                        cascade.record(ActivationEvent {
                            step: rounds,
                            src: u,
                            dst: e.dst,
                            new_state: adopted,
                            flip: false,
                        });
                        next.push(e.dst);
                    }
                }
            }
            frontier = next;
        }
        cascade.finish(rounds, false);
        Ok(cascade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn parameter_validation() {
        assert!(PolarityIc::new(0.0).is_err());
        assert!(PolarityIc::new(1.5).is_err());
        assert!(PolarityIc::new(1.0).is_ok());
        assert!((PolarityIc::new(0.25).unwrap().delta() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn negative_opinion_is_damped() {
        // Same weight; adoption of a negative opinion (via a negative
        // edge from a positive source) should fire less often.
        let pos =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)])
                .unwrap();
        let neg =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Negative, 0.5)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let model = PolarityIc::new(0.2).unwrap();
        let fire = |g: &SignedDigraph| {
            (0..2000)
                .filter(|&s| {
                    model
                        .simulate(g, &seeds, &mut rng(s))
                        .unwrap()
                        .infected_count()
                        == 2
                })
                .count()
        };
        let pos_hits = fire(&pos);
        let neg_hits = fire(&neg);
        assert!(
            pos_hits > 2 * neg_hits,
            "positive adoption {pos_hits} should dominate damped negative {neg_hits}"
        );
    }

    #[test]
    fn delta_one_matches_plain_sign_aware_ic() {
        // With delta = 1 both polarities use the raw weight.
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Negative, 1.0)])
                .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = PolarityIc::new(1.0)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Negative);
    }

    #[test]
    fn no_flipping() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let seeds = SeedSet::from_pairs([(NodeId(0), Sign::Positive), (NodeId(1), Sign::Negative)])
            .unwrap();
        let c = PolarityIc::new(0.5)
            .unwrap()
            .simulate(&g, &seeds, &mut rng(0))
            .unwrap();
        assert_eq!(c.state(NodeId(1)), NodeState::Negative);
        assert_eq!(c.flip_count(), 0);
    }
}
