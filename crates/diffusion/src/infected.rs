use crate::model::gen_unit;
use crate::Cascade;
use isomit_graph::json::{JsonError, Value};
use isomit_graph::{
    GraphError, NodeId, NodeMapping, NodeState, SignedDigraph, SignedDigraphBuilder,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The snapshot handed to the detection side of the paper: the infected
/// diffusion network `G_I` (Definition 3) together with the observed node
/// states.
///
/// Nodes are renumbered densely (`0..node_count` in the subgraph);
/// [`mapping`](InfectedNetwork::mapping) translates back to the original
/// network. States are indexed by subgraph id and are
/// [`NodeState::Positive`], [`NodeState::Negative`] or — after
/// [`with_masked_states`](InfectedNetwork::with_masked_states) —
/// [`NodeState::Unknown`]. `Inactive` never appears: inactive nodes are
/// by definition outside `G_I`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfectedNetwork {
    graph: SignedDigraph,
    states: Vec<NodeState>,
    mapping: NodeMapping,
}

impl InfectedNetwork {
    /// Extracts the infected network from a finished simulation: the
    /// subgraph of `diffusion` induced by the opinion-holding nodes, with
    /// their final states.
    ///
    /// # Panics
    ///
    /// Panics if `cascade` was produced on a different graph (node-count
    /// mismatch).
    pub fn from_cascade(diffusion: &SignedDigraph, cascade: &Cascade) -> Self {
        assert_eq!(
            diffusion.node_count(),
            cascade.states().len(),
            "cascade and diffusion network node counts differ"
        );
        Self::from_states(diffusion, cascade.states())
    }

    /// Extracts the infected network from full-graph final states — the
    /// state-only form of [`from_cascade`](InfectedNetwork::from_cascade),
    /// for producers (like the wide Monte-Carlo engine's batch lanes)
    /// that track states without an event log.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != diffusion.node_count()`.
    pub fn from_states(diffusion: &SignedDigraph, states: &[NodeState]) -> Self {
        assert_eq!(
            diffusion.node_count(),
            states.len(),
            "one state per diffusion-network node required"
        );
        let infected: Vec<NodeId> = diffusion
            .nodes()
            .filter(|v| states[v.index()].is_active())
            .collect();
        let (graph, mapping) = diffusion.induced_subgraph(infected);
        let states = mapping
            .original_ids()
            .iter()
            .map(|&orig| states[orig.index()])
            .collect();
        let snapshot = InfectedNetwork {
            graph,
            states,
            mapping,
        };
        debug_assert!(
            snapshot.validate().is_ok(),
            "from_states produced a corrupt snapshot: {:?}",
            snapshot.validate()
        );
        snapshot
    }

    /// Builds an infected network directly from a subgraph and observed
    /// states, with an identity node mapping — convenient for hand-built
    /// detection inputs and tests.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.node_count()` or any state is
    /// [`NodeState::Inactive`] (inactive nodes cannot be in `G_I`).
    pub fn from_parts(graph: SignedDigraph, states: Vec<NodeState>) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "one state per node required"
        );
        assert!(
            states.iter().all(|s| *s != NodeState::Inactive),
            "inactive nodes cannot appear in an infected network"
        );
        let ids: Vec<NodeId> = graph.nodes().collect();
        let mapping = crate::infected::identity_mapping(&ids);
        let snapshot = InfectedNetwork {
            graph,
            states,
            mapping,
        };
        debug_assert!(
            snapshot.validate().is_ok(),
            "from_parts produced a corrupt snapshot: {:?}",
            snapshot.validate()
        );
        snapshot
    }

    /// Builds an infected network from a subgraph, observed states, and an
    /// explicit original-id mapping (`original_ids[sub]` is the original
    /// network id of subgraph node `sub`) — the constructor for producers
    /// that materialize `G_I` themselves, like the incremental RID session
    /// turning its accumulated deltas into a snapshot.
    ///
    /// The snapshot is always validated (see
    /// [`validate`](InfectedNetwork::validate)): callers assembling
    /// subgraphs by hand are exactly the ones that benefit from the
    /// invariant check.
    ///
    /// ```
    /// use isomit_diffusion::InfectedNetwork;
    /// use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
    ///
    /// # fn main() -> Result<(), isomit_graph::GraphError> {
    /// let g =
    ///     SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)])?;
    /// let snapshot = InfectedNetwork::from_subgraph_parts(
    ///     g,
    ///     vec![NodeState::Positive, NodeState::Negative],
    ///     vec![NodeId(7), NodeId(42)],
    /// )?;
    /// assert_eq!(snapshot.mapping().to_original(NodeId(1)), Some(NodeId(42)));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] (or the underlying mapping error)
    /// if lengths disagree, a state is [`NodeState::Inactive`], or
    /// `original_ids` contains duplicates.
    pub fn from_subgraph_parts(
        graph: SignedDigraph,
        states: Vec<NodeState>,
        original_ids: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        let mapping = NodeMapping::from_original_ids(original_ids)?;
        let snapshot = InfectedNetwork {
            graph,
            states,
            mapping,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// The infected diffusion subgraph (dense subgraph ids).
    pub fn graph(&self) -> &SignedDigraph {
        &self.graph
    }

    /// Observed state of every subgraph node.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// Observed state of one subgraph node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn state(&self, node: NodeId) -> NodeState {
        self.states[node.index()]
    }

    /// Mapping between subgraph ids and original network ids.
    pub fn mapping(&self) -> &NodeMapping {
        &self.mapping
    }

    /// Number of infected nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of nodes whose state is observed (not `Unknown`).
    pub fn observed_count(&self) -> usize {
        self.states.iter().filter(|s| !s.is_unknown()).count()
    }

    /// Encodes the snapshot as a JSON [`Value`]:
    /// `{"graph": <SignedDigraph>, "states": ["+", "-", ...],
    /// "mapping": [orig_id, ...]}` — see `isomit_graph::json` for the
    /// graph schema. Weights survive the round trip bit-exactly.
    pub fn to_json_value(&self) -> Value {
        let states = self
            .states
            .iter()
            .map(|s| Value::String(s.as_symbol().to_owned()))
            .collect();
        let mapping = self
            .mapping
            .original_ids()
            .iter()
            .map(|id| Value::Number(id.0 as f64))
            .collect();
        Value::Object(vec![
            ("graph".into(), self.graph.to_json_value()),
            ("states".into(), Value::Array(states)),
            ("mapping".into(), Value::Array(mapping)),
        ])
    }

    /// Encodes the snapshot as compact JSON text (see
    /// [`to_json_value`](InfectedNetwork::to_json_value) for the schema).
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a snapshot produced by
    /// [`to_json_string`](InfectedNetwork::to_json_string).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, schema mismatches, or
    /// inconsistent lengths between graph, states and mapping.
    pub fn from_json_str(input: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(input)?)
    }

    /// Decodes a snapshot from an already-parsed JSON [`Value`] — the
    /// form embedded in serving-protocol requests.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on schema mismatches or inconsistent
    /// lengths between graph, states and mapping.
    pub fn from_json_value(doc: &Value) -> Result<Self, JsonError> {
        let graph = SignedDigraph::from_json_value(doc.require("graph")?)?;
        let states = doc
            .require("states")?
            .as_array()
            .ok_or_else(|| JsonError::new("`states` must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| JsonError::new("each state must be a string"))
                    .and_then(NodeState::from_symbol)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let original_ids = doc
            .require("mapping")?
            .as_array()
            .ok_or_else(|| JsonError::new("`mapping` must be an array"))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .map(NodeId::from_index)
                    .ok_or_else(|| JsonError::new("each mapping entry must be a node id"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if states.len() != graph.node_count() || original_ids.len() != graph.node_count() {
            return Err(JsonError::new(
                "graph, states and mapping disagree on node count",
            ));
        }
        if states.contains(&NodeState::Inactive) {
            return Err(JsonError::new(
                "inactive nodes cannot appear in an infected network",
            ));
        }
        let mapping = NodeMapping::from_original_ids(original_ids)
            .map_err(|e| JsonError::new(e.to_string()))?;
        let snapshot = InfectedNetwork {
            graph,
            states,
            mapping,
        };
        // JSON snapshots are external input: always validate, not only in
        // debug builds.
        snapshot
            .validate()
            .map_err(|e| JsonError::new(e.to_string()))?;
        Ok(snapshot)
    }

    /// Checks every structural invariant of the snapshot.
    ///
    /// Verified invariants:
    ///
    /// * the underlying subgraph passes [`SignedDigraph::validate`];
    /// * there is exactly one state per subgraph node and none of them is
    ///   [`NodeState::Inactive`] (inactive nodes are by definition outside
    ///   `G_I`);
    /// * the node mapping covers exactly the subgraph ids and original
    ///   ids are unique (the mapping is a bijection onto its image).
    ///
    /// The checked constructors uphold these and re-assert them in debug
    /// builds; call this at ingest time on snapshots arriving through
    /// other channels (e.g. serde deserialization of untrusted data), not
    /// per-query.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.graph.validate()?;
        let n = self.graph.node_count();
        if self.states.len() != n {
            return Err(GraphError::Invariant(format!(
                "snapshot has {} states for {n} nodes",
                self.states.len()
            )));
        }
        if let Some(i) = self.states.iter().position(|s| *s == NodeState::Inactive) {
            return Err(GraphError::Invariant(format!(
                "node n{i} is inactive; inactive nodes cannot appear in an infected network"
            )));
        }
        let originals = self.mapping.original_ids();
        if originals.len() != n {
            return Err(GraphError::Invariant(format!(
                "mapping covers {} nodes, subgraph has {n}",
                originals.len()
            )));
        }
        let mut seen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
        for (sub, &orig) in originals.iter().enumerate() {
            if !seen.insert(orig) {
                return Err(GraphError::Invariant(format!(
                    "mapping maps two subgraph nodes to original {orig}"
                )));
            }
            let round_trip = self.mapping.to_subgraph(orig);
            if round_trip != Some(NodeId::from_index(sub)) {
                return Err(GraphError::Invariant(format!(
                    "mapping round trip failed: n{sub} -> {orig} -> {round_trip:?}"
                )));
            }
        }
        Ok(())
    }

    /// Returns a copy with each node's state independently replaced by
    /// [`NodeState::Unknown`] with probability `fraction` — the paper's
    /// setting where "the states of many nodes in large-scale networks
    /// are often unknown".
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_masked_states(&self, fraction: f64, rng: &mut dyn RngCore) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} must lie in [0, 1]"
        );
        let states = self
            .states
            .iter()
            .map(|&s| {
                if gen_unit(rng) < fraction {
                    NodeState::Unknown
                } else {
                    s
                }
            })
            .collect();
        InfectedNetwork {
            graph: self.graph.clone(),
            states,
            mapping: self.mapping.clone(),
        }
    }
}

/// Builds an identity [`NodeMapping`] over the given ids by round-tripping
/// through `induced_subgraph` on a trivial graph — kept private to avoid
/// widening `isomit-graph`'s API surface.
fn identity_mapping(ids: &[NodeId]) -> NodeMapping {
    let g = SignedDigraphBuilder::with_nodes(ids.len()).build();
    let (_, mapping) = g.induced_subgraph(ids.iter().copied());
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiffusionModel, Mfc, SeedSet};
    use isomit_graph::{Edge, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SignedDigraph, Cascade) {
        // 0 -> 1 -> 2 deterministic; node 3 unreachable.
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
                Edge::new(NodeId(3), NodeId(0), Sign::Positive, 0.0),
            ],
        )
        .unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let c = Mfc::new(2.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(0))
            .unwrap();
        (g, c)
    }

    #[test]
    fn from_cascade_keeps_only_infected() {
        let (g, c) = setup();
        let inf = InfectedNetwork::from_cascade(&g, &c);
        assert_eq!(inf.node_count(), 3);
        // Node 3 (inactive) must be excluded.
        assert!(inf.mapping().to_subgraph(NodeId(3)).is_none());
        // States carried over in subgraph order 0, 1, 2.
        assert_eq!(
            inf.states(),
            &[
                NodeState::Positive,
                NodeState::Positive,
                NodeState::Negative
            ]
        );
        // Edges among infected survive; edge from node 3 does not.
        assert_eq!(inf.graph().edge_count(), 2);
    }

    #[test]
    fn from_parts_identity_mapping() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)])
                .unwrap();
        let inf = InfectedNetwork::from_parts(g, vec![NodeState::Positive, NodeState::Negative]);
        assert_eq!(inf.mapping().to_original(NodeId(1)), Some(NodeId(1)));
        assert_eq!(inf.state(NodeId(1)), NodeState::Negative);
        assert_eq!(inf.observed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "one state per node")]
    fn from_parts_length_mismatch_panics() {
        let g = SignedDigraph::from_edges(2, []).unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive]);
    }

    #[test]
    #[should_panic(expected = "inactive nodes cannot appear")]
    fn from_parts_rejects_inactive() {
        let g = SignedDigraph::from_edges(1, []).unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Inactive]);
    }

    #[test]
    fn validate_accepts_constructed_snapshots() {
        let (g, c) = setup();
        InfectedNetwork::from_cascade(&g, &c).validate().unwrap();
    }

    #[test]
    fn validate_catches_duplicate_mapping_entries() {
        let (g, c) = setup();
        let inf = InfectedNetwork::from_cascade(&g, &c);
        let json = inf.to_json_string();
        // Corrupt the mapping to contain a duplicate original id.
        let corrupt = json.replace("\"mapping\":[0,1,2]", "\"mapping\":[0,1,1]");
        assert_ne!(json, corrupt, "fixture mapping changed; update the test");
        let err = InfectedNetwork::from_json_str(&corrupt).unwrap_err();
        assert!(err.to_string().contains("duplicate original ids"), "{err}");
    }

    #[test]
    fn masking_hides_roughly_the_requested_fraction() {
        let (g, c) = setup();
        let inf = InfectedNetwork::from_cascade(&g, &c);
        let mut rng = StdRng::seed_from_u64(1);
        let all_hidden = inf.with_masked_states(1.0, &mut rng);
        assert_eq!(all_hidden.observed_count(), 0);
        let none_hidden = inf.with_masked_states(0.0, &mut rng);
        assert_eq!(none_hidden.observed_count(), inf.node_count());
        // Graph structure untouched.
        assert_eq!(all_hidden.graph(), inf.graph());
    }

    #[test]
    fn mask_fraction_statistics() {
        let g = SignedDigraph::from_edges(1000, []).unwrap();
        let inf = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 1000]);
        let mut rng = StdRng::seed_from_u64(5);
        let masked = inf.with_masked_states(0.3, &mut rng);
        let hidden = 1000 - masked.observed_count();
        assert!(
            (250..=350).contains(&hidden),
            "hidden {hidden} far from 300"
        );
    }
}
