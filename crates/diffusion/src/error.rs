use isomit_graph::NodeId;
use std::fmt;

/// Errors produced when configuring or running diffusion models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DiffusionError {
    /// A model parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name, e.g. `"alpha"`.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be >= 1"`.
        constraint: &'static str,
    },
    /// The same node appeared twice in a seed set.
    DuplicateSeed(
        /// The repeated node.
        NodeId,
    ),
    /// A seed node lies outside the diffusion network.
    SeedOutOfBounds {
        /// The offending seed.
        node: NodeId,
        /// Number of nodes in the network.
        node_count: usize,
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            DiffusionError::DuplicateSeed(node) => {
                write!(f, "seed {node} appears more than once")
            }
            DiffusionError::SeedOutOfBounds { node, node_count } => write!(
                f,
                "seed {node} is out of bounds for a network with {node_count} nodes"
            ),
        }
    }
}

impl std::error::Error for DiffusionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = DiffusionError::InvalidParameter {
            name: "alpha",
            value: 0.5,
            constraint: "must be >= 1",
        };
        assert!(e.to_string().contains("alpha = 0.5"));
        assert!(DiffusionError::DuplicateSeed(NodeId(4))
            .to_string()
            .contains("n4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiffusionError>();
    }
}
