//! Wire-format (JSON) codecs for diffusion types, built on the in-repo
//! [`isomit_graph::json`] codec — no external serialization deps.
//!
//! These encodings are what the serving protocol (`isomit-service`)
//! speaks: [`SeedSet`] as `[[node, sign], ...]` and [`DiffusionError`]
//! as a tagged object. Numbers round-trip bit-exactly (the codec prints
//! `f64` with `{:?}`), so `decode(encode(x)) == x` holds for every
//! value, which the proptest suite asserts.

use crate::{DiffusionError, SeedSet};
use isomit_graph::json::{JsonError, Value};
use isomit_graph::{NodeId, Sign};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Returns a `'static` copy of `s`, leaking at most one allocation per
/// distinct string.
///
/// [`DiffusionError`] carries `&'static str` parameter names and
/// constraints (they are compile-time literals on the encode side);
/// decoding has to produce the same type, so decoded strings are
/// interned in a process-wide set. The set of distinct names and
/// constraints is tiny and fixed by the codebase, so the leak is
/// bounded.
fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().expect("intern set mutex poisoned");
    if let Some(existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn sign_to_value(sign: Sign) -> Value {
    Value::Number(sign.value() as f64)
}

fn sign_from_value(value: &Value) -> Result<Sign, JsonError> {
    match value.as_f64() {
        Some(v) if v.to_bits() == 1f64.to_bits() => Ok(Sign::Positive),
        Some(v) if v.to_bits() == (-1f64).to_bits() => Ok(Sign::Negative),
        _ => Err(JsonError::new("sign must be 1 or -1")),
    }
}

fn node_from_value(value: &Value) -> Result<NodeId, JsonError> {
    value
        .as_usize()
        .map(NodeId::from_index)
        .ok_or_else(|| JsonError::new("node must be a non-negative integer id"))
}

impl SeedSet {
    /// Encodes the seed set as `[[node, sign], ...]` in iteration
    /// (insertion) order.
    pub fn to_json_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(node, sign)| {
                    Value::Array(vec![
                        Value::Number(node.index() as f64),
                        sign_to_value(sign),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes a seed set from the encoding of
    /// [`to_json_value`](SeedSet::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or duplicate seeds.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let raw = value
            .as_array()
            .ok_or_else(|| JsonError::new("seeds must be an array of [node, sign] pairs"))?;
        let mut pairs = Vec::with_capacity(raw.len());
        for entry in raw {
            let parts = entry
                .as_array()
                .ok_or_else(|| JsonError::new("each seed must be a [node, sign] pair"))?;
            let [node_v, sign_v] = parts else {
                return Err(JsonError::new("each seed must be a [node, sign] pair"));
            };
            pairs.push((node_from_value(node_v)?, sign_from_value(sign_v)?));
        }
        SeedSet::from_pairs(pairs).map_err(|e| JsonError::new(format!("invalid seed set: {e}")))
    }
}

impl DiffusionError {
    /// Encodes the error as a tagged JSON object
    /// (`{"kind": "...", ...}`).
    pub fn to_json_value(&self) -> Value {
        match self {
            DiffusionError::InvalidParameter {
                name,
                value,
                constraint,
            } => Value::Object(vec![
                ("kind".into(), Value::String("invalid_parameter".into())),
                ("name".into(), Value::String((*name).into())),
                ("value".into(), Value::Number(*value)),
                ("constraint".into(), Value::String((*constraint).into())),
            ]),
            DiffusionError::DuplicateSeed(node) => Value::Object(vec![
                ("kind".into(), Value::String("duplicate_seed".into())),
                ("node".into(), Value::Number(node.index() as f64)),
            ]),
            DiffusionError::SeedOutOfBounds { node, node_count } => Value::Object(vec![
                ("kind".into(), Value::String("seed_out_of_bounds".into())),
                ("node".into(), Value::Number(node.index() as f64)),
                ("node_count".into(), Value::Number(*node_count as f64)),
            ]),
        }
    }

    /// Decodes an error from the encoding of
    /// [`to_json_value`](DiffusionError::to_json_value).
    ///
    /// The `&'static str` fields of
    /// [`InvalidParameter`](DiffusionError::InvalidParameter) are
    /// interned process-wide (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on a malformed object or unknown `kind`.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let kind = value
            .require("kind")?
            .as_str()
            .ok_or_else(|| JsonError::new("error `kind` must be a string"))?;
        match kind {
            "invalid_parameter" => Ok(DiffusionError::InvalidParameter {
                name: intern(
                    value
                        .require("name")?
                        .as_str()
                        .ok_or_else(|| JsonError::new("`name` must be a string"))?,
                ),
                value: value
                    .require("value")?
                    .as_f64()
                    .ok_or_else(|| JsonError::new("`value` must be a number"))?,
                constraint: intern(
                    value
                        .require("constraint")?
                        .as_str()
                        .ok_or_else(|| JsonError::new("`constraint` must be a string"))?,
                ),
            }),
            "duplicate_seed" => Ok(DiffusionError::DuplicateSeed(node_from_value(
                value.require("node")?,
            )?)),
            "seed_out_of_bounds" => Ok(DiffusionError::SeedOutOfBounds {
                node: node_from_value(value.require("node")?)?,
                node_count: value
                    .require("node_count")?
                    .as_usize()
                    .ok_or_else(|| JsonError::new("`node_count` must be a non-negative integer"))?,
            }),
            other => Err(JsonError::new(format!("unknown error kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_set_round_trips() {
        let seeds = SeedSet::from_pairs([(NodeId(3), Sign::Positive), (NodeId(0), Sign::Negative)])
            .unwrap();
        let v = seeds.to_json_value();
        assert_eq!(SeedSet::from_json_value(&v).unwrap(), seeds);
        let reparsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(SeedSet::from_json_value(&reparsed).unwrap(), seeds);
    }

    #[test]
    fn seed_set_rejects_duplicates_and_bad_signs() {
        let dup = Value::parse("[[1, 1], [1, -1]]").unwrap();
        assert!(SeedSet::from_json_value(&dup).is_err());
        let bad_sign = Value::parse("[[1, 2]]").unwrap();
        assert!(SeedSet::from_json_value(&bad_sign).is_err());
    }

    #[test]
    fn errors_round_trip() {
        let cases = [
            DiffusionError::InvalidParameter {
                name: "alpha",
                value: 0.5,
                constraint: "must be >= 1",
            },
            DiffusionError::DuplicateSeed(NodeId(7)),
            DiffusionError::SeedOutOfBounds {
                node: NodeId(9),
                node_count: 5,
            },
        ];
        for case in cases {
            let text = case.to_json_value().to_json();
            let back = DiffusionError::from_json_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, case, "{text}");
        }
    }

    #[test]
    fn interning_reuses_allocations() {
        let a = intern("must be >= 1");
        let b = intern("must be >= 1");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let v = Value::parse("{\"kind\": \"nonsense\"}").unwrap();
        assert!(DiffusionError::from_json_value(&v).is_err());
    }
}
