//! Property-based tests for the diffusion models: structural invariants
//! that must hold for every random graph, seed set and RNG stream.

use isomit_diffusion::{
    estimate_infection_probabilities_wide, estimate_infection_probabilities_wide_reference,
    par_estimate_infection_probabilities_wide, Cascade, DiffusionModel, IndependentCascade,
    InfectedNetwork, LinearThreshold, Mfc, PolarityIc, SeedSet, Sir,
};
use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Random (graph, seeds) scenario.
fn arb_scenario() -> impl Strategy<Value = (SignedDigraph, SeedSet)> {
    (3u32..20).prop_flat_map(|n| {
        let edge = (0..n, 0..n, any::<bool>(), 0.0f64..=1.0).prop_filter_map(
            "no self-loops",
            move |(a, b, pos, w)| {
                (a != b).then(|| {
                    Edge::new(
                        NodeId(a),
                        NodeId(b),
                        if pos { Sign::Positive } else { Sign::Negative },
                        w,
                    )
                })
            },
        );
        let edges = proptest::collection::vec(edge, 0..60);
        let seeds = proptest::collection::btree_map(0..n, any::<bool>(), 1..=(n as usize).min(5));
        (edges, seeds).prop_map(move |(edges, seed_map)| {
            let g = SignedDigraph::from_edges(n as usize, edges).unwrap();
            let seeds = SeedSet::from_pairs(seed_map.into_iter().map(|(id, pos)| {
                (
                    NodeId(id),
                    if pos { Sign::Positive } else { Sign::Negative },
                )
            }))
            .unwrap();
            (g, seeds)
        })
    })
}

/// Invariants every model's cascade must satisfy.
fn check_common_invariants(g: &SignedDigraph, seeds: &SeedSet, c: &Cascade) {
    // Seeds always end up infected (they may be flipped, never cured).
    for (node, _) in seeds.iter() {
        assert!(c.state(node).is_active(), "seed {node} lost its state");
    }
    // No Unknown states from simulation.
    assert!(c.states().iter().all(|s| *s != NodeState::Unknown));
    // Every event uses a real edge, and the recorded state matches the
    // sign product along that edge for non-flip events.
    for e in c.events() {
        let edge = g
            .edge(e.src, e.dst)
            .unwrap_or_else(|| panic!("event uses non-edge ({}, {})", e.src, e.dst));
        let _ = edge;
    }
    // first_parent pointers form an acyclic forest rooted at seeds.
    let infected: HashSet<NodeId> = c.infected_nodes().into_iter().collect();
    for &v in &infected {
        if seeds.contains(v) {
            assert_eq!(c.first_parent(v), None, "seed {v} has a first parent");
            continue;
        }
        // Walk to a root; must terminate within n steps at a seed.
        let mut cur = v;
        for _ in 0..=g.node_count() {
            match c.first_parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        assert!(seeds.contains(cur), "walk from {v} ended at non-seed {cur}");
    }
    // Non-infected nodes have no parents.
    for u in g.nodes() {
        if !infected.contains(&u) {
            assert_eq!(c.first_parent(u), None);
            assert_eq!(c.last_parent(u), None);
            assert_eq!(c.state(u), NodeState::Inactive);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mfc_invariants(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        // Cap rounds: with probability-1 boosted edges, MFC flip waves
        // can oscillate around positive cycles forever (see the
        // `flip_wave_oscillates_forever` unit test in mfc.rs); the
        // structural invariants hold regardless of truncation.
        let model = Mfc::new(3.0).unwrap().with_max_rounds(5_000);
        let c = model.simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        check_common_invariants(&g, &seeds, &c);
        // MFC-specific: flips only ever happen across positive edges.
        for e in c.events().iter().filter(|e| e.flip) {
            let edge = g.edge(e.src, e.dst).unwrap();
            prop_assert!(edge.sign.is_positive(), "flip across negative edge");
        }
    }

    #[test]
    fn ic_invariants(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let c = IndependentCascade::new()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        check_common_invariants(&g, &seeds, &c);
        // IC never flips: one event per infected non-seed, none for seeds.
        prop_assert_eq!(c.flip_count(), 0);
        let non_seed_infected = c
            .infected_nodes()
            .iter()
            .filter(|v| !seeds.contains(**v))
            .count();
        prop_assert_eq!(c.events().len(), non_seed_infected);
    }

    #[test]
    fn lt_invariants(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let c = LinearThreshold::new()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        check_common_invariants(&g, &seeds, &c);
        prop_assert_eq!(c.flip_count(), 0);
    }

    #[test]
    fn sir_invariants(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let c = Sir::new(0.5).unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        check_common_invariants(&g, &seeds, &c);
        prop_assert_eq!(c.flip_count(), 0);
    }

    #[test]
    fn pic_invariants(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let c = PolarityIc::new(0.5).unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        check_common_invariants(&g, &seeds, &c);
        prop_assert_eq!(c.flip_count(), 0);
    }

    #[test]
    fn infected_network_is_consistent(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let model = Mfc::new(3.0).unwrap();
        let c = model.simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        let inf = InfectedNetwork::from_cascade(&g, &c);
        prop_assert_eq!(inf.node_count(), c.infected_count());
        // Every subgraph state matches the cascade state of the original node.
        for v in inf.graph().nodes() {
            let orig = inf.mapping().to_original(v).unwrap();
            prop_assert_eq!(inf.state(v), c.state(orig));
        }
        // Every subgraph edge exists in the diffusion network with the
        // same sign and weight.
        for e in inf.graph().edges() {
            let src = inf.mapping().to_original(e.src).unwrap();
            let dst = inf.mapping().to_original(e.dst).unwrap();
            let orig = g.edge(src, dst).unwrap();
            prop_assert_eq!(orig.sign, e.sign);
            prop_assert!((orig.weight - e.weight).abs() < 1e-15);
        }
    }

    #[test]
    fn simulation_determinism(((g, seeds), rng_seed) in (arb_scenario(), any::<u64>())) {
        let model = Mfc::new(2.5).unwrap();
        let a = model.simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        let b = model.simulate(&g, &seeds, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        prop_assert_eq!(a, b);
    }

    // The 64-lane bitplane engine is bit-identical to its retained
    // scalar reference for every graph, seed set, `alpha`, master seed,
    // and trial count — including ragged counts not divisible by 64,
    // which exercise the partial final batch.
    #[test]
    fn wide_estimator_is_bit_identical_to_scalar_reference(
        ((g, seeds), alpha, runs, master) in
            (arb_scenario(), 1.0f64..5.0, 1usize..200, any::<u64>())
    ) {
        // Cap rounds: boosted weights can reach probability 1, where
        // flip waves may oscillate around positive cycles indefinitely.
        let model = Mfc::new(alpha).unwrap().with_max_rounds(1_000);
        let wide = estimate_infection_probabilities_wide(
            &model, &g, &seeds, runs, master).unwrap();
        let reference = estimate_infection_probabilities_wide_reference(
            &model, &g, &seeds, runs, master).unwrap();
        prop_assert_eq!(&wide, &reference);
        // The rayon batch distribution merges commutatively, so the
        // parallel path is bit-identical too.
        let par = par_estimate_infection_probabilities_wide(
            &model, &g, &seeds, runs, master).unwrap();
        prop_assert_eq!(&wide, &par);
    }
}

/// Random [`DiffusionError`] for codec round-trip checks. Decoded
/// `&'static str` fields are interned copies, so value equality (what
/// `PartialEq` checks) is the right contract.
fn arb_diffusion_error() -> impl Strategy<Value = isomit_diffusion::DiffusionError> {
    use isomit_diffusion::DiffusionError;
    const NAMES: [&str; 4] = ["alpha", "runs", "threshold", "weird name \"quoted\""];
    const CONSTRAINTS: [&str; 3] = ["must be >= 1", "must be positive", "must be finite"];
    (
        0u32..3,
        0usize..4,
        0usize..3,
        -1e12f64..1e12,
        0usize..10_000,
        0usize..10_000,
    )
        .prop_map(
            |(variant, name_i, constraint_i, value, id, n)| match variant {
                0 => DiffusionError::InvalidParameter {
                    name: NAMES[name_i],
                    value,
                    constraint: CONSTRAINTS[constraint_i],
                },
                1 => DiffusionError::DuplicateSeed(NodeId::from_index(id)),
                _ => DiffusionError::SeedOutOfBounds {
                    node: NodeId::from_index(id),
                    node_count: n,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diffusion_error_round_trips_through_json(error in arb_diffusion_error()) {
        let text = error.to_json_value().to_json();
        let parsed = isomit_graph::json::Value::parse(&text).unwrap();
        let back = isomit_diffusion::DiffusionError::from_json_value(&parsed).unwrap();
        prop_assert_eq!(back, error, "wire text: {}", text);
    }

    #[test]
    fn seed_set_round_trips_through_json((_, seeds) in arb_scenario()) {
        let text = seeds.to_json_value().to_json();
        let parsed = isomit_graph::json::Value::parse(&text).unwrap();
        let back = SeedSet::from_json_value(&parsed).unwrap();
        prop_assert_eq!(back, seeds);
    }
}
