//! Property-based tests for the synthetic dataset generators: every
//! generated network must pass the graph invariant check
//! (`SignedDigraph::validate`), for any seed and any valid
//! configuration.

use isomit_datasets::{
    erdos_renyi_signed, load_snap, polarized_communities, preferential_attachment_signed,
    snap_like, LoadOptions, PaConfig, PolarizedConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn preferential_attachment_passes_validate(
        seed in any::<u64>(),
        nodes in 4usize..120,
        mean_out_degree in 1.0f64..6.0,
        positive_fraction in 0.0f64..=1.0,
    ) {
        let config = PaConfig {
            nodes,
            mean_out_degree,
            positive_fraction,
            distrusted_fraction: 0.15,
            distrust_concentration: 3.0,
            uniform_edge_fraction: 0.2,
            closure_probability: 0.6,
            reciprocity: 0.35,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let g = preferential_attachment_signed(&config, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.node_count(), nodes);
    }

    #[test]
    fn erdos_renyi_passes_validate(
        seed in any::<u64>(),
        nodes in 2usize..80,
        edge_fraction in 0.0f64..=1.0,
        positive_fraction in 0.0f64..=1.0,
    ) {
        let edges = (edge_fraction * (nodes * (nodes - 1)) as f64) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_signed(nodes, edges, positive_fraction, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.edge_count(), edges);
    }

    #[test]
    fn polarized_communities_passes_validate(
        seed in any::<u64>(),
        communities in 2usize..5,
        nodes_per_camp in 2usize..40,
        intra_fraction in 0.0f64..=1.0,
    ) {
        let config = PolarizedConfig {
            nodes: communities * nodes_per_camp,
            communities,
            mean_out_degree: 4.0,
            intra_fraction,
            ..PolarizedConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let g = polarized_communities(&config, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.node_count(), config.nodes);
    }

    #[test]
    fn snap_like_passes_validate_with_exact_counts(
        seed in any::<u64>(),
        nodes in 2usize..120,
        edge_fraction in 0.0f64..=1.0,
        sign_fraction in 0.0f64..=1.0,
    ) {
        let edges = (edge_fraction * (nodes * (nodes - 1)) as f64) as usize;
        let g = snap_like(nodes, edges, sign_fraction, seed);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.node_count(), nodes);
        prop_assert_eq!(g.edge_count(), edges);
        // Same tuple, bit-identical graph.
        prop_assert_eq!(snap_like(nodes, edges, sign_fraction, seed), g);
    }

    // The SNAP writer and the scale loader are inverse to each other:
    // any unit-weight graph survives `load(write(g))` exactly,
    // including trailing isolated nodes (preserved via the node-count
    // header that `write_snap` emits).
    #[test]
    fn load_snap_round_trips_write_snap(
        seed in any::<u64>(),
        nodes in 2usize..80,
        edge_fraction in 0.0f64..=1.0,
        sign_fraction in 0.0f64..=1.0,
    ) {
        let edges = (edge_fraction * (nodes * (nodes - 1)) as f64) as usize;
        let g = snap_like(nodes, edges, sign_fraction, seed);
        let mut buf = Vec::new();
        isomit_graph::io::write_snap(&g, &mut buf).unwrap();
        let (back, report) = load_snap(buf.as_slice(), &LoadOptions::default()).unwrap();
        prop_assert_eq!(&back, &g);
        prop_assert_eq!(report.edges, g.edge_count());
        prop_assert_eq!(report.duplicate_edges + report.self_loops + report.malformed_lines, 0);
    }
}
