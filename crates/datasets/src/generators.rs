// lint:allow-file(cast-truncation) generator node ids are loop indices over the configured node count, which SignedDigraphBuilder re-validates against u32::MAX on every add_edge; a truncated id would fail graph construction, not corrupt it
use isomit_graph::{Edge, NodeId, Sign, SignedDigraph, SignedDigraphBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};
// lint:allow(determinism) HashSet is used for insert-only membership tests (duplicate-edge rejection), never iterated, so hash order cannot leak into the output
use std::collections::{BTreeSet, HashSet};

/// Configuration of the preferential-attachment signed digraph generator.
///
/// The generator grows the network one node at a time; each new node
/// emits a random number of edges (mean [`mean_out_degree`]) whose
/// targets are drawn from a degree-proportional pool (with a
/// [`uniform_edge_fraction`] escape hatch to uniform targets), giving a
/// heavy-tailed in-degree distribution like Epinions'/Slashdot's.
///
/// Signs model the empirical observation that distrust concentrates on a
/// minority of controversial accounts: a [`distrusted_fraction`] of the
/// nodes receive negative edges with elevated probability, calibrated so
/// the overall negative-edge fraction is `1 − positive_fraction`.
///
/// [`mean_out_degree`]: PaConfig::mean_out_degree
/// [`uniform_edge_fraction`]: PaConfig::uniform_edge_fraction
/// [`distrusted_fraction`]: PaConfig::distrusted_fraction
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaConfig {
    /// Number of nodes to generate.
    pub nodes: usize,
    /// Average number of outgoing edges per node.
    pub mean_out_degree: f64,
    /// Target fraction of positive (trust) edges.
    pub positive_fraction: f64,
    /// Fraction of nodes that concentrate distrust.
    pub distrusted_fraction: f64,
    /// How much more likely a distrusted node is to receive a negative
    /// edge (multiplier on the base negative rate, capped at 0.95).
    pub distrust_concentration: f64,
    /// Fraction of edges whose target is drawn uniformly instead of
    /// preferentially.
    pub uniform_edge_fraction: f64,
    /// Triadic-closure probability: after following `t`, the chance of
    /// also following one of `t`'s existing followers. Closure creates
    /// the `Γ_out(v) ∩ Γ_in(u)` overlaps that give social links non-zero
    /// Jaccard coefficients, matching the strong clustering of the real
    /// Epinions/Slashdot graphs (without it, the paper's §IV-B3
    /// weighting degenerates to the uniform `(0, 0.1]` fill everywhere).
    pub closure_probability: f64,
    /// Probability that a new follow edge is reciprocated (`t` follows
    /// `v` back). Trust networks are strongly reciprocal; without this,
    /// late-joining nodes have no followers at all and can never spread
    /// information in the reversed (diffusion) orientation.
    pub reciprocity: f64,
}

impl PaConfig {
    fn validate(&self) {
        assert!(self.nodes >= 2, "need at least 2 nodes");
        assert!(
            self.mean_out_degree > 0.0,
            "mean_out_degree must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.positive_fraction),
            "positive_fraction must lie in [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.distrusted_fraction),
            "distrusted_fraction must lie in [0, 1)"
        );
        assert!(
            self.distrust_concentration >= 1.0,
            "distrust_concentration must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.uniform_edge_fraction),
            "uniform_edge_fraction must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.closure_probability),
            "closure_probability must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.reciprocity),
            "reciprocity must lie in [0, 1]"
        );
    }
}

/// Generates a signed directed network by preferential attachment per
/// [`PaConfig`]. All edge weights are `1.0`; apply
/// [`paper_weights`](crate::paper_weights) (or any custom scheme)
/// afterwards.
///
/// # Panics
///
/// Panics on invalid configuration (see [`PaConfig`] field docs).
pub fn preferential_attachment_signed<R: Rng + ?Sized>(
    config: &PaConfig,
    rng: &mut R,
) -> SignedDigraph {
    config.validate();
    let n = config.nodes;
    // Calibrate per-target negative rates so the expected global negative
    // fraction is 1 - positive_fraction.
    let q = 1.0 - config.positive_fraction;
    let f = config.distrusted_fraction;
    let p_hi = (q * config.distrust_concentration).min(0.95);
    // Clamp both rates into [0, 1]: with extreme `positive_fraction`
    // the concentration cap on `p_hi` pushes the compensating `p_lo`
    // past 1.
    let p_lo = ((q - f * p_hi) / (1.0 - f)).clamp(0.0, 1.0);

    let distrusted: Vec<bool> = (0..n).map(|_| rng.gen_bool(f.max(0.0))).collect();
    let mut builder = SignedDigraphBuilder::with_nodes(n)
        .with_edge_capacity((config.mean_out_degree * n as f64) as usize + n);
    // Degree-proportional attachment pool (node repeated once per
    // incident edge endpoint) and follower lists for triadic closure.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * (config.mean_out_degree as usize + 1) * n);
    let mut followers: Vec<Vec<u32>> = vec![Vec::new(); n];

    let sign_for = |target: usize, rng: &mut R| -> Sign {
        let p_neg = if distrusted[target] { p_hi } else { p_lo };
        if rng.gen_bool(p_neg) {
            Sign::Negative
        } else {
            Sign::Positive
        }
    };

    // Seed core: a directed triangle (or a single edge for n = 2).
    let core = 3.min(n);
    for i in 0..core {
        let j = (i + 1) % core;
        if i == j {
            continue;
        }
        let sign = sign_for(j, rng);
        builder
            .add_edge(NodeId(i as u32), NodeId(j as u32), sign, 1.0)
            .expect("core edges are valid");
        pool.push(i as u32);
        pool.push(j as u32);
        followers[j].push(i as u32);
    }

    // Out-degree distribution: uniform over 1..=2·mean − 1 (mean ≈
    // mean_out_degree), clamped to the number of available targets.
    // Closure edges come on top, so the base mean is scaled down to keep
    // the configured overall mean.
    let base_mean =
        config.mean_out_degree / ((1.0 + config.closure_probability) * (1.0 + config.reciprocity));
    let max_m = (2.0 * base_mean).max(1.0);
    let mut chosen: BTreeSet<u32> = BTreeSet::new();
    let mut closure_extra: BTreeSet<u32> = BTreeSet::new();
    for v in core..n {
        // Continuous draw keeps the configured mean exactly even when
        // 2·base_mean is not an integer.
        let m = ((rng.gen_range(0.0..max_m) + 0.5) as usize).clamp(1, v);
        chosen.clear();
        closure_extra.clear();
        let mut attempts = 0;
        while chosen.len() < m && attempts < 20 * m {
            attempts += 1;
            let target = if pool.is_empty() || rng.gen_bool(config.uniform_edge_fraction) {
                rng.gen_range(0..v) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if target as usize == v || target as usize >= v {
                continue;
            }
            chosen.insert(target);
            // Triadic closure: also follow one of the target's followers,
            // forming the v -> w, w -> t, v -> t triangle that gives the
            // (v, t) link a non-zero Jaccard coefficient. Closure edges
            // are extra, on top of the m base edges.
            if rng.gen_bool(config.closure_probability) {
                let fs = &followers[target as usize];
                if !fs.is_empty() {
                    let w = fs[rng.gen_range(0..fs.len())];
                    if w as usize != v {
                        closure_extra.insert(w);
                    }
                }
            }
        }
        chosen.extend(closure_extra.iter().copied());
        // BTreeSet iterates in sorted order, so the per-edge sign draws
        // consume the RNG stream in a platform-independent order.
        let targets: Vec<u32> = chosen.iter().copied().collect();
        for target in targets {
            let sign = sign_for(target as usize, rng);
            builder
                .add_edge(NodeId(v as u32), NodeId(target), sign, 1.0)
                .expect("generated edges are valid");
            pool.push(v as u32);
            pool.push(target);
            followers[target as usize].push(v as u32);
            if rng.gen_bool(config.reciprocity) {
                let back_sign = sign_for(v, rng);
                builder
                    .add_edge(NodeId(target), NodeId(v as u32), back_sign, 1.0)
                    .expect("generated edges are valid");
                pool.push(target);
                pool.push(v as u32);
                followers[v].push(target);
            }
        }
    }
    builder.build()
}

/// Erdős–Rényi-style signed digraph: `edges` distinct directed pairs
/// chosen uniformly, each positive with probability `positive_fraction`.
/// Weights are `1.0`.
///
/// # Panics
///
/// Panics if `nodes < 2`, if `edges` exceeds `nodes·(nodes−1)`, or if
/// `positive_fraction` is outside `[0, 1]`.
pub fn erdos_renyi_signed<R: Rng + ?Sized>(
    nodes: usize,
    edges: usize,
    positive_fraction: f64,
    rng: &mut R,
) -> SignedDigraph {
    assert!(nodes >= 2, "need at least 2 nodes");
    assert!(
        edges <= nodes * (nodes - 1),
        "{edges} edges exceed the {nodes}-node simple digraph capacity"
    );
    assert!(
        (0.0..=1.0).contains(&positive_fraction),
        "positive_fraction must lie in [0, 1]"
    );
    let mut builder = SignedDigraphBuilder::with_nodes(nodes).with_edge_capacity(edges);
    let mut used: BTreeSet<(u32, u32)> = BTreeSet::new();
    while used.len() < edges {
        let src = rng.gen_range(0..nodes) as u32;
        let dst = rng.gen_range(0..nodes) as u32;
        if src == dst || !used.insert((src, dst)) {
            continue;
        }
        let sign = if rng.gen_bool(positive_fraction) {
            Sign::Positive
        } else {
            Sign::Negative
        };
        builder
            .add_edge(NodeId(src), NodeId(dst), sign, 1.0)
            .expect("generated edges are valid");
    }
    builder.build()
}

/// Epinions statistics from the paper's Table II and the SNAP dataset
/// page: 131,828 nodes, 841,372 directed links, ~85.3% positive.
pub const EPINIONS_NODES: usize = 131_828;
/// Epinions directed link count (Table II).
pub const EPINIONS_EDGES: usize = 841_372;
/// Slashdot statistics (Table II): 77,350 nodes, 516,575 links, ~77.4%
/// positive.
pub const SLASHDOT_NODES: usize = 77_350;
/// Slashdot directed link count (Table II).
pub const SLASHDOT_EDGES: usize = 516_575;

fn scaled_config(
    nodes: usize,
    edges: usize,
    positive: f64,
    scale: f64,
    edge_loss_compensation: f64,
) -> PaConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must lie in (0, 1]");
    let n = ((nodes as f64 * scale) as usize).max(16);
    PaConfig {
        nodes: n,
        // The generator loses part of its nominal edges to per-node
        // target dedup, the early-node clamp and closure misses; the
        // per-preset compensation factor is calibrated empirically so
        // the realized edge count matches Table II.
        mean_out_degree: edge_loss_compensation * edges as f64 / nodes as f64,
        positive_fraction: positive,
        distrusted_fraction: 0.15,
        distrust_concentration: 3.0,
        uniform_edge_fraction: 0.2,
        closure_probability: 0.6,
        reciprocity: 0.35,
    }
}

/// A full-scale Epinions-like signed social network (Table II shape:
/// ~131.8k nodes, ~841k directed links, ~85% positive).
pub fn epinions_like<R: Rng + ?Sized>(rng: &mut R) -> SignedDigraph {
    epinions_like_scaled(1.0, rng)
}

/// An Epinions-like network scaled down to `scale · 131,828` nodes with
/// the same mean degree and sign profile — for fast experiments.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn epinions_like_scaled<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> SignedDigraph {
    preferential_attachment_signed(
        &scaled_config(EPINIONS_NODES, EPINIONS_EDGES, 0.853, scale, 0.98),
        rng,
    )
}

/// A full-scale Slashdot-like signed social network (Table II shape:
/// ~77.3k nodes, ~516k directed links, ~77% positive).
pub fn slashdot_like<R: Rng + ?Sized>(rng: &mut R) -> SignedDigraph {
    slashdot_like_scaled(1.0, rng)
}

/// A Slashdot-like network scaled down to `scale · 77,350` nodes.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn slashdot_like_scaled<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> SignedDigraph {
    preferential_attachment_signed(
        &scaled_config(SLASHDOT_NODES, SLASHDOT_EDGES, 0.774, scale, 1.0),
        rng,
    )
}

/// A deterministic SNAP-scale signed digraph: exactly `edges` distinct
/// directed links over `nodes` nodes, grown by preferential attachment
/// so in-degrees are heavy-tailed like the real `soc-sign` dumps, with
/// `sign_fraction` of the links positive (in expectation) and every
/// weight `1.0` (the SNAP format is unweighted; re-weight with
/// [`paper_weights`](crate::paper_weights) afterwards).
///
/// Unlike [`preferential_attachment_signed`], which takes a caller
/// RNG and realizes edge counts only approximately, this generator seeds
/// its own [`StdRng`](rand::rngs::StdRng) from `seed` and tops attachment
/// up with rejection
/// sampling until the edge count is exact — so CI can exercise
/// paper-scale topology (≥ 500k edges) offline from a single `(nodes,
/// edges, sign_fraction, seed)` tuple and get bit-identical graphs on
/// every platform.
///
/// # Panics
///
/// Panics if `nodes < 2`, `edges > nodes·(nodes−1)`, or `sign_fraction`
/// is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use isomit_datasets::snap_like;
///
/// let g = snap_like(100, 300, 0.8, 7);
/// assert_eq!(g.node_count(), 100);
/// assert_eq!(g.edge_count(), 300);
/// // Same tuple, same graph — bit-identical, every time.
/// assert_eq!(snap_like(100, 300, 0.8, 7), g);
/// ```
pub fn snap_like(nodes: usize, edges: usize, sign_fraction: f64, seed: u64) -> SignedDigraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(nodes >= 2, "need at least 2 nodes");
    assert!(
        edges <= nodes * (nodes - 1),
        "{edges} edges exceed the {nodes}-node simple digraph capacity"
    );
    assert!(
        (0.0..=1.0).contains(&sign_fraction),
        "sign_fraction must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edge_list: Vec<Edge> = Vec::with_capacity(edges);
    // lint:allow(determinism) membership-only set (insert/contains); iteration order never observed
    let mut seen: HashSet<u64> = HashSet::with_capacity(edges * 2);
    // Degree-proportional endpoint pool: every accepted edge pushes its
    // endpoints (the target twice), so high-degree nodes keep attracting
    // links — the Barabási–Albert rich-get-richer mechanism.
    let mut pool: Vec<u32> = Vec::with_capacity(edges * 3);
    let pack = |src: u32, dst: u32| (u64::from(src) << 32) | u64::from(dst);
    let sample_sign = |rng: &mut StdRng| {
        if rng.gen_bool(sign_fraction) {
            Sign::Positive
        } else {
            Sign::Negative
        }
    };

    // Phase 1: every node attaches once to an earlier node, giving a
    // connected-ish backbone that touches the whole id range.
    let attach = edges.min(nodes - 1);
    for v in 1..=attach {
        let v = v as u32;
        let u = if pool.is_empty() || rng.gen_bool(0.25) {
            rng.gen_range(0..v)
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        // Direction is randomized: trust networks have both hubs that
        // are widely followed and hubs that follow widely.
        let (src, dst) = if rng.gen_bool(0.5) { (v, u) } else { (u, v) };
        seen.insert(pack(src, dst));
        edge_list.push(Edge::new(
            NodeId(src),
            NodeId(dst),
            sample_sign(&mut rng),
            1.0,
        ));
        pool.push(u);
        pool.push(u);
        pool.push(v);
    }

    // Phase 2: top up to the exact edge count with pool-biased rejection
    // sampling.
    let mut attempts = 0usize;
    let max_attempts = 20 * edges + 1000;
    while edge_list.len() < edges && attempts < max_attempts {
        attempts += 1;
        let pick = |rng: &mut StdRng, pool: &[u32]| {
            if pool.is_empty() || rng.gen_bool(0.3) {
                rng.gen_range(0..nodes) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        };
        let src = pick(&mut rng, &pool);
        let dst = pick(&mut rng, &pool);
        if src == dst || !seen.insert(pack(src, dst)) {
            continue;
        }
        edge_list.push(Edge::new(
            NodeId(src),
            NodeId(dst),
            sample_sign(&mut rng),
            1.0,
        ));
        pool.push(src);
        pool.push(dst);
        pool.push(dst);
    }

    // Deterministic fallback for near-complete densities where rejection
    // sampling stalls: sweep the missing pairs in lexicographic order.
    if edge_list.len() < edges {
        'sweep: for src in 0..nodes as u32 {
            for dst in 0..nodes as u32 {
                if src == dst || !seen.insert(pack(src, dst)) {
                    continue;
                }
                edge_list.push(Edge::new(
                    NodeId(src),
                    NodeId(dst),
                    sample_sign(&mut rng),
                    1.0,
                ));
                if edge_list.len() == edges {
                    break 'sweep;
                }
            }
        }
    }

    SignedDigraph::from_edge_vec(nodes, edge_list).expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::GraphStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn pa_generator_hits_node_and_rough_edge_targets() {
        let cfg = PaConfig {
            nodes: 2000,
            mean_out_degree: 6.0,
            positive_fraction: 0.85,
            distrusted_fraction: 0.15,
            distrust_concentration: 3.0,
            uniform_edge_fraction: 0.2,
            closure_probability: 0.5,
            reciprocity: 0.3,
        };
        let g = preferential_attachment_signed(&cfg, &mut rng(1));
        assert_eq!(g.node_count(), 2000);
        let mean = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (mean - 6.0).abs() < 1.5,
            "mean out-degree {mean} far from target 6"
        );
    }

    #[test]
    fn pa_sign_fraction_close_to_target() {
        let cfg = PaConfig {
            nodes: 4000,
            mean_out_degree: 5.0,
            positive_fraction: 0.8,
            distrusted_fraction: 0.15,
            distrust_concentration: 3.0,
            uniform_edge_fraction: 0.2,
            closure_probability: 0.5,
            reciprocity: 0.3,
        };
        let g = preferential_attachment_signed(&cfg, &mut rng(2));
        let pos = g.positive_edge_fraction();
        assert!(
            (pos - 0.8).abs() < 0.05,
            "positive fraction {pos} far from 0.8"
        );
    }

    #[test]
    fn pa_indegree_is_heavy_tailed() {
        let cfg = PaConfig {
            nodes: 3000,
            mean_out_degree: 5.0,
            positive_fraction: 0.85,
            distrusted_fraction: 0.1,
            distrust_concentration: 2.0,
            uniform_edge_fraction: 0.1,
            closure_probability: 0.5,
            reciprocity: 0.3,
        };
        let g = preferential_attachment_signed(&cfg, &mut rng(3));
        let stats = GraphStats::compute(&g);
        // Hubs: max in-degree far above the mean.
        assert!(
            stats.in_degree.max as f64 > 10.0 * stats.in_degree.mean,
            "max in-degree {} not hub-like vs mean {}",
            stats.in_degree.max,
            stats.in_degree.mean
        );
    }

    #[test]
    fn pa_deterministic_per_seed() {
        let cfg = PaConfig {
            nodes: 500,
            mean_out_degree: 4.0,
            positive_fraction: 0.8,
            distrusted_fraction: 0.1,
            distrust_concentration: 2.0,
            uniform_edge_fraction: 0.2,
            closure_probability: 0.4,
            reciprocity: 0.3,
        };
        assert_eq!(
            preferential_attachment_signed(&cfg, &mut rng(9)),
            preferential_attachment_signed(&cfg, &mut rng(9))
        );
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi_signed(50, 200, 0.7, &mut rng(4));
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
        let pos = g.positive_edge_fraction();
        assert!((pos - 0.7).abs() < 0.12);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn erdos_renyi_rejects_impossible_density() {
        erdos_renyi_signed(3, 10, 0.5, &mut rng(0));
    }

    #[test]
    fn scaled_presets_have_expected_shape() {
        let g = epinions_like_scaled(0.01, &mut rng(5));
        assert_eq!(g.node_count(), 1318);
        let mean = g.edge_count() as f64 / g.node_count() as f64;
        assert!((mean - 6.38).abs() < 2.0, "mean degree {mean}");
        assert!((g.positive_edge_fraction() - 0.853).abs() < 0.06);

        let g = slashdot_like_scaled(0.01, &mut rng(6));
        assert_eq!(g.node_count(), 773);
        assert!((g.positive_edge_fraction() - 0.774).abs() < 0.07);
    }

    #[test]
    fn presets_have_clustering_and_reciprocity() {
        // The Jaccard weighting and diffusion reach both depend on these
        // structural properties (DESIGN.md §5); pin them.
        let g = epinions_like_scaled(0.01, &mut rng(7));
        let clustering = isomit_graph::global_clustering(&g);
        let reciprocity = isomit_graph::reciprocity(&g);
        assert!(
            clustering > 0.03,
            "triadic closure should produce clustering, got {clustering}"
        );
        assert!(
            (0.15..0.55).contains(&reciprocity),
            "reciprocity {reciprocity} out of the configured band"
        );
    }

    #[test]
    #[should_panic(expected = "scale must lie")]
    fn zero_scale_rejected() {
        epinions_like_scaled(0.0, &mut rng(0));
    }

    #[test]
    fn snap_like_exact_counts_and_determinism() {
        let g = snap_like(400, 2_000, 0.8, 42);
        assert_eq!(g.node_count(), 400);
        assert_eq!(g.edge_count(), 2_000);
        assert!((g.positive_edge_fraction() - 0.8).abs() < 0.05);
        assert_eq!(snap_like(400, 2_000, 0.8, 42), g);
        // A different seed gives a different graph.
        assert_ne!(snap_like(400, 2_000, 0.8, 43), g);
        g.validate().unwrap();
    }

    #[test]
    fn snap_like_has_heavy_tailed_in_degrees() {
        let g = snap_like(2_000, 12_000, 0.85, 9);
        let mut in_deg = vec![0usize; g.node_count()];
        for e in g.edges() {
            in_deg[e.dst.index()] += 1;
        }
        in_deg.sort_unstable_by(|a, b| b.cmp(a));
        let mean = 12_000.0 / 2_000.0;
        assert!(
            in_deg[0] as f64 > 6.0 * mean,
            "max in-degree {} should dwarf the mean {mean}",
            in_deg[0]
        );
    }

    #[test]
    fn snap_like_handles_dense_and_sparse_extremes() {
        // Near-complete density exercises the deterministic sweep.
        let g = snap_like(12, 12 * 11, 0.5, 3);
        assert_eq!(g.edge_count(), 12 * 11);
        // Fewer edges than nodes leaves some nodes isolated but exact.
        let g = snap_like(50, 10, 0.5, 3);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn snap_like_rejects_impossible_density() {
        snap_like(3, 10, 0.5, 0);
    }
}
