use isomit_graph::{jaccard_weights, SignedDigraph};
use rand::Rng;

/// Applies the paper's §IV-B3 experimental weighting pipeline to a social
/// network and returns the resulting **diffusion** network:
///
/// 1. every social link `(v, u)` is weighted with its Jaccard coefficient
///    `JC(v, u) = |Γ_out(v) ∩ Γ_in(u)| / |Γ_out(v) ∪ Γ_in(u)|`;
/// 2. links whose coefficient is `0` (sparse networks have many) get a
///    weight drawn uniformly from `(0, 0.1]`, "just as existing works do
///    for the IC diffusion model";
/// 3. the network is reversed (Definition 2): the diffusion link `(u, v)`
///    inherits the sign and weight of the social link `(v, u)`.
///
/// ```
/// use isomit_datasets::paper_weights;
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// let social = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)],
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let diffusion = paper_weights(&social, &mut rng);
/// // The social edge (0, 1) became the diffusion edge (1, 0).
/// assert!(diffusion.edge(NodeId(1), NodeId(0)).is_some());
/// # Ok(())
/// # }
/// ```
pub fn paper_weights<R: Rng + ?Sized>(social: &SignedDigraph, rng: &mut R) -> SignedDigraph {
    let weighted = jaccard_weights(social);
    let filled = weighted.map_weights(|e| {
        if e.weight == 0.0 {
            // Uniform on (0, 0.1]: avoid exactly-zero weights, which would
            // make the link dead under both IC and MFC.
            let draw: f64 = rng.gen_range(0.0..0.1);
            (0.1 - draw).max(f64::MIN_POSITIVE)
        } else {
            e.weight
        }
    });
    filled.reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn social() -> SignedDigraph {
        // 0 follows 1 and 2; 1 follows 2; 2 follows 0 (negative).
        SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
                Edge::new(NodeId(0), NodeId(2), Sign::Positive, 1.0),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
                Edge::new(NodeId(2), NodeId(0), Sign::Negative, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reverses_and_keeps_signs() {
        let d = paper_weights(&social(), &mut StdRng::seed_from_u64(0));
        assert_eq!(d.edge_count(), 4);
        let e = d.edge(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(e.sign, Sign::Negative); // social (1, 2) was negative
        assert!(d.edge(NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn nonzero_jaccard_weights_survive() {
        // Social (0, 2): out(0) = {1, 2}, in(2) = {0, 1} → JC = 1/3; it
        // becomes diffusion (2, 0).
        let d = paper_weights(&social(), &mut StdRng::seed_from_u64(0));
        let e = d.edge(NodeId(2), NodeId(0)).unwrap();
        assert!((e.weight - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_jaccard_weights_filled_in_range() {
        let d = paper_weights(&social(), &mut StdRng::seed_from_u64(42));
        for e in d.edges() {
            assert!(e.weight > 0.0, "dead edge ({}, {})", e.src, e.dst);
            assert!(e.weight <= 1.0);
        }
        // Social (2, 0): out(2) = {0}, in(0) = {2} → JC = 0 → filled with
        // a draw in (0, 0.1].
        let e = d.edge(NodeId(0), NodeId(2)).unwrap();
        assert!(e.weight > 0.0 && e.weight <= 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = paper_weights(&social(), &mut StdRng::seed_from_u64(5));
        let b = paper_weights(&social(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
