use crate::weighting::paper_weights;
use isomit_diffusion::{Cascade, DiffusionModel, InfectedNetwork, Mfc, SeedSet};
use isomit_graph::{NodeId, SignedDigraph};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of one end-to-end detection experiment, defaulting to the
/// paper's §IV-B3 setup (`N = 1000`, `θ = 0.5`, `α = 3`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of planted rumor initiators (`N`).
    pub n_initiators: usize,
    /// Fraction of initiators seeded with the positive state (`θ`).
    pub positive_ratio: f64,
    /// MFC asymmetric boosting coefficient (`α`).
    pub alpha: f64,
    /// Fraction of infected-node states hidden as unknown in the
    /// snapshot (`0.0` = fully observed, the paper's main setting).
    pub mask_fraction: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_initiators: 1000,
            positive_ratio: 0.5,
            alpha: 3.0,
            mask_fraction: 0.0,
        }
    }
}

impl ScenarioConfig {
    /// A small-scale variant (`N = 20`) suitable for scaled-down
    /// networks and doc examples.
    pub fn small() -> Self {
        ScenarioConfig {
            n_initiators: 20,
            ..Self::default()
        }
    }

    /// Replaces the initiator count.
    pub fn with_initiators(mut self, n: usize) -> Self {
        self.n_initiators = n;
        self
    }

    /// Replaces the mask fraction.
    pub fn with_mask_fraction(mut self, fraction: f64) -> Self {
        self.mask_fraction = fraction;
        self
    }
}

/// One generated experiment: the derived diffusion network, the planted
/// ground truth, the forward MFC cascade, and the infected snapshot that
/// detectors receive.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The weighted signed diffusion network (paper weighting applied).
    pub diffusion: SignedDigraph,
    /// The planted initiators and their initial states.
    pub ground_truth: SeedSet,
    /// The forward simulation record.
    pub cascade: Cascade,
    /// The snapshot handed to detectors (possibly with masked states).
    pub snapshot: InfectedNetwork,
}

impl Scenario {
    /// Ground truth as `(node, ±1)` pairs for
    /// `isomit_metrics::evaluate_detection`-style evaluation.
    pub fn ground_truth_pairs(&self) -> Vec<(NodeId, i8)> {
        self.ground_truth
            .iter()
            .map(|(n, s)| (n, s.value()))
            .collect()
    }

    /// Ground-truth initiators that actually appear in the snapshot.
    ///
    /// All seeds are always infected under MFC, so this equals the full
    /// ground truth; provided for defensive evaluation code.
    pub fn infected_ground_truth(&self) -> Vec<NodeId> {
        self.ground_truth
            .nodes()
            .filter(|&n| self.cascade.state(n).is_active())
            .collect()
    }
}

/// Builds a full experiment from a social network, following §IV-B3:
/// weight with Jaccard coefficients (zeros refilled from `(0, 0.1]`),
/// reverse into the diffusion network, plant `N` random initiators at
/// positive ratio `θ`, simulate MFC with boosting `α`, and extract the
/// infected snapshot (masking states if configured).
///
/// # Panics
///
/// Panics if `n_initiators` exceeds the node count, or on invalid
/// `positive_ratio` / `alpha` / `mask_fraction`.
pub fn build_scenario<R: Rng>(
    social: &SignedDigraph,
    config: &ScenarioConfig,
    rng: &mut R,
) -> Scenario {
    let model = Mfc::new(config.alpha).expect("alpha validated by Mfc");
    build_scenario_with_model(social, config, &model, rng)
}

/// [`build_scenario`] generalized over the forward diffusion model:
/// weighting, seed sampling and snapshot extraction are unchanged, only
/// the simulation step runs `model` instead of MFC. Passing
/// `Mfc::new(config.alpha)` reproduces [`build_scenario`] bit for bit
/// (the RNG draw order is identical), which the detector bakeoff relies
/// on to compare estimators across diffusion models on otherwise
/// identical setups.
///
/// `config.alpha` is ignored except by models that take it as a
/// constructor parameter.
///
/// # Panics
///
/// Panics if `n_initiators` exceeds the node count, on invalid
/// `positive_ratio` / `mask_fraction`, or if the model rejects the
/// sampled seed set.
pub fn build_scenario_with_model<R: Rng>(
    social: &SignedDigraph,
    config: &ScenarioConfig,
    model: &dyn DiffusionModel,
    rng: &mut R,
) -> Scenario {
    let diffusion = paper_weights(social, rng);
    let ground_truth = SeedSet::sample(&diffusion, config.n_initiators, config.positive_ratio, rng);
    let cascade = model
        .simulate(&diffusion, &ground_truth, rng)
        .expect("sampled seeds lie within the diffusion network");
    let snapshot = InfectedNetwork::from_cascade(&diffusion, &cascade);
    let snapshot = if config.mask_fraction > 0.0 {
        snapshot.with_masked_states(config.mask_fraction, rng)
    } else {
        snapshot
    };
    Scenario {
        diffusion,
        ground_truth,
        cascade,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::epinions_like_scaled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn scenario_pipeline_is_consistent() {
        let mut r = rng(11);
        let social = epinions_like_scaled(0.005, &mut r);
        let cfg = ScenarioConfig::small();
        let s = build_scenario(&social, &cfg, &mut r);
        assert_eq!(s.ground_truth.len(), 20);
        // Every seed is infected and present in the snapshot.
        for (node, sign) in s.ground_truth.iter() {
            assert_eq!(
                s.cascade.state(node).sign(),
                Some(s.cascade.state(node).sign().unwrap())
            );
            assert!(s.snapshot.mapping().to_subgraph(node).is_some());
            let _ = sign;
        }
        assert_eq!(s.infected_ground_truth().len(), 20);
        // Snapshot covers exactly the infected nodes.
        assert_eq!(s.snapshot.node_count(), s.cascade.infected_count());
        // Diffusion network is the reversal of the social one
        // structurally: same edge count.
        assert_eq!(s.diffusion.edge_count(), social.edge_count());
    }

    #[test]
    fn positive_ratio_respected() {
        let mut r = rng(12);
        let social = epinions_like_scaled(0.005, &mut r);
        let cfg = ScenarioConfig::small().with_initiators(40);
        let s = build_scenario(&social, &cfg, &mut r);
        assert!((s.ground_truth.positive_ratio() - 0.5).abs() < 1e-9);
        let pairs = s.ground_truth_pairs();
        assert_eq!(pairs.len(), 40);
        assert_eq!(pairs.iter().filter(|(_, v)| *v == 1).count(), 20);
    }

    #[test]
    fn masking_produces_unknowns() {
        let mut r = rng(13);
        let social = epinions_like_scaled(0.005, &mut r);
        let cfg = ScenarioConfig::small().with_mask_fraction(0.5);
        let s = build_scenario(&social, &cfg, &mut r);
        let unknowns = s.snapshot.node_count() - s.snapshot.observed_count();
        assert!(unknowns > 0, "expected some masked states");
    }

    #[test]
    fn with_model_mfc_is_bit_identical_to_build_scenario() {
        let social = epinions_like_scaled(0.004, &mut rng(3));
        let cfg = ScenarioConfig::small();
        let legacy = build_scenario(&social, &cfg, &mut rng(7));
        let model = Mfc::new(cfg.alpha).unwrap();
        let general = build_scenario_with_model(&social, &cfg, &model, &mut rng(7));
        assert_eq!(legacy, general);
    }

    #[test]
    fn with_model_runs_other_models() {
        use isomit_diffusion::{IndependentCascade, LinearThreshold};
        let social = epinions_like_scaled(0.004, &mut rng(3));
        let cfg = ScenarioConfig::small();
        for model in [
            Box::new(IndependentCascade::new()) as Box<dyn DiffusionModel>,
            Box::new(LinearThreshold::new()),
        ] {
            let s = build_scenario_with_model(&social, &cfg, model.as_ref(), &mut rng(9));
            assert_eq!(s.ground_truth.len(), 20);
            assert_eq!(s.snapshot.node_count(), s.cascade.infected_count());
        }
    }

    #[test]
    fn scenario_deterministic_per_seed() {
        let social = epinions_like_scaled(0.004, &mut rng(3));
        let cfg = ScenarioConfig::small();
        let a = build_scenario(&social, &cfg, &mut rng(7));
        let b = build_scenario(&social, &cfg, &mut rng(7));
        assert_eq!(a, b);
    }
}
