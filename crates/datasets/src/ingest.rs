//! Allocation-lean streaming ingestion of SNAP-format signed edge lists.
//!
//! [`isomit_graph::io::read_snap`] is the convenience parser: one heap
//! `String` per line, per-edge builder calls, hard errors on any
//! malformed input. That is the right interface for small fixtures but
//! not for the paper's evaluation dumps (`soc-sign-epinions.txt` has
//! ~841k edges, `soc-sign-Slashdot090221.txt` ~549k): real SNAP files
//! contain comment banners, self-loops, duplicate edges and the odd
//! malformed line, and a loader that either aborts or silently drops
//! them is useless for auditing what was actually ingested.
//!
//! [`load_snap`] is the scale path:
//!
//! * one reusable byte buffer for the whole stream — no per-line `String`
//!   allocations, no UTF-8 validation pass (ids and signs are ASCII);
//! * integer parsing straight off the byte slice;
//! * explicit policy for malformed lines ([`MalformedPolicy`]) instead of
//!   a hardcoded abort;
//! * a [`LoadReport`] accounting for every input line: comments, blanks,
//!   self-loops, duplicates and malformed lines are counted, never
//!   silently discarded;
//! * direct-to-CSR construction through
//!   [`SignedDigraph::from_edge_vec`], skipping the incremental builder.
//!
//! The loader also understands the node-count header that
//! [`isomit_graph::io::write_snap`] emits
//! (`# Directed signed network: N nodes, M edges`), so graphs with
//! trailing isolated nodes round-trip exactly: `load(write(g)) == g`.

use isomit_graph::{Edge, GraphError, NodeId, Sign, SignedDigraph};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// What [`load_snap`] should do with a line it cannot parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MalformedPolicy {
    /// Abort with [`GraphError::Parse`] naming the offending line — the
    /// right default for curated inputs.
    #[default]
    Error,
    /// Skip the line and count it in [`LoadReport::malformed_lines`] —
    /// for raw dumps where a handful of damaged lines should not kill a
    /// multi-minute ingestion run.
    Skip,
}

/// Ingestion options for [`load_snap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadOptions {
    /// Policy for unparseable lines.
    pub malformed: MalformedPolicy,
    /// Lower bound on the node count of the produced graph (the SNAP
    /// format itself cannot express trailing isolated nodes outside the
    /// generated header comment).
    pub min_nodes: usize,
    /// Pre-allocation hint for the edge vector; `0` lets it grow
    /// organically.
    pub edge_capacity: usize,
}

impl LoadOptions {
    /// Options for raw real-world dumps: malformed lines are counted and
    /// skipped rather than aborting the run.
    pub fn lenient() -> Self {
        LoadOptions {
            malformed: MalformedPolicy::Skip,
            ..Self::default()
        }
    }
}

/// Per-line accounting of one [`load_snap`] run: everything the loader
/// dropped, and why, plus the shape of the graph it produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Total input lines seen (including the final line without `\n`).
    pub total_lines: u64,
    /// Lines starting with `#` after whitespace trimming.
    pub comment_lines: u64,
    /// Empty or whitespace-only lines.
    pub blank_lines: u64,
    /// Well-formed edge lines accepted into the edge list (before
    /// duplicate resolution).
    pub parsed_edges: u64,
    /// Well-formed edge lines dropped because `src == dst` (self-trust
    /// carries no diffusion; the paper drops them too).
    pub self_loops: u64,
    /// Accepted edges that lost a duplicate-`(src, dst)` resolution
    /// (last occurrence wins, matching the builder's rule).
    pub duplicate_edges: u64,
    /// Lines skipped under [`MalformedPolicy::Skip`]; always `0` under
    /// [`MalformedPolicy::Error`].
    pub malformed_lines: u64,
    /// Node count of the produced graph.
    pub nodes: usize,
    /// Edge count of the produced graph (after duplicate resolution).
    pub edges: usize,
}

impl LoadReport {
    /// Total lines that did not contribute an edge to the final graph.
    pub fn dropped_lines(&self) -> u64 {
        self.comment_lines
            + self.blank_lines
            + self.self_loops
            + self.duplicate_edges
            + self.malformed_lines
    }
}

/// Splits `line` into at most 4 ASCII-whitespace-separated fields;
/// returns the field count actually present.
fn split_fields<'a>(line: &'a [u8], fields: &mut [&'a [u8]; 4]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < line.len() && count < 4 {
        while line.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        if i >= line.len() {
            break;
        }
        let start = i;
        while line.get(i).is_some_and(|b| !b.is_ascii_whitespace()) {
            i += 1;
        }
        if let Some(slot) = fields.get_mut(count) {
            *slot = line.get(start..i).unwrap_or(&[]);
        }
        count += 1;
    }
    count
}

/// Parses an unsigned decimal node id from a byte slice, rejecting
/// empty input, non-digits and `u32` overflow.
fn parse_u32(field: &[u8]) -> Option<u32> {
    if field.is_empty() || field.len() > 10 {
        return None;
    }
    let mut value: u64 = 0;
    for &b in field {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value * 10 + u64::from(b - b'0');
    }
    u32::try_from(value).ok()
}

/// Parses a SNAP sign field: any nonzero decimal integer, optionally
/// negative (real dumps use `-1`/`1`; magnitudes are ignored like
/// [`Sign::from_value`] does).
fn parse_sign(field: &[u8]) -> Option<Sign> {
    let (negative, digits) = match field.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, field),
    };
    if digits.is_empty() || digits.len() > 18 || !digits.iter().all(u8::is_ascii_digit) {
        return None;
    }
    if digits.iter().all(|&b| b == b'0') {
        return None; // sign 0 is meaningless in a signed network
    }
    Some(if negative {
        Sign::Negative
    } else {
        Sign::Positive
    })
}

/// Recognizes the [`isomit_graph::io::write_snap`] header comment
/// `# Directed signed network: N nodes, M edges` and extracts `N`, so
/// trailing isolated nodes survive a write/load round trip.
fn header_node_count(comment: &[u8]) -> Option<usize> {
    let rest = comment.strip_prefix(b"# Directed signed network: ")?;
    let end = rest.iter().position(|&b| b == b' ')?;
    let (number, tail) = rest.split_at(end);
    if tail.starts_with(b" nodes") {
        parse_u32(number).map(|n| n as usize)
    } else {
        None
    }
}

/// Streams a SNAP-format signed edge list into a [`SignedDigraph`],
/// returning the graph plus a full [`LoadReport`] of what was dropped.
///
/// Every edge gets weight `1.0` (the SNAP format carries no weights);
/// re-weight afterwards with [`paper_weights`](crate::paper_weights) or
/// [`SignedDigraph::map_weights`]. Duplicate `(src, dst)` pairs resolve
/// last-wins; self-loops and comments are dropped and counted.
///
/// # Errors
///
/// Returns [`GraphError::Io`] for reader failures and — only under
/// [`MalformedPolicy::Error`] — [`GraphError::Parse`] with the 1-based
/// line number for unparseable lines.
///
/// # Examples
///
/// ```
/// use isomit_datasets::{load_snap, LoadOptions};
///
/// let input = "\
/// ## a comment
/// 0 1 -1
/// 1 1 1
/// 1\t2\t1
/// 0 1 1
/// ";
/// let (graph, report) = load_snap(input.as_bytes(), &LoadOptions::default()).unwrap();
/// assert_eq!(graph.node_count(), 3);
/// assert_eq!(graph.edge_count(), 2); // self-loop dropped, duplicate resolved
/// assert_eq!(report.self_loops, 1);
/// assert_eq!(report.duplicate_edges, 1);
/// assert_eq!(report.comment_lines, 1);
/// ```
pub fn load_snap<R: Read>(
    reader: R,
    options: &LoadOptions,
) -> Result<(SignedDigraph, LoadReport), GraphError> {
    let mut reader = BufReader::with_capacity(1 << 16, reader);
    let mut report = LoadReport::default();
    let mut edges: Vec<Edge> = Vec::with_capacity(options.edge_capacity);
    let mut min_nodes = options.min_nodes;
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        report.total_lines += 1;
        let line_no = report.total_lines as usize;
        // Trim the terminator plus surrounding whitespace; `\r\n` line
        // endings reduce to the same slice as `\n` ones.
        let mut line = buf.as_slice();
        while let Some((&first, rest)) = line.split_first() {
            if first.is_ascii_whitespace() {
                line = rest;
            } else {
                break;
            }
        }
        while let Some((&last, rest)) = line.split_last() {
            if last.is_ascii_whitespace() {
                line = rest;
            } else {
                break;
            }
        }
        if line.is_empty() {
            report.blank_lines += 1;
            continue;
        }
        if line.first() == Some(&b'#') {
            report.comment_lines += 1;
            if let Some(n) = header_node_count(line) {
                min_nodes = min_nodes.max(n);
            }
            continue;
        }
        let mut fields: [&[u8]; 4] = [&[]; 4];
        let count = split_fields(line, &mut fields);
        let [f0, f1, f2, _] = fields;
        let parsed = if count == 3 {
            match (parse_u32(f0), parse_u32(f1), parse_sign(f2)) {
                (Some(src), Some(dst), Some(sign)) => Some((src, dst, sign)),
                _ => None,
            }
        } else {
            None
        };
        let Some((src, dst, sign)) = parsed else {
            match options.malformed {
                MalformedPolicy::Skip => {
                    report.malformed_lines += 1;
                    continue;
                }
                MalformedPolicy::Error => {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: format!(
                            "expected `src dst sign` with integer ids and a nonzero sign, got {:?}",
                            String::from_utf8_lossy(line)
                        ),
                    });
                }
            }
        };
        if src == dst {
            report.self_loops += 1;
            continue;
        }
        report.parsed_edges += 1;
        edges.push(Edge::new(NodeId(src), NodeId(dst), sign, 1.0));
    }
    // Self-loops and weights were screened above, so construction cannot
    // fail; keep the `?` anyway to avoid a panic path.
    let graph = SignedDigraph::from_edge_vec(min_nodes, edges)?;
    report.duplicate_edges = report.parsed_edges - graph.edge_count() as u64;
    report.nodes = graph.node_count();
    report.edges = graph.edge_count();
    Ok((graph, report))
}

/// Opens `path` and streams it through [`load_snap`].
///
/// # Errors
///
/// See [`load_snap`]; additionally fails with [`GraphError::Io`] if the
/// file cannot be opened.
pub fn load_snap_file<P: AsRef<Path>>(
    path: P,
    options: &LoadOptions,
) -> Result<(SignedDigraph, LoadReport), GraphError> {
    let file = std::fs::File::open(path)?;
    load_snap(file, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict() -> LoadOptions {
        LoadOptions::default()
    }

    #[test]
    fn parses_basic_edge_list() {
        let (g, r) = load_snap("0 1 -1\n1\t2\t1\n3   0   1\n".as_bytes(), &strict()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap().sign, Sign::Negative);
        assert_eq!(g.edge(NodeId(1), NodeId(2)).unwrap().sign, Sign::Positive);
        assert_eq!(r.parsed_edges, 3);
        assert_eq!(r.dropped_lines(), 0);
    }

    #[test]
    fn matches_read_snap_on_shared_inputs() {
        let input = "# banner\n\n0 1 -1\n1 2 1\n2 2 1\n0 1 1\n";
        let via_loader = load_snap(input.as_bytes(), &strict()).unwrap().0;
        let via_io = isomit_graph::io::read_snap(input.as_bytes()).unwrap();
        assert_eq!(via_loader, via_io);
    }

    #[test]
    fn counts_every_dropped_line_kind() {
        let input = "# c1\n# c2\n\n   \n0 0 1\n0 1 1\n0 1 -1\nbroken line\n2 3 1\n";
        let (g, r) = load_snap(input.as_bytes(), &LoadOptions::lenient()).unwrap();
        assert_eq!(r.total_lines, 9);
        assert_eq!(r.comment_lines, 2);
        assert_eq!(r.blank_lines, 2);
        assert_eq!(r.self_loops, 1);
        assert_eq!(r.malformed_lines, 1);
        assert_eq!(r.duplicate_edges, 1);
        assert_eq!(r.parsed_edges, 3);
        assert_eq!((r.nodes, r.edges), (4, 2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(r.dropped_lines(), 7);
    }

    #[test]
    fn strict_mode_errors_with_line_number() {
        let err = load_snap("# ok\n0 1 1\nbroken\n".as_bytes(), &strict()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn conflicting_sign_duplicates_are_last_wins() {
        let (g, r) = load_snap("0 1 1\n0 1 -1\n".as_bytes(), &strict()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap().sign, Sign::Negative);
        assert_eq!(r.duplicate_edges, 1);
    }

    #[test]
    fn crlf_and_whitespace_are_tolerated() {
        let input = "0 1 1\r\n  2\t3\t-1  \r\n\r\n# tail\r\n";
        let (g, r) = load_snap(input.as_bytes(), &strict()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(NodeId(2), NodeId(3)).unwrap().sign, Sign::Negative);
        assert_eq!(r.blank_lines, 1);
        assert_eq!(r.comment_lines, 1);
    }

    #[test]
    fn missing_trailing_newline_still_parses_last_line() {
        let (g, r) = load_snap("0 1 1\n2 3 -1".as_bytes(), &strict()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(r.total_lines, 2);
    }

    #[test]
    fn header_comment_preserves_isolated_nodes() {
        let input = "# Directed signed network: 9 nodes, 1 edges\n0 1 1\n";
        let (g, _) = load_snap(input.as_bytes(), &strict()).unwrap();
        assert_eq!(g.node_count(), 9);
        // Other comments never set the node count.
        let (g, _) = load_snap("# nodes: 9\n0 1 1\n".as_bytes(), &strict()).unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn min_nodes_option_is_a_floor() {
        let opts = LoadOptions {
            min_nodes: 12,
            ..LoadOptions::default()
        };
        let (g, _) = load_snap("0 1 1\n".as_bytes(), &opts).unwrap();
        assert_eq!(g.node_count(), 12);
    }

    #[test]
    fn rejects_overflowing_and_nondigit_ids() {
        for bad in [
            "4294967296 1 1\n", // u32::MAX + 1
            "x 1 1\n",
            "0 y 1\n",
            "0 1 maybe\n",
            "0 1 0\n",
            "0 1 -0\n",
            "0 1\n",
            "0 1 1 extra\n",
            "0 1 --1\n",
            "-1 1 1\n",
        ] {
            assert!(
                matches!(
                    load_snap(bad.as_bytes(), &strict()),
                    Err(GraphError::Parse { .. })
                ),
                "input {bad:?} should be a parse error"
            );
            let (g, r) = load_snap(bad.as_bytes(), &LoadOptions::lenient()).unwrap();
            assert_eq!(g.edge_count(), 0, "input {bad:?} should be skipped");
            assert_eq!(r.malformed_lines, 1);
        }
        // u32::MAX itself parses (the graph build, not the parser, is
        // what bounds practical id ranges).
        assert_eq!(parse_u32(b"4294967295"), Some(u32::MAX));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let (g, r) = load_snap("".as_bytes(), &strict()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(r, LoadReport::default());
    }

    #[test]
    fn file_loading_round_trips() {
        let dir = std::env::temp_dir().join("isomit-datasets-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "# hi\n0 1 1\n1 2 -1\n").unwrap();
        let (g, r) = load_snap_file(&path, &strict()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(r.comment_lines, 1);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_snap_file("/nonexistent/isomit.txt", &strict()),
            Err(GraphError::Io(_))
        ));
    }
}
