//! A polarized-community signed network generator: the adversarial
//! "friend/foe camps" structure that motivates signed-network analysis
//! (dense trust inside camps, distrust across) — structural balance
//! theory's archetype and a natural stress test for rumor detection,
//! since opinions align with camp boundaries.

use isomit_graph::{NodeId, Sign, SignedDigraph, SignedDigraphBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the polarized-community generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolarizedConfig {
    /// Total number of nodes, split evenly across camps.
    pub nodes: usize,
    /// Number of camps (≥ 2).
    pub communities: usize,
    /// Average out-degree per node.
    pub mean_out_degree: f64,
    /// Fraction of a node's edges that stay inside its camp.
    pub intra_fraction: f64,
    /// Probability that an intra-camp edge is positive (trust is the
    /// norm inside a camp).
    pub intra_positive: f64,
    /// Probability that an inter-camp edge is positive (distrust is the
    /// norm across camps).
    pub inter_positive: f64,
}

impl Default for PolarizedConfig {
    fn default() -> Self {
        PolarizedConfig {
            nodes: 1000,
            communities: 2,
            mean_out_degree: 8.0,
            intra_fraction: 0.85,
            intra_positive: 0.95,
            inter_positive: 0.15,
        }
    }
}

impl PolarizedConfig {
    fn validate(&self) {
        assert!(self.communities >= 2, "need at least 2 camps");
        assert!(
            self.nodes >= 2 * self.communities,
            "need at least 2 nodes per camp"
        );
        assert!(
            self.mean_out_degree > 0.0,
            "mean_out_degree must be positive"
        );
        for (name, v) in [
            ("intra_fraction", self.intra_fraction),
            ("intra_positive", self.intra_positive),
            ("inter_positive", self.inter_positive),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must lie in [0, 1]");
        }
    }
}

/// The camp (community index) of each node under [`polarized_communities`]:
/// node `v` belongs to camp `v % communities`.
pub fn camp_of(node: NodeId, communities: usize) -> usize {
    node.index() % communities
}

/// Generates a polarized signed social network per [`PolarizedConfig`].
/// All edge weights are `1.0`; apply
/// [`paper_weights`](crate::paper_weights) afterwards.
///
/// # Panics
///
/// Panics on invalid configuration.
pub fn polarized_communities<R: Rng + ?Sized>(
    config: &PolarizedConfig,
    rng: &mut R,
) -> SignedDigraph {
    config.validate();
    let n = config.nodes;
    let c = config.communities;
    let mut builder = SignedDigraphBuilder::with_nodes(n)
        .with_edge_capacity((config.mean_out_degree * n as f64) as usize);
    let mut chosen: BTreeSet<u32> = BTreeSet::new();
    let max_m = (2.0 * config.mean_out_degree).max(1.0);
    for v in 0..n {
        let my_camp = v % c;
        let m = ((rng.gen_range(0.0..max_m) + 0.5) as usize).clamp(1, n - 1);
        chosen.clear();
        let mut attempts = 0;
        while chosen.len() < m && attempts < 30 * m {
            attempts += 1;
            let intra = rng.gen_bool(config.intra_fraction);
            // Sample a target in the right camp: targets of camp q are
            // the nodes ≡ q (mod c).
            let target_camp = if intra {
                my_camp
            } else {
                let mut other = rng.gen_range(0..c - 1);
                if other >= my_camp {
                    other += 1;
                }
                other
            };
            let per_camp = n.div_ceil(c);
            let slot = rng.gen_range(0..per_camp);
            let target = slot * c + target_camp;
            if target >= n || target == v {
                continue;
            }
            chosen.insert(u32::from(NodeId::from_index(target)));
        }
        let mut targets: Vec<u32> = chosen.iter().copied().collect();
        targets.sort_unstable();
        for target in targets {
            let intra = target as usize % c == my_camp;
            let p_pos = if intra {
                config.intra_positive
            } else {
                config.inter_positive
            };
            let sign = if rng.gen_bool(p_pos) {
                Sign::Positive
            } else {
                Sign::Negative
            };
            builder
                .add_edge(NodeId::from_index(v), NodeId(target), sign, 1.0)
                .expect("generated edges are valid");
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn respects_basic_shape() {
        let cfg = PolarizedConfig {
            nodes: 600,
            ..PolarizedConfig::default()
        };
        let g = polarized_communities(&cfg, &mut rng(1));
        assert_eq!(g.node_count(), 600);
        let mean = g.edge_count() as f64 / g.node_count() as f64;
        assert!((mean - 8.0).abs() < 2.0, "mean degree {mean}");
    }

    #[test]
    fn trust_concentrates_inside_camps() {
        let cfg = PolarizedConfig {
            nodes: 2000,
            ..PolarizedConfig::default()
        };
        let g = polarized_communities(&cfg, &mut rng(2));
        let (mut intra_pos, mut intra_tot, mut inter_pos, mut inter_tot) = (0, 0, 0, 0);
        for e in g.edges() {
            let same = camp_of(e.src, 2) == camp_of(e.dst, 2);
            if same {
                intra_tot += 1;
                if e.sign.is_positive() {
                    intra_pos += 1;
                }
            } else {
                inter_tot += 1;
                if e.sign.is_positive() {
                    inter_pos += 1;
                }
            }
        }
        let intra_rate = intra_pos as f64 / intra_tot as f64;
        let inter_rate = inter_pos as f64 / inter_tot as f64;
        assert!(intra_rate > 0.9, "intra positive rate {intra_rate}");
        assert!(inter_rate < 0.25, "inter positive rate {inter_rate}");
        // Most edges are intra-camp.
        assert!(intra_tot > 3 * inter_tot);
    }

    #[test]
    fn camp_assignment_is_modular() {
        assert_eq!(camp_of(NodeId(0), 3), 0);
        assert_eq!(camp_of(NodeId(7), 3), 1);
        assert_eq!(camp_of(NodeId(11), 3), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PolarizedConfig::default();
        assert_eq!(
            polarized_communities(&cfg, &mut rng(9)),
            polarized_communities(&cfg, &mut rng(9))
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 camps")]
    fn one_camp_rejected() {
        let cfg = PolarizedConfig {
            communities: 1,
            ..PolarizedConfig::default()
        };
        polarized_communities(&cfg, &mut rng(0));
    }

    #[test]
    fn many_camps_work() {
        let cfg = PolarizedConfig {
            nodes: 300,
            communities: 5,
            ..PolarizedConfig::default()
        };
        let g = polarized_communities(&cfg, &mut rng(3));
        assert_eq!(g.node_count(), 300);
        assert!(g.edge_count() > 0);
    }
}
