//! # isomit-datasets
//!
//! Dataset substrate for the `isomit` workspace: loaders for the
//! SNAP-format signed networks the paper evaluates on (Epinions,
//! Slashdot — see [`isomit_graph::io`]), synthetic generators matched to
//! those datasets' published statistics, the paper's §IV-B3 edge
//! weighting pipeline, and the end-to-end experiment scenario builder
//! (plant initiators → simulate MFC → snapshot).
//!
//! # Substitution note
//!
//! The paper downloads `soc-sign-epinions` and `soc-sign-Slashdot` from
//! SNAP. Those dumps are unavailable offline, so [`epinions_like`] and
//! [`slashdot_like`] generate preferential-attachment signed digraphs
//! with the same node/edge counts (Table II) and positive-link fractions
//! (~85% / ~77%). Because the evaluation's ground truth comes from
//! *simulating MFC forward* on whatever graph is given — never from
//! dataset labels — any structurally similar graph exercises identical
//! code paths; real SNAP files can be dropped in through
//! [`isomit_graph::io::read_snap_file`] unchanged.
//!
//! ```
//! use isomit_datasets::{build_scenario, epinions_like_scaled, ScenarioConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let social = epinions_like_scaled(0.005, &mut rng); // ~650 nodes
//! let scenario = build_scenario(&social, &ScenarioConfig::small(), &mut rng);
//! assert!(scenario.snapshot.node_count() >= scenario.ground_truth.len());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod generators;
mod ingest;
mod polarized;
mod scenario;
mod weighting;

pub use generators::{
    epinions_like, epinions_like_scaled, erdos_renyi_signed, preferential_attachment_signed,
    slashdot_like, slashdot_like_scaled, snap_like, PaConfig, EPINIONS_EDGES, EPINIONS_NODES,
    SLASHDOT_EDGES, SLASHDOT_NODES,
};
pub use ingest::{load_snap, load_snap_file, LoadOptions, LoadReport, MalformedPolicy};
pub use polarized::{camp_of, polarized_communities, PolarizedConfig};
pub use scenario::{build_scenario, build_scenario_with_model, Scenario, ScenarioConfig};
pub use weighting::paper_weights;
