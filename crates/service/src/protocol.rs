//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, correlated by `id`:
//!
//! ```text
//! → {"id": 1, "type": "health"}
//! ← {"id": 1, "ok": true, "result": {"status": "ok", ...}}
//! → {"id": 2, "type": "rid", "snapshot": {...}, "config": {"alpha": 3, "beta": 0.1}}
//! ← {"id": 2, "ok": true, "result": {"config": {...}, "detection": {...}}}
//! ← {"id": 3, "ok": false, "error": {"kind": "overloaded", "message": "..."}}
//! ```
//!
//! Request types: `health`, `stats`, `rid`, `simulate`, `shutdown`,
//! plus the stateful watch-session verbs `watch_open`, `watch_delta`
//! and `watch_close` (see `docs/PROTOCOL.md` for the session state
//! machine). Everything is built on the in-repo [`isomit_graph::json`]
//! codec, so floating-point payloads survive the wire bit-exactly.

use isomit_core::{RidConfig, RidDelta};
use isomit_detectors::DetectorKind;
use isomit_diffusion::{DiffusionError, InfectedNetwork, SeedSet};
use isomit_graph::json::{JsonError, Value};

/// Protocol identifier reported by `health`.
pub const PROTOCOL_VERSION: &str = "isomit-service/1";

/// Machine-readable failure category of an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a valid request.
    BadRequest,
    /// The bounded work queue was full; retry later.
    Overloaded,
    /// The request waited in the queue past its deadline.
    DeadlineExceeded,
    /// A diffusion-layer error; `detail` carries the encoded
    /// [`DiffusionError`].
    Diffusion,
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// The `rid` verb named a detector the server does not know;
    /// `detail` carries the list of known names under `"known"`.
    UnknownDetector,
    /// A `watch_delta` was rejected by the session's validator (e.g.
    /// infecting an already-infected node); the session state is
    /// unchanged and the connection stays usable.
    InvalidDelta,
    /// A by-fingerprint `rid` request named a snapshot the serving
    /// shard has no cached answer for; resend the full snapshot.
    UnknownSnapshot,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The snake_case wire label.
    pub fn as_label(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Diffusion => "diffusion",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::UnknownDetector => "unknown_detector",
            ErrorKind::InvalidDelta => "invalid_delta",
            ErrorKind::UnknownSnapshot => "unknown_snapshot",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the label produced by [`as_label`](ErrorKind::as_label).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on an unknown label.
    pub fn from_label(label: &str) -> Result<Self, JsonError> {
        match label {
            "bad_request" => Ok(ErrorKind::BadRequest),
            "overloaded" => Ok(ErrorKind::Overloaded),
            "deadline_exceeded" => Ok(ErrorKind::DeadlineExceeded),
            "diffusion" => Ok(ErrorKind::Diffusion),
            "shutting_down" => Ok(ErrorKind::ShuttingDown),
            "unknown_detector" => Ok(ErrorKind::UnknownDetector),
            "invalid_delta" => Ok(ErrorKind::InvalidDelta),
            "unknown_snapshot" => Ok(ErrorKind::UnknownSnapshot),
            "internal" => Ok(ErrorKind::Internal),
            other => Err(JsonError::new(format!("unknown error kind `{other}`"))),
        }
    }
}

/// A structured error as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable explanation.
    pub message: String,
    /// Structured payload for kinds that carry one (e.g. the encoded
    /// [`DiffusionError`] under [`ErrorKind::Diffusion`]).
    pub detail: Option<Value>,
}

impl WireError {
    /// Convenience constructor without detail payload.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            detail: None,
        }
    }

    /// Wraps a [`DiffusionError`], attaching its JSON encoding as
    /// detail so clients can decode it losslessly.
    pub fn from_diffusion(error: &DiffusionError) -> Self {
        WireError {
            kind: ErrorKind::Diffusion,
            message: error.to_string(),
            detail: Some(error.to_json_value()),
        }
    }

    /// The decoded [`DiffusionError`], when this is a
    /// [`ErrorKind::Diffusion`] error with an intact detail payload.
    pub fn diffusion_detail(&self) -> Option<DiffusionError> {
        let detail = self.detail.as_ref()?;
        DiffusionError::from_json_value(detail).ok()
    }

    fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("kind".into(), Value::String(self.kind.as_label().into())),
            ("message".into(), Value::String(self.message.clone())),
        ];
        if let Some(detail) = &self.detail {
            fields.push(("detail".into(), detail.clone()));
        }
        Value::Object(fields)
    }

    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(WireError {
            kind: ErrorKind::from_label(
                value
                    .require("kind")?
                    .as_str()
                    .ok_or_else(|| JsonError::new("error `kind` must be a string"))?,
            )?,
            message: value
                .require("message")?
                .as_str()
                .ok_or_else(|| JsonError::new("error `message` must be a string"))?
                .to_owned(),
            detail: value.get("detail").cloned(),
        })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_label(), self.message)
    }
}

/// The work a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe; answered inline, never queued.
    Health,
    /// Engine counter snapshot; answered inline, never queued.
    Stats,
    /// Begin graceful shutdown: drain queued work, then stop.
    Shutdown,
    /// Detect rumor initiators in a snapshot.
    Rid {
        /// The infected snapshot to explain (boxed: it dwarfs every
        /// other variant).
        snapshot: Box<InfectedNetwork>,
        /// Detector parameters; the server default applies when absent.
        config: Option<RidConfig>,
        /// Which detector to run; `None` means the default (`rid`),
        /// keeping the field wire-compatible with older clients.
        detector: Option<DetectorKind>,
    },
    /// Detect rumor initiators in a snapshot the server has already
    /// seen, addressed by its content fingerprint instead of resending
    /// the (much larger) snapshot. Served exclusively from the owning
    /// shard's result cache; a miss is an
    /// [`ErrorKind::UnknownSnapshot`] error and the client falls back
    /// to the full [`RequestBody::Rid`] form.
    RidByFingerprint {
        /// The [`crate::fingerprint::snapshot_fingerprint`] of the
        /// snapshot. Carried on the wire as a decimal *string*: the
        /// JSON codec stores numbers as `f64`, which cannot represent
        /// every `u64` fingerprint exactly.
        fingerprint: u64,
        /// Detector parameters; the server default applies when absent.
        /// Must match the config of the priming full-form request for
        /// the cached answer to be found.
        config: Option<RidConfig>,
        /// Which detector to run; `None` means the default (`rid`).
        detector: Option<DetectorKind>,
    },
    /// Monte-Carlo infection-probability estimation on the loaded
    /// network.
    Simulate {
        /// Rumor seed set.
        seeds: SeedSet,
        /// Number of simulation runs.
        runs: usize,
        /// Master RNG seed (results are deterministic in it).
        seed: u64,
    },
    /// Open an incremental watch session on this connection, starting
    /// from an empty infected network.
    WatchOpen {
        /// Detector parameters for every answer in the session; the
        /// server default applies when absent.
        config: Option<RidConfig>,
        /// Answer cadence: every N-th delta gets a full
        /// [`RidResult`](isomit_core::RidResult),
        /// the others a cheap ack. `None` means 1 (answer every delta).
        answer_every: Option<u64>,
    },
    /// Apply one delta to the connection's open watch session.
    WatchDelta {
        /// The typed mutation to apply.
        delta: RidDelta,
    },
    /// Close the connection's watch session, freeing its admission
    /// slot.
    WatchClose,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

/// Encodes a request as a single JSON line (no trailing newline).
pub fn encode_request(id: u64, body: &RequestBody) -> String {
    let mut fields = vec![("id".into(), Value::Number(id as f64))];
    let type_label = match body {
        RequestBody::Health => "health",
        RequestBody::Stats => "stats",
        RequestBody::Shutdown => "shutdown",
        RequestBody::Rid { .. } | RequestBody::RidByFingerprint { .. } => "rid",
        RequestBody::Simulate { .. } => "simulate",
        RequestBody::WatchOpen { .. } => "watch_open",
        RequestBody::WatchDelta { .. } => "watch_delta",
        RequestBody::WatchClose => "watch_close",
    };
    fields.push(("type".into(), Value::String(type_label.into())));
    match body {
        RequestBody::Rid {
            snapshot,
            config,
            detector,
        } => {
            fields.push(("snapshot".into(), snapshot.to_json_value()));
            if let Some(config) = config {
                fields.push(("config".into(), config.to_json_value()));
            }
            if let Some(detector) = detector {
                fields.push(("detector".into(), Value::String(detector.as_label().into())));
            }
        }
        RequestBody::RidByFingerprint {
            fingerprint,
            config,
            detector,
        } => {
            fields.push(("fingerprint".into(), Value::String(fingerprint.to_string())));
            if let Some(config) = config {
                fields.push(("config".into(), config.to_json_value()));
            }
            if let Some(detector) = detector {
                fields.push(("detector".into(), Value::String(detector.as_label().into())));
            }
        }
        RequestBody::Simulate { seeds, runs, seed } => {
            fields.push(("seeds".into(), seeds.to_json_value()));
            fields.push(("runs".into(), Value::Number(*runs as f64)));
            fields.push(("seed".into(), Value::Number(*seed as f64)));
        }
        RequestBody::WatchOpen {
            config,
            answer_every,
        } => {
            if let Some(config) = config {
                fields.push(("config".into(), config.to_json_value()));
            }
            if let Some(every) = answer_every {
                fields.push(("answer_every".into(), Value::Number(*every as f64)));
            }
        }
        RequestBody::WatchDelta { delta } => {
            fields.push(("delta".into(), delta.to_json_value()));
        }
        RequestBody::Health
        | RequestBody::Stats
        | RequestBody::Shutdown
        | RequestBody::WatchClose => {}
    }
    Value::Object(fields).to_json()
}

/// Parses a request line.
///
/// # Errors
///
/// On failure returns the request id if one could be recovered (so the
/// server can still address its error reply) plus a
/// [`ErrorKind::BadRequest`] wire error.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, WireError)> {
    let bad =
        |id: Option<u64>, message: String| (id, WireError::new(ErrorKind::BadRequest, message));
    let doc = Value::parse(line).map_err(|e| bad(None, format!("invalid JSON: {e}")))?;
    let id = doc.get("id").and_then(Value::as_u64);
    let Some(id) = id else {
        return Err(bad(None, "`id` must be a non-negative integer".to_owned()));
    };
    let type_label = doc
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| bad(Some(id), "`type` must be a string".to_owned()))?;
    let body =
        match type_label {
            "health" => RequestBody::Health,
            "stats" => RequestBody::Stats,
            "shutdown" => RequestBody::Shutdown,
            "rid" => {
                let config = match doc.get("config") {
                    None => None,
                    Some(v) => Some(
                        RidConfig::from_json_value(v)
                            .map_err(|e| bad(Some(id), format!("invalid config: {e}")))?,
                    ),
                };
                let detector = match doc.get("detector") {
                    None => None,
                    Some(v) => {
                        let label = v.as_str().ok_or_else(|| {
                            bad(Some(id), "`detector` must be a string".to_owned())
                        })?;
                        Some(DetectorKind::from_label(label).map_err(|_| {
                            (
                                Some(id),
                                WireError {
                                    kind: ErrorKind::UnknownDetector,
                                    message: format!(
                                        "unknown detector `{label}` (known: {})",
                                        DetectorKind::known_labels().join(", ")
                                    ),
                                    detail: Some(Value::Object(vec![(
                                        "known".into(),
                                        Value::Array(
                                            DetectorKind::known_labels()
                                                .into_iter()
                                                .map(|l| Value::String(l.into()))
                                                .collect(),
                                        ),
                                    )])),
                                },
                            )
                        })?)
                    }
                };
                if let Some(fp) = doc.get("fingerprint") {
                    let fingerprint =
                        fp.as_str()
                            .and_then(|s| s.parse::<u64>().ok())
                            .ok_or_else(|| {
                                bad(
                                    Some(id),
                                    "`fingerprint` must be a decimal u64 carried as a string"
                                        .to_owned(),
                                )
                            })?;
                    RequestBody::RidByFingerprint {
                        fingerprint,
                        config,
                        detector,
                    }
                } else {
                    let snapshot_value = doc
                        .require("snapshot")
                        .map_err(|e| bad(Some(id), e.to_string()))?;
                    let snapshot = InfectedNetwork::from_json_value(snapshot_value)
                        .map_err(|e| bad(Some(id), format!("invalid snapshot: {e}")))?;
                    RequestBody::Rid {
                        snapshot: Box::new(snapshot),
                        config,
                        detector,
                    }
                }
            }
            "simulate" => {
                let seeds_value = doc
                    .require("seeds")
                    .map_err(|e| bad(Some(id), e.to_string()))?;
                let seeds = SeedSet::from_json_value(seeds_value)
                    .map_err(|e| bad(Some(id), format!("invalid seeds: {e}")))?;
                let runs = doc.get("runs").and_then(Value::as_usize).ok_or_else(|| {
                    bad(Some(id), "`runs` must be a non-negative integer".to_owned())
                })?;
                let seed = doc.get("seed").and_then(Value::as_u64).ok_or_else(|| {
                    bad(Some(id), "`seed` must be a non-negative integer".to_owned())
                })?;
                RequestBody::Simulate { seeds, runs, seed }
            }
            "watch_open" => {
                let config = match doc.get("config") {
                    None => None,
                    Some(v) => Some(
                        RidConfig::from_json_value(v)
                            .map_err(|e| bad(Some(id), format!("invalid config: {e}")))?,
                    ),
                };
                let answer_every = match doc.get("answer_every") {
                    None => None,
                    Some(v) => {
                        let every = v.as_u64().ok_or_else(|| {
                            bad(
                                Some(id),
                                "`answer_every` must be a positive integer".to_owned(),
                            )
                        })?;
                        if every == 0 {
                            return Err(bad(
                                Some(id),
                                "`answer_every` must be a positive integer".to_owned(),
                            ));
                        }
                        Some(every)
                    }
                };
                RequestBody::WatchOpen {
                    config,
                    answer_every,
                }
            }
            "watch_delta" => {
                let delta_value = doc
                    .require("delta")
                    .map_err(|e| bad(Some(id), e.to_string()))?;
                let delta = RidDelta::from_json_value(delta_value)
                    .map_err(|e| bad(Some(id), format!("invalid delta: {e}")))?;
                RequestBody::WatchDelta { delta }
            }
            "watch_close" => RequestBody::WatchClose,
            other => {
                return Err(bad(Some(id), format!("unknown request type `{other}`")));
            }
        };
    Ok(Request { id, body })
}

/// Encodes a success response line (no trailing newline).
pub fn ok_line(id: u64, result: Value) -> String {
    Value::Object(vec![
        ("id".into(), Value::Number(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("result".into(), result),
    ])
    .to_json()
}

/// Encodes a success response line from an already-serialized `result`
/// payload (no trailing newline). Byte-identical to
/// [`ok_line`]`(id, result)` whenever `result_json` is
/// `result.to_json()` — the sharded server's cache-hit fast path uses
/// this to splice a stored payload string into the envelope without
/// re-parsing or re-serializing it.
pub fn ok_line_raw(id: u64, result_json: &str) -> String {
    let mut line = String::with_capacity(result_json.len() + 32);
    line.push_str("{\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"ok\":true,\"result\":");
    line.push_str(result_json);
    line.push('}');
    line
}

/// Encodes an error response line (no trailing newline). A request
/// whose id could not be parsed is answered with `"id": null`.
pub fn error_line(id: Option<u64>, error: &WireError) -> String {
    let id_value = match id {
        Some(id) => Value::Number(id as f64),
        None => Value::Null,
    };
    Value::Object(vec![
        ("id".into(), id_value),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), error.to_json_value()),
    ])
    .to_json()
}

/// A parsed response line: the echoed id (when present) and either the
/// `result` payload or the structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed request id; `None` when the server could not parse one.
    pub id: Option<u64>,
    /// `result` on success, [`WireError`] on failure.
    pub outcome: Result<Value, WireError>,
}

/// Parses a response line.
///
/// # Errors
///
/// Returns [`JsonError`] when the line is not a valid response
/// envelope.
pub fn parse_response(line: &str) -> Result<Response, JsonError> {
    let doc = Value::parse(line)?;
    let id = doc.require("id")?.as_u64();
    let ok = doc
        .require("ok")?
        .as_bool()
        .ok_or_else(|| JsonError::new("`ok` must be a boolean"))?;
    let outcome = if ok {
        Ok(doc.require("result")?.clone())
    } else {
        Err(WireError::from_json_value(doc.require("error")?)?)
    };
    Ok(Response { id, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};

    fn snapshot() -> InfectedNetwork {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.8)])
                .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive, NodeState::Negative])
    }

    #[test]
    fn requests_round_trip() {
        let bodies = [
            RequestBody::Health,
            RequestBody::Stats,
            RequestBody::Shutdown,
            RequestBody::Rid {
                snapshot: Box::new(snapshot()),
                config: None,
                detector: None,
            },
            RequestBody::Rid {
                snapshot: Box::new(snapshot()),
                config: Some(RidConfig::default()),
                detector: None,
            },
            RequestBody::Rid {
                snapshot: Box::new(snapshot()),
                config: None,
                detector: Some(DetectorKind::JordanCenter),
            },
            RequestBody::Simulate {
                seeds: SeedSet::single(NodeId(0), Sign::Positive),
                runs: 128,
                seed: 7,
            },
            RequestBody::WatchOpen {
                config: None,
                answer_every: None,
            },
            RequestBody::WatchOpen {
                config: Some(RidConfig::default()),
                answer_every: Some(16),
            },
            RequestBody::WatchDelta {
                delta: RidDelta::Infect {
                    node: NodeId(3),
                    state: NodeState::Positive,
                },
            },
            RequestBody::WatchDelta {
                delta: RidDelta::AddEdge {
                    src: NodeId(3),
                    dst: NodeId(4),
                    sign: Sign::Negative,
                    weight: 0.25,
                },
            },
            RequestBody::WatchDelta {
                delta: RidDelta::FlipState {
                    node: NodeId(3),
                    state: NodeState::Negative,
                },
            },
            RequestBody::WatchClose,
            RequestBody::RidByFingerprint {
                // Above 2^53: would be mangled as a JSON number, must
                // survive as a string.
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                config: None,
                detector: None,
            },
            RequestBody::RidByFingerprint {
                fingerprint: 42,
                config: Some(RidConfig::default()),
                detector: Some(DetectorKind::RidTree),
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let line = encode_request(i as u64, &body);
            let parsed = parse_request(&line).unwrap();
            assert_eq!(parsed.id, i as u64);
            assert_eq!(parsed.body, body, "line: {line}");
        }
    }

    #[test]
    fn bad_requests_keep_the_id_when_possible() {
        let (id, err) = parse_request("{\"id\": 9, \"type\": \"nope\"}").unwrap_err();
        assert_eq!(id, Some(9));
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let (id, _) = parse_request("not json at all").unwrap_err();
        assert_eq!(id, None);
        let (id, _) = parse_request("{\"type\": \"health\"}").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_line(3, Value::Object(vec![("x".into(), Value::Number(1.0))]));
        let parsed = parse_response(&ok).unwrap();
        assert_eq!(parsed.id, Some(3));
        assert!(parsed.outcome.is_ok());

        let err = WireError::new(ErrorKind::Overloaded, "queue full (capacity 64)");
        let line = error_line(Some(4), &err);
        let parsed = parse_response(&line).unwrap();
        assert_eq!(parsed.id, Some(4));
        assert_eq!(parsed.outcome.unwrap_err(), err);

        let anon = error_line(None, &WireError::new(ErrorKind::BadRequest, "no id"));
        assert_eq!(parse_response(&anon).unwrap().id, None);
    }

    #[test]
    fn diffusion_errors_survive_the_wire() {
        let source = DiffusionError::SeedOutOfBounds {
            node: NodeId(42),
            node_count: 10,
        };
        let wire = WireError::from_diffusion(&source);
        let line = error_line(Some(1), &wire);
        let parsed = parse_response(&line).unwrap();
        let err = parsed.outcome.unwrap_err();
        assert_eq!(err.kind, ErrorKind::Diffusion);
        assert_eq!(err.diffusion_detail().unwrap(), source);
    }

    #[test]
    fn every_detector_label_round_trips_in_rid_requests() {
        for kind in DetectorKind::ALL {
            let body = RequestBody::Rid {
                snapshot: Box::new(snapshot()),
                config: None,
                detector: Some(kind),
            };
            let line = encode_request(1, &body);
            assert_eq!(parse_request(&line).unwrap().body, body, "line: {line}");
        }
    }

    #[test]
    fn unknown_detector_is_a_structured_error_with_known_names() {
        let line = encode_request(
            5,
            &RequestBody::Rid {
                snapshot: Box::new(snapshot()),
                config: None,
                detector: None,
            },
        );
        let line = line.replacen("\"type\"", "\"detector\": \"bogus\", \"type\"", 1);
        let (id, err) = parse_request(&line).unwrap_err();
        assert_eq!(id, Some(5));
        assert_eq!(err.kind, ErrorKind::UnknownDetector);
        assert!(err.message.contains("bogus"), "{}", err.message);
        let known = err
            .detail
            .as_ref()
            .and_then(|d| d.get("known"))
            .and_then(|k| match k {
                Value::Array(items) => Some(items.len()),
                _ => None,
            });
        assert_eq!(known, Some(DetectorKind::ALL.len()));
        for label in DetectorKind::known_labels() {
            assert!(err.message.contains(label), "{}", err.message);
        }
    }

    #[test]
    fn watch_requests_reject_malformed_payloads() {
        let (id, err) = parse_request("{\"id\": 2, \"type\": \"watch_open\", \"answer_every\": 0}")
            .unwrap_err();
        assert_eq!(id, Some(2));
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("answer_every"), "{}", err.message);

        let (id, err) = parse_request("{\"id\": 3, \"type\": \"watch_delta\"}").unwrap_err();
        assert_eq!(id, Some(3));
        assert_eq!(err.kind, ErrorKind::BadRequest);

        let (id, err) =
            parse_request("{\"id\": 4, \"type\": \"watch_delta\", \"delta\": {\"op\": \"melt\"}}")
                .unwrap_err();
        assert_eq!(id, Some(4));
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("invalid delta"), "{}", err.message);
    }

    #[test]
    fn raw_ok_lines_match_the_value_encoder_byte_for_byte() {
        let payloads = [
            Value::Object(vec![
                ("status".into(), Value::String("ok".into())),
                ("nodes".into(), Value::Number(120.0)),
            ]),
            Value::Object(vec![(
                "nested".into(),
                Value::Array(vec![Value::Number(1.5), Value::Null, Value::Bool(true)]),
            )]),
        ];
        for (id, payload) in payloads.into_iter().enumerate() {
            let raw = ok_line_raw(id as u64, &payload.to_json());
            assert_eq!(raw, ok_line(id as u64, payload));
        }
    }

    #[test]
    fn malformed_fingerprints_are_bad_requests() {
        for field in [
            "\"fingerprint\": 42",          // number, not string
            "\"fingerprint\": \"not-hex\"", // non-decimal
            "\"fingerprint\": \"-3\"",      // negative
            "\"fingerprint\": \"\"",        // empty
        ] {
            let line = format!("{{\"id\": 6, \"type\": \"rid\", {field}}}");
            let (id, err) = parse_request(&line).unwrap_err();
            assert_eq!(id, Some(6), "line: {line}");
            assert_eq!(err.kind, ErrorKind::BadRequest, "line: {line}");
            assert!(err.message.contains("fingerprint"), "{}", err.message);
        }
    }

    #[test]
    fn error_kind_labels_round_trip() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Diffusion,
            ErrorKind::ShuttingDown,
            ErrorKind::UnknownDetector,
            ErrorKind::InvalidDelta,
            ErrorKind::UnknownSnapshot,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_label(kind.as_label()).unwrap(), kind);
        }
        assert!(ErrorKind::from_label("whatever").is_err());
    }
}
