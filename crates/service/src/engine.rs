//! The persistent RID engine: one loaded diffusion network, many
//! queries, cached per-snapshot artifacts.
//!
//! [`RidEngine`] is the process-lifetime object behind the daemon. It
//! holds the diffusion network (for Monte-Carlo `simulate` queries) and
//! a bounded LRU of [`ForestArtifacts`] keyed by
//! `(snapshot fingerprint, alpha bits)`, so repeated snapshots skip
//! straight to the per-tree DP. Caching is invisible in results:
//! extraction is a pure function of `(snapshot, alpha)`, so a cached
//! answer is bit-identical to a cold one (tested below).

use crate::cache::{CacheMetrics, LruCache};
use crate::fingerprint::snapshot_fingerprint;
use isomit_core::{ForestArtifacts, Rid, RidConfig, RidError, RidResult};
use isomit_detectors::{DetectorError, DetectorKind};
use isomit_diffusion::{
    par_estimate_infection_probabilities_wide, DiffusionError, InfectedNetwork, InfectionEstimate,
    Mfc, SeedSet,
};
use isomit_graph::json::{JsonError, Value};
use isomit_graph::SignedDigraph;
use isomit_telemetry::{names, Counter, Registry, RegistrySnapshot};
use std::sync::{Arc, Mutex};

/// Maps a detector failure back to the engine's [`RidError`] surface.
/// Unknown-detector errors cannot reach the engine: the protocol layer
/// validates labels before work is enqueued, and typed callers pass a
/// [`DetectorKind`] that always builds.
fn detector_error_to_rid(e: DetectorError) -> RidError {
    match e {
        DetectorError::Rid(e) => e,
        DetectorError::UnknownDetector { name } => {
            unreachable!("detector label `{name}` was validated at the protocol layer")
        }
    }
}

/// Point-in-time engine counters, reported by the `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Total `rid` queries answered (including failed ones).
    pub rid_requests: u64,
    /// Total `simulate` queries answered (including failed ones).
    pub simulate_requests: u64,
    /// Artifact-cache lookups that hit.
    pub cache_hits: u64,
    /// Artifact-cache lookups that missed.
    pub cache_misses: u64,
    /// Artifact-cache entries evicted to make room.
    pub cache_evictions: u64,
    /// Artifact-cache entries removed because a newer snapshot of the
    /// same watch session superseded them (not counted as evictions).
    pub cache_superseded: u64,
    /// Artifact-cache entries currently resident.
    pub cache_entries: u64,
}

impl EngineStats {
    /// Fraction of cache lookups that hit, or `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Encodes the stats as a JSON object (includes the derived
    /// `cache_hit_rate`).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            (
                "rid_requests".into(),
                Value::Number(self.rid_requests as f64),
            ),
            (
                "simulate_requests".into(),
                Value::Number(self.simulate_requests as f64),
            ),
            ("cache_hits".into(), Value::Number(self.cache_hits as f64)),
            (
                "cache_misses".into(),
                Value::Number(self.cache_misses as f64),
            ),
            (
                "cache_evictions".into(),
                Value::Number(self.cache_evictions as f64),
            ),
            (
                "cache_superseded".into(),
                Value::Number(self.cache_superseded as f64),
            ),
            (
                "cache_entries".into(),
                Value::Number(self.cache_entries as f64),
            ),
            ("cache_hit_rate".into(), Value::Number(self.hit_rate())),
        ])
    }

    /// Decodes stats from the encoding of
    /// [`to_json_value`](EngineStats::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let field = |key: &str| -> Result<u64, JsonError> {
            value
                .require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a non-negative integer")))
        };
        Ok(EngineStats {
            rid_requests: field("rid_requests")?,
            simulate_requests: field("simulate_requests")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            cache_evictions: field("cache_evictions")?,
            cache_superseded: field("cache_superseded")?,
            cache_entries: field("cache_entries")?,
        })
    }
}

/// Thread-safe, long-lived RID inference engine.
///
/// Construct once (loading the diffusion network), share behind an
/// [`Arc`], and call [`rid`](RidEngine::rid) /
/// [`simulate`](RidEngine::simulate) from any number of threads.
#[derive(Debug)]
pub struct RidEngine {
    graph: Arc<SignedDigraph>,
    model: Mfc,
    default_config: RidConfig,
    cache_capacity: usize,
    cache: Mutex<LruCache<(u64, u64), Arc<ForestArtifacts>>>,
    registry: Arc<Registry>,
    rid_requests: Counter,
    simulate_requests: Counter,
    cache_superseded: Counter,
}

impl RidEngine {
    /// Creates an engine over `graph` (edge weights are activation
    /// probabilities) with `default_config` as the detector used when a
    /// request carries no config, caching artifacts for up to
    /// `cache_capacity` distinct `(snapshot, alpha)` pairs. Metrics go
    /// into a fresh per-engine registry; use
    /// [`with_registry`](RidEngine::with_registry) to supply one.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] if `default_config` fails
    /// [`Rid::from_config`] validation.
    pub fn new(
        graph: SignedDigraph,
        default_config: RidConfig,
        cache_capacity: usize,
    ) -> Result<Self, RidError> {
        RidEngine::with_registry(
            graph,
            default_config,
            cache_capacity,
            Arc::new(Registry::new()),
        )
    }

    /// Like [`new`](RidEngine::new), but recording request and cache
    /// metrics into the given registry (under the `service.*` names).
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] if `default_config` fails
    /// [`Rid::from_config`] validation.
    pub fn with_registry(
        graph: SignedDigraph,
        default_config: RidConfig,
        cache_capacity: usize,
        registry: Arc<Registry>,
    ) -> Result<Self, RidError> {
        Rid::from_config(default_config)?;
        let model = default_config.model()?;
        let cache = LruCache::with_metrics(cache_capacity, CacheMetrics::registered(&registry));
        let rid_requests = registry.counter(names::SERVICE_RID_REQUESTS);
        let simulate_requests = registry.counter(names::SERVICE_SIMULATE_REQUESTS);
        let cache_superseded = registry.counter(names::SERVICE_CACHE_SUPERSEDED);
        Ok(RidEngine {
            graph: Arc::new(graph),
            model,
            default_config,
            cache_capacity,
            cache: Mutex::new(cache),
            registry,
            rid_requests,
            simulate_requests,
            cache_superseded,
        })
    }

    /// A sibling engine for one shard of the sharded server: shares the
    /// loaded network (an [`Arc`] clone, not a copy) but has its own
    /// artifact cache and records into its own `registry` — shards
    /// never contend on each other's cache lock, and per-shard counters
    /// stay attributable.
    pub fn shard_clone(&self, registry: Arc<Registry>) -> RidEngine {
        let cache =
            LruCache::with_metrics(self.cache_capacity, CacheMetrics::registered(&registry));
        let rid_requests = registry.counter(names::SERVICE_RID_REQUESTS);
        let simulate_requests = registry.counter(names::SERVICE_SIMULATE_REQUESTS);
        let cache_superseded = registry.counter(names::SERVICE_CACHE_SUPERSEDED);
        RidEngine {
            graph: Arc::clone(&self.graph),
            model: self.model,
            default_config: self.default_config,
            cache_capacity: self.cache_capacity,
            cache: Mutex::new(cache),
            registry,
            rid_requests,
            simulate_requests,
            cache_superseded,
        }
    }

    /// The loaded diffusion network.
    pub fn graph(&self) -> &SignedDigraph {
        &self.graph
    }

    /// The registry this engine's metrics record into. The server hands
    /// it to the queue and request timers so one snapshot covers the
    /// whole serving path.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine registry's snapshot merged with the process-global
    /// registry (RID stage and Monte-Carlo timings) — the payload behind
    /// the `stats` verb's `telemetry` field.
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        isomit_telemetry::global()
            .snapshot()
            .merge(&self.registry.snapshot())
    }

    /// The detector config used when a request carries none.
    pub fn default_config(&self) -> RidConfig {
        self.default_config
    }

    fn cache_lock(&self) -> std::sync::MutexGuard<'_, LruCache<(u64, u64), Arc<ForestArtifacts>>> {
        // Cache operations cannot panic mid-update; recover from poison.
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Answers a `rid` query: detects initiators in `snapshot` under
    /// `config` (or the engine default), reusing cached forest
    /// artifacts when an identical snapshot was seen under the same
    /// `alpha`.
    ///
    /// Two threads racing on the same cold snapshot may both extract;
    /// extraction is pure, so whichever insert lands last caches the
    /// same value and the answers are identical.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] for an invalid `config`.
    pub fn rid(
        &self,
        snapshot: &InfectedNetwork,
        config: Option<RidConfig>,
    ) -> Result<RidResult, RidError> {
        self.rid_requests.inc();
        let config = config.unwrap_or(self.default_config);
        let rid = Rid::from_config(config)?;
        let key = (snapshot_fingerprint(snapshot), config.alpha.to_bits());
        let cached = self.cache_lock().get(&key);
        let artifacts = match cached {
            Some(artifacts) => artifacts,
            None => {
                // Extract outside the lock so a slow extraction never
                // stalls cache hits on other snapshots.
                let artifacts = Arc::new(rid.extract_stage(snapshot));
                self.cache_lock().insert(key, Arc::clone(&artifacts));
                artifacts
            }
        };
        let detection = rid.query_stage(snapshot, &artifacts)?;
        Ok(RidResult { config, detection })
    }

    /// Answers a `rid` query through the
    /// [`SourceDetector`](isomit_detectors::SourceDetector) seam:
    /// dispatches on `detector`, defaulting to the full RID framework.
    ///
    /// `DetectorKind::Rid` takes the exact cached-artifact path of
    /// [`rid`](RidEngine::rid) — bit-identical results, same cache
    /// hits. Other detectors run directly; they have no reusable
    /// extraction stage worth caching.
    ///
    /// # Errors
    ///
    /// Returns [`RidError::InvalidParameter`] for an invalid `config`.
    pub fn rid_with_detector(
        &self,
        snapshot: &InfectedNetwork,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
    ) -> Result<RidResult, RidError> {
        let kind = detector.unwrap_or(DetectorKind::Rid);
        if kind == DetectorKind::Rid {
            return self.rid(snapshot, config);
        }
        self.rid_requests.inc();
        let config = config.unwrap_or(self.default_config);
        let built = isomit_detectors::build(kind, &config).map_err(detector_error_to_rid)?;
        let found = built
            .detect_sources(snapshot)
            .map_err(detector_error_to_rid)?;
        Ok(RidResult {
            config,
            detection: found.detection,
        })
    }

    /// Answers a `simulate` query: seeded parallel Monte-Carlo
    /// estimation of per-node infection probabilities on the loaded
    /// network under the engine's MFC model, using the 64-lane wide
    /// bitplane engine. Deterministic in `(seeds, runs, master_seed)`
    /// for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError`] for out-of-bounds or duplicate seeds
    /// or `runs == 0`.
    pub fn simulate(
        &self,
        seeds: &SeedSet,
        runs: usize,
        master_seed: u64,
    ) -> Result<InfectionEstimate, DiffusionError> {
        self.simulate_requests.inc();
        seeds.validate_against(&self.graph)?;
        par_estimate_infection_probabilities_wide(
            &self.model,
            &self.graph,
            seeds,
            runs,
            master_seed,
        )
    }

    /// Adopts forest artifacts computed outside the engine — a watch
    /// session's full-recompute fallback — into the artifact cache, so
    /// a later `rid` query on the same snapshot is a warm hit.
    ///
    /// `previous` is the key returned by the session's last adoption:
    /// the superseded entry is removed in the same lock acquisition
    /// (counted under `cache_superseded`, not as an eviction), so a
    /// long watch session keeps at most one resident cache entry
    /// instead of crowding out unrelated snapshots. Returns the key the
    /// caller should pass back on its next adoption.
    pub fn adopt_artifacts(
        &self,
        snapshot: &InfectedNetwork,
        config: &RidConfig,
        artifacts: ForestArtifacts,
        previous: Option<(u64, u64)>,
    ) -> (u64, u64) {
        let key = (snapshot_fingerprint(snapshot), config.alpha.to_bits());
        let mut cache = self.cache_lock();
        if let Some(prev) = previous {
            if prev != key && cache.remove(&prev).is_some() {
                self.cache_superseded.inc();
            }
        }
        cache.insert(key, Arc::new(artifacts));
        key
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> EngineStats {
        let cache = self.cache_lock();
        EngineStats {
            rid_requests: self.rid_requests.get(),
            simulate_requests: self.simulate_requests.get(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_superseded: self.cache_superseded.get(),
            cache_entries: cache.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, NodeState, Sign};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(cache: usize) -> RidEngine {
        let mut rng = StdRng::seed_from_u64(5);
        let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
        let graph = isomit_datasets::paper_weights(&social, &mut rng);
        RidEngine::new(graph, RidConfig::default(), cache).unwrap()
    }

    fn scenario_snapshot(seed: u64) -> InfectedNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
        let scenario = isomit_datasets::build_scenario(
            &social,
            &isomit_datasets::ScenarioConfig::small(),
            &mut rng,
        );
        scenario.snapshot
    }

    #[test]
    fn detector_dispatch_default_and_rid_take_the_cached_path() {
        let engine = engine(8);
        let snapshot = scenario_snapshot(1);
        let legacy = engine.rid(&snapshot, None).unwrap();
        let defaulted = engine.rid_with_detector(&snapshot, None, None).unwrap();
        let explicit = engine
            .rid_with_detector(&snapshot, None, Some(DetectorKind::Rid))
            .unwrap();
        assert_eq!(legacy, defaulted);
        assert_eq!(legacy, explicit);
        // All three went through the artifact cache.
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn detector_dispatch_runs_every_kind() {
        let engine = engine(8);
        let snapshot = scenario_snapshot(2);
        for kind in DetectorKind::ALL {
            let result = engine
                .rid_with_detector(&snapshot, None, Some(kind))
                .unwrap();
            assert_eq!(result.config, engine.default_config());
            assert!(result.detection.component_count >= 1, "{kind:?}");
        }
        // Centrality detectors bypass the artifact cache.
        assert_eq!(engine.stats().rid_requests, 5);
        assert_eq!(engine.stats().cache_misses, 1);
    }

    #[test]
    fn cached_answer_is_bit_identical_to_cold() {
        let engine = engine(8);
        let snapshot = scenario_snapshot(1);
        let cold = engine.rid(&snapshot, None).unwrap();
        let warm = engine.rid(&snapshot, None).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            cold.detection.objective.to_bits(),
            warm.detection.objective.to_bits()
        );
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.rid_requests, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        // And identical to a fresh engine that never cached anything.
        let cold_engine = engine_no_cache();
        let reference = cold_engine.rid(&snapshot, None).unwrap();
        assert_eq!(reference, warm);
    }

    fn engine_no_cache() -> RidEngine {
        let mut rng = StdRng::seed_from_u64(5);
        let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
        let graph = isomit_datasets::paper_weights(&social, &mut rng);
        RidEngine::new(graph, RidConfig::default(), 0).unwrap()
    }

    #[test]
    fn beta_override_reuses_cached_artifacts() {
        let engine = engine(8);
        let snapshot = scenario_snapshot(2);
        engine.rid(&snapshot, None).unwrap();
        let loose_config = RidConfig {
            beta: 0.0,
            ..RidConfig::default()
        };
        engine.rid(&snapshot, Some(loose_config)).unwrap();
        let stats = engine.stats();
        // Same snapshot + same alpha: the beta override hits the cache.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn alpha_override_is_a_distinct_cache_key() {
        let engine = engine(8);
        let snapshot = scenario_snapshot(3);
        engine.rid(&snapshot, None).unwrap();
        let config = RidConfig {
            alpha: 2.0,
            ..RidConfig::default()
        };
        engine.rid(&snapshot, Some(config)).unwrap();
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn eviction_keeps_answers_correct() {
        let engine = engine(1);
        let a = scenario_snapshot(4);
        let b = scenario_snapshot(5);
        let first_a = engine.rid(&a, None).unwrap();
        engine.rid(&b, None).unwrap(); // evicts a
        let again_a = engine.rid(&a, None).unwrap(); // re-extracts
        assert_eq!(first_a, again_a);
        let stats = engine.stats();
        assert!(stats.cache_evictions >= 1);
        assert_eq!(stats.cache_entries, 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let engine = engine(4);
        let snapshot = scenario_snapshot(6);
        let bad = RidConfig {
            beta: -1.0,
            ..RidConfig::default()
        };
        assert!(engine.rid(&snapshot, Some(bad)).is_err());
    }

    #[test]
    fn simulate_is_deterministic_and_validated() {
        let engine = engine(4);
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let a = engine.simulate(&seeds, 64, 9).unwrap();
        let b = engine.simulate(&seeds, 64, 9).unwrap();
        assert_eq!(a, b);
        let out_of_bounds = SeedSet::single(NodeId(1_000_000), Sign::Positive);
        assert!(engine.simulate(&out_of_bounds, 8, 9).is_err());
        assert_eq!(engine.stats().simulate_requests, 3);
    }

    #[test]
    fn watch_adoption_keeps_at_most_one_resident_session_entry() {
        let engine = engine(8);
        // Prewarm the cache with two unrelated snapshots.
        let a = scenario_snapshot(4);
        let b = scenario_snapshot(5);
        engine.rid(&a, None).unwrap();
        engine.rid(&b, None).unwrap();
        assert_eq!(engine.stats().cache_entries, 2);

        // A long watch session adopts one fallback after another; each
        // adoption supersedes the previous session entry in place.
        let config = engine.default_config();
        let mut previous = None;
        for seed in 10..18 {
            let snapshot = scenario_snapshot(seed);
            let rid = Rid::from_config(config).unwrap();
            let artifacts = rid.extract_stage(&snapshot);
            previous = Some(engine.adopt_artifacts(&snapshot, &config, artifacts, previous));
        }
        let stats = engine.stats();
        assert_eq!(stats.cache_entries, 3, "two prewarmed + one session entry");
        assert_eq!(stats.cache_superseded, 7);
        assert_eq!(stats.cache_evictions, 0, "supersession displaced nothing");

        // The prewarmed snapshots were never crowded out.
        let hits_before = engine.stats().cache_hits;
        engine.rid(&a, None).unwrap();
        engine.rid(&b, None).unwrap();
        assert_eq!(engine.stats().cache_hits, hits_before + 2);
    }

    #[test]
    fn adopted_fallback_makes_the_final_snapshot_a_warm_hit() {
        use isomit_core::{IncrementalRid, RidDelta};

        let engine = engine(8);
        let config = engine.default_config();
        let mut session = IncrementalRid::new(config).unwrap();
        for i in 0..6u32 {
            session
                .apply(&RidDelta::Infect {
                    node: NodeId(i),
                    state: NodeState::Positive,
                })
                .unwrap();
        }
        for i in 0..5u32 {
            session
                .apply(&RidDelta::AddEdge {
                    src: NodeId(i),
                    dst: NodeId(i + 1),
                    sign: Sign::Positive,
                    weight: 0.8,
                })
                .unwrap();
        }
        // An all-dirty session answers via the cold fallback, stashing
        // adoptable artifacts.
        let (answer, outcome) = session.answer_detailed();
        assert!(outcome.full_recompute);
        let (snapshot, artifacts) = session.take_fallback_artifacts().unwrap();
        engine.adopt_artifacts(&snapshot, &config, artifacts, None);

        let misses_before = engine.stats().cache_misses;
        let served = engine.rid(&session.snapshot(), None).unwrap();
        assert_eq!(served, answer);
        assert_eq!(
            engine.stats().cache_misses,
            misses_before,
            "adopted artifacts made the rid query a warm hit"
        );
    }

    #[test]
    fn shard_clones_share_the_network_but_not_the_cache() {
        let engine = engine(4);
        let shard = engine.shard_clone(Arc::new(Registry::new()));
        let snapshot = scenario_snapshot(9);
        let a = engine.rid(&snapshot, None).unwrap();
        let b = shard.rid(&snapshot, None).unwrap();
        assert_eq!(a, b, "shards answer bit-identically");
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(shard.stats().cache_misses, 1, "caches are independent");
        assert_eq!(engine.stats().rid_requests, 1);
        assert_eq!(shard.stats().rid_requests, 1, "counters are per-shard");
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        assert_eq!(
            engine.simulate(&seeds, 32, 11).unwrap(),
            shard.simulate(&seeds, 32, 11).unwrap(),
            "the shared network serves both shards"
        );
    }

    #[test]
    fn stats_round_trip_json() {
        let engine = engine(4);
        engine.rid(&scenario_snapshot(7), None).unwrap();
        let stats = engine.stats();
        let back = EngineStats::from_json_value(&stats.to_json_value()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn engine_registry_mirrors_stats() {
        let engine = engine(4);
        let snapshot = scenario_snapshot(8);
        engine.rid(&snapshot, None).unwrap();
        engine.rid(&snapshot, None).unwrap();
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter(names::SERVICE_RID_REQUESTS), Some(2));
        assert_eq!(snap.counter(names::SERVICE_CACHE_HITS), Some(1));
        assert_eq!(snap.counter(names::SERVICE_CACHE_MISSES), Some(1));
        // The merged snapshot adds the process-global stage timings.
        let merged = engine.telemetry_snapshot();
        assert!(merged
            .histogram(names::RID_EXTRACT_STAGE_NS)
            .is_some_and(|h| h.count() >= 1));
        assert!(merged
            .histogram(names::RID_QUERY_STAGE_NS)
            .is_some_and(|h| h.count() >= 2));
    }

    #[test]
    fn engine_answers_hand_built_snapshot() {
        // Snapshots are self-contained: the engine answers even for a
        // snapshot not derived from its loaded network.
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.9),
                Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.9),
            ],
        )
        .unwrap();
        let snapshot = InfectedNetwork::from_parts(
            g,
            vec![
                NodeState::Positive,
                NodeState::Positive,
                NodeState::Negative,
            ],
        );
        let result = engine(2).rid(&snapshot, None).unwrap();
        assert!(!result.detection.initiators.is_empty());
    }
}
