//! A bounded MPMC work queue — the server's backpressure point.
//!
//! `std::sync::mpsc::channel` is unbounded (and single-consumer), so a
//! traffic burst would queue requests without limit and every one of
//! them would eventually be answered late. This queue instead rejects
//! at admission: [`BoundedQueue::try_push`] fails fast when the queue
//! is full and the server turns that into a structured `overloaded`
//! error, keeping latency of accepted requests bounded.

use isomit_telemetry::{names, Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Telemetry handles for a [`BoundedQueue`]: instantaneous depth and a
/// count of admissions refused for being full.
#[derive(Debug, Clone)]
pub struct QueueMetrics {
    /// Items currently queued (updated on every push/pop).
    pub depth: Gauge,
    /// `try_push` calls refused with [`PushError::Full`].
    pub rejected_full: Counter,
}

impl QueueMetrics {
    /// Handles not visible in any registry.
    pub fn detached() -> QueueMetrics {
        QueueMetrics {
            depth: Gauge::new(),
            rejected_full: Counter::new(),
        }
    }

    /// Handles registered under the well-known `service.*` names.
    pub fn registered(registry: &Registry) -> QueueMetrics {
        QueueMetrics {
            depth: registry.gauge(names::SERVICE_QUEUE_DEPTH),
            rejected_full: registry.counter(names::SERVICE_OVERLOADED),
        }
    }

    /// [`registered`](QueueMetrics::registered) handles additionally
    /// aliased under the per-shard names `shard.<i>.queue_depth` and
    /// `shard.<i>.shed`, so a merged stats snapshot shows both the
    /// fleet-wide `service.*` aggregates (shared names sum across shard
    /// registries) and each shard's own numbers.
    pub fn registered_for_shard(registry: &Registry, shard: usize) -> QueueMetrics {
        let metrics = QueueMetrics::registered(registry);
        registry.alias_gauge(&names::shard_queue_depth(shard), &metrics.depth);
        registry.alias_counter(&names::shard_shed(shard), &metrics.rejected_full);
        metrics
    }
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer multi-consumer FIFO queue.
///
/// Producers never block: a full queue refuses immediately. Consumers
/// block in [`pop`](BoundedQueue::pop) until an item arrives or the
/// queue is closed *and* drained — so closing lets in-flight work
/// finish while new work is turned away.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
    metrics: QueueMetrics,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1),
    /// with detached (registry-invisible) metrics.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue::with_metrics(capacity, QueueMetrics::detached())
    }

    /// Creates a queue whose depth gauge and rejection counter are the
    /// given handles — typically [`QueueMetrics::registered`].
    pub fn with_metrics(capacity: usize, metrics: QueueMetrics) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoned mutex means a panic elsewhere; the queue state is a
        // plain VecDeque + bool and is valid regardless, so keep going.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](BoundedQueue::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            self.metrics.rejected_full.inc();
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        self.metrics.depth.set(inner.items.len() as i64);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Enqueues past the capacity bound (still refused after
    /// [`close`](BoundedQueue::close)). Reserved for *internal*
    /// bookkeeping work that must never be shed — the sharded server's
    /// watch-session cleanup on disconnect — so a full queue can delay
    /// a slot release but never leak it.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](BoundedQueue::close),
    /// returning the item.
    pub fn force_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_back(item);
        self.metrics.depth.set(inner.items.len() as i64);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.metrics.depth.set(inner.items.len() as i64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: new pushes fail, consumers drain what remains
    /// and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn registered_metrics_track_depth_and_rejections() {
        let registry = Registry::new();
        let q = BoundedQueue::with_metrics(1, QueueMetrics::registered(&registry));
        q.try_push(1).unwrap();
        assert_eq!(
            registry.snapshot().gauge(names::SERVICE_QUEUE_DEPTH),
            Some(1)
        );
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert_eq!(
            registry.snapshot().counter(names::SERVICE_OVERLOADED),
            Some(1)
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(
            registry.snapshot().gauge(names::SERVICE_QUEUE_DEPTH),
            Some(0)
        );
    }

    #[test]
    fn force_push_bypasses_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        q.force_push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.force_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shard_metrics_alias_the_service_names() {
        let registry = Registry::new();
        let q = BoundedQueue::with_metrics(1, QueueMetrics::registered_for_shard(&registry, 3));
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge(names::SERVICE_QUEUE_DEPTH), Some(1));
        assert_eq!(snap.gauge("shard.3.queue_depth"), Some(1));
        assert_eq!(snap.counter(names::SERVICE_OVERLOADED), Some(1));
        assert_eq!(snap.counter("shard.3.shed"), Some(1));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..50 {
                        let mut v = p * 100 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
