//! The TCP daemon: accept loop, per-connection readers, a fixed worker
//! pool over the bounded queue, and graceful drain-on-shutdown.
//!
//! Threading model:
//!
//! * one **accept** thread hands each connection to a detached
//!   **reader** thread;
//! * readers parse request lines; `health` / `stats` / `shutdown` are
//!   answered inline (they must stay responsive under load), while
//!   `rid` / `simulate` jobs go through the bounded queue — a full
//!   queue is answered immediately with a structured `overloaded`
//!   error, never queued unboundedly;
//! * `workers` threads pop jobs, enforce the per-request deadline
//!   (time spent queued counts against it), compute on the shared
//!   [`RidEngine`] and write the reply to the job's connection.
//!
//! Shutdown (via the protocol `shutdown` request or
//! [`Server::trigger_shutdown`]) closes the queue: queued work drains,
//! new work is refused with `shutting_down`, the accept loop stops, and
//! [`Server::join`] returns once the workers finish. There is no signal
//! handler — `unsafe` (and thus libc) is forbidden workspace-wide — so
//! process supervisors should send the protocol `shutdown` request;
//! SIGTERM still works, just without the drain.

use crate::engine::RidEngine;
use crate::protocol::{
    error_line, ok_line, parse_request, ErrorKind, Request, RequestBody, WireError,
    PROTOCOL_VERSION,
};
use crate::queue::{BoundedQueue, PushError, QueueMetrics};
use isomit_core::{RidConfig, RidError};
use isomit_detectors::DetectorKind;
use isomit_diffusion::{InfectedNetwork, SeedSet};
use isomit_graph::json::Value;
use isomit_telemetry::{names, Counter, Histogram};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads computing `rid` / `simulate` jobs.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from arrival; jobs still queued
    /// past it are answered with `deadline_exceeded` instead of
    /// computed.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// A queued unit of work plus everything needed to answer it.
struct Job {
    id: u64,
    received: Instant,
    writer: Arc<Mutex<TcpStream>>,
    work: Work,
}

enum Work {
    Rid {
        snapshot: Box<InfectedNetwork>,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
    },
    Simulate {
        seeds: SeedSet,
        runs: usize,
        seed: u64,
    },
}

/// Shared state the reader threads need to serve and shut down.
struct Shared {
    engine: Arc<RidEngine>,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    timeout: Duration,
    /// End-to-end latency of data-plane jobs, receipt to reply written.
    request_ns: Histogram,
    /// Time a job spent in the bounded queue before a worker took it.
    queue_wait_ns: Histogram,
    /// Jobs dropped at dequeue because their deadline had passed.
    deadline_exceeded: Counter,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Server::shutdown) (or send the protocol `shutdown`
/// request and then [`join`](Server::join)).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns any [`std::io::Error`] from binding the listener.
    pub fn start(
        engine: Arc<RidEngine>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::clone(engine.registry());
        let shared = Arc::new(Shared {
            queue: BoundedQueue::with_metrics(
                config.queue_capacity,
                QueueMetrics::registered(&registry),
            ),
            shutdown: AtomicBool::new(false),
            addr: local_addr,
            timeout: config.request_timeout,
            request_ns: registry.histogram(names::SERVICE_REQUEST_NS),
            queue_wait_ns: registry.histogram(names::SERVICE_QUEUE_WAIT_NS),
            deadline_exceeded: registry.counter(names::SERVICE_DEADLINE_EXCEEDED),
            engine,
        });

        let worker_threads = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server {
            shared,
            accept_thread,
            worker_threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown: stop accepting, refuse new work, let
    /// queued and in-flight work finish. Idempotent; returns
    /// immediately — follow with [`join`](Server::join) to wait.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Waits for the accept loop and all workers to finish. Call after
    /// [`trigger_shutdown`](Server::trigger_shutdown) or once a client
    /// has sent the protocol `shutdown` request.
    pub fn join(self) {
        // A panicked worker already wrote its poison; nothing useful to
        // do beyond surfacing the panic payloads to the caller's logs.
        let _ = self.accept_thread.join();
        for worker in self.worker_threads {
            let _ = worker.join();
        }
    }

    /// [`trigger_shutdown`](Server::trigger_shutdown) then
    /// [`join`](Server::join).
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // The accept loop blocks in `accept`; poke it with a throwaway
    // connection so it observes the flag and exits.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Readers are detached: they exit when their client disconnects
        // (or at process end). Joining them would make shutdown wait on
        // idle keep-alive connections.
        std::thread::spawn(move || reader_loop(stream, &shared));
    }
}

/// Writes one response line; returns `false` when the client is gone.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> bool {
    let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
    let ok = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    ok.is_ok()
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut lines = BufReader::new(read_half).lines();
    while let Some(Ok(line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err((id, error)) => {
                if !write_line(&writer, &error_line(id, &error)) {
                    return;
                }
                continue;
            }
        };
        if !serve_request(request, &writer, shared) {
            return;
        }
    }
}

/// Handles one parsed request; returns `false` when the client is gone.
fn serve_request(request: Request, writer: &Arc<Mutex<TcpStream>>, shared: &Arc<Shared>) -> bool {
    let Request { id, body } = request;
    match body {
        // Control-plane requests bypass the queue so they stay
        // responsive (and observable) even when the data plane is
        // saturated.
        RequestBody::Health => {
            let result = Value::Object(vec![
                ("status".into(), Value::String("ok".into())),
                ("version".into(), Value::String(PROTOCOL_VERSION.into())),
                (
                    "nodes".into(),
                    Value::Number(shared.engine.graph().node_count() as f64),
                ),
                (
                    "edges".into(),
                    Value::Number(shared.engine.graph().edge_count() as f64),
                ),
            ]);
            write_line(writer, &ok_line(id, result))
        }
        RequestBody::Stats => {
            let mut stats = shared.engine.stats().to_json_value();
            if let Value::Object(fields) = &mut stats {
                fields.push((
                    "queue_depth".into(),
                    Value::Number(shared.queue.len() as f64),
                ));
                fields.push((
                    "queue_capacity".into(),
                    Value::Number(shared.queue.capacity() as f64),
                ));
                // Full registry view: engine metrics merged with the
                // process-global stage/Monte-Carlo timings.
                fields.push((
                    "telemetry".into(),
                    shared.engine.telemetry_snapshot().to_json_value(),
                ));
            }
            write_line(writer, &ok_line(id, stats))
        }
        RequestBody::Shutdown => {
            let alive = write_line(
                writer,
                &ok_line(
                    id,
                    Value::Object(vec![("stopping".into(), Value::Bool(true))]),
                ),
            );
            trigger_shutdown(shared);
            alive
        }
        RequestBody::Rid {
            snapshot,
            config,
            detector,
        } => enqueue(
            Job {
                id,
                // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                received: Instant::now(),
                writer: Arc::clone(writer),
                work: Work::Rid {
                    snapshot,
                    config,
                    detector,
                },
            },
            writer,
            shared,
        ),
        RequestBody::Simulate { seeds, runs, seed } => enqueue(
            Job {
                id,
                // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                received: Instant::now(),
                writer: Arc::clone(writer),
                work: Work::Simulate { seeds, runs, seed },
            },
            writer,
            shared,
        ),
    }
}

/// Admits a job to the bounded queue or answers with backpressure.
fn enqueue(job: Job, writer: &Arc<Mutex<TcpStream>>, shared: &Arc<Shared>) -> bool {
    match shared.queue.try_push(job) {
        Ok(()) => true,
        Err(PushError::Full(job)) => {
            let error = WireError::new(
                ErrorKind::Overloaded,
                format!(
                    "work queue full ({} queued); retry later",
                    shared.queue.capacity()
                ),
            );
            write_line(writer, &error_line(Some(job.id), &error))
        }
        Err(PushError::Closed(job)) => {
            let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
            write_line(writer, &error_line(Some(job.id), &error))
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let Job {
            id,
            received,
            writer,
            work,
        } = job;
        let queue_wait = received.elapsed();
        shared.queue_wait_ns.record_duration(queue_wait);
        if queue_wait > shared.timeout {
            shared.deadline_exceeded.inc();
            let error = WireError::new(
                ErrorKind::DeadlineExceeded,
                format!(
                    "request spent more than {:?} queued; increase capacity or shed load",
                    shared.timeout
                ),
            );
            let _ = write_line(&writer, &error_line(Some(id), &error));
            shared.request_ns.record_duration(received.elapsed());
            continue;
        }
        let line = match work {
            Work::Rid {
                snapshot,
                config,
                detector,
            } => {
                match shared.engine.rid_with_detector(&snapshot, config, detector) {
                    Ok(result) => {
                        let mut payload = result.to_json_value();
                        // Echo the detector only when the request chose
                        // one, keeping legacy responses byte-identical.
                        if let (Some(kind), Value::Object(fields)) = (detector, &mut payload) {
                            fields.push(("detector".into(), Value::String(kind.as_label().into())));
                        }
                        ok_line(id, payload)
                    }
                    Err(error) => {
                        let kind = match &error {
                            RidError::InvalidParameter { .. } => ErrorKind::BadRequest,
                            // Engine cache keys include alpha, so a
                            // mismatch here is a server bug.
                            _ => ErrorKind::Internal,
                        };
                        error_line(Some(id), &WireError::new(kind, error.to_string()))
                    }
                }
            }
            Work::Simulate { seeds, runs, seed } => {
                match shared.engine.simulate(&seeds, runs, seed) {
                    Ok(estimate) => ok_line(id, estimate.to_json_value()),
                    Err(error) => error_line(Some(id), &WireError::from_diffusion(&error)),
                }
            }
        };
        let _ = write_line(&writer, &line);
        shared.request_ns.record_duration(received.elapsed());
    }
}
