//! The sharded, event-driven TCP daemon.
//!
//! Threading model (one thread per shard, a small fixed set of io
//! threads, no thread-per-connection):
//!
//! * **io threads** own the connections. Sockets are nonblocking; each
//!   io thread sweeps its connections for readable data, frames
//!   complete lines with the zero-copy [`crate::framing`] scanner, and
//!   routes. `health` / `stats` / `shutdown` are answered inline (they
//!   must stay responsive under load), by-fingerprint `rid` requests
//!   that hit a shard's serialized-result cache are answered inline
//!   without materializing any JSON, and everything else is parsed and
//!   enqueued on its owning shard. io thread 0 additionally polls the
//!   nonblocking listener, so there is no separate accept thread to
//!   poke at shutdown. When a full sweep makes no progress the thread
//!   backs off (50 µs doubling to 500 µs) instead of spinning — the
//!   workspace forbids `unsafe`, so there is no `poll(2)`/`epoll`
//!   registration; readiness is observed by attempting the reads.
//! * **shards** are independent serving units: each owns a
//!   [`RidEngine`] sibling (shared network, private artifact cache,
//!   private registry), a bounded admission queue, a serialized-result
//!   cache, and exactly one worker thread. Requests are routed by
//!   rendezvous hashing on the snapshot fingerprint, so one snapshot's
//!   traffic always lands on the same shard — its caches stay hot and
//!   shards never contend on a lock. A full shard queue is answered
//!   immediately with a structured `overloaded` error while the other
//!   shards keep serving.
//! * **watch sessions** are pinned to the shard chosen at `watch_open`;
//!   the per-shard queue is FIFO and the worker is single-threaded, so
//!   the delta stream applies in order and the `IncrementalRid` state
//!   never migrates. Session deadlines are enforced on the io thread
//!   (which owns the connection and its `opened` clock), so an expired
//!   session can be reopened on the same connection immediately.
//!
//! Shutdown (via the protocol `shutdown` request or
//! [`Server::trigger_shutdown`]) closes every shard queue: queued work
//! drains, new work is refused with `shutting_down`, and the io threads
//! exit once the last worker finishes. There is no signal handler —
//! `unsafe` (and thus libc) is forbidden workspace-wide — so process
//! supervisors should send the protocol `shutdown` request; SIGTERM
//! still works, just without the drain.

use crate::cache::{CacheMetrics, LruCache};
use crate::engine::{EngineStats, RidEngine};
use crate::fingerprint::{fingerprint_bytes, snapshot_fingerprint};
use crate::framing::{self, Frame};
use crate::protocol::{
    error_line, ok_line, ok_line_raw, parse_request, ErrorKind, Request, RequestBody, WireError,
    PROTOCOL_VERSION,
};
use crate::queue::{BoundedQueue, PushError, QueueMetrics};
use isomit_core::{IncrementalRid, RidConfig, RidDelta, RidError};
use isomit_detectors::DetectorKind;
use isomit_diffusion::{InfectedNetwork, SeedSet};
use isomit_graph::json::Value;
use isomit_telemetry::{names, Counter, Gauge, Histogram, Registry, Stopwatch};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Independent engine shards, each with its own artifact cache,
    /// result cache, admission queue and worker thread. Requests route
    /// to shards by rendezvous hashing on the snapshot fingerprint.
    pub shards: usize,
    /// Bounded admission-queue capacity **per shard**; beyond it that
    /// shard's requests get `overloaded` while other shards keep
    /// serving.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from arrival; jobs still queued
    /// past it are answered with `deadline_exceeded` instead of
    /// computed. Also bounds a watch session's lifetime, measured from
    /// `watch_open`.
    pub request_timeout: Duration,
    /// Concurrent watch sessions admitted across all connections;
    /// beyond it `watch_open` is answered with `overloaded`.
    pub max_watch_sessions: usize,
    /// io threads sweeping connections for readable data. One is right
    /// for small machines; add more only when io itself saturates a
    /// core.
    pub io_threads: usize,
    /// Serialized-result cache entries **per shard**, serving the
    /// by-fingerprint `rid` fast path.
    pub result_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(30),
            max_watch_sessions: 4,
            io_threads: 1,
            result_cache_capacity: 512,
        }
    }
}

/// Write-stall bound: how many 100 µs sleeps a blocked writer tolerates
/// before giving the connection up (~10 s of an unread socket).
const MAX_WRITE_STALLS: u32 = 100_000;

/// Lines one connection may have processed per io sweep, bounding how
/// long a pipelining client can monopolize its io thread.
const MAX_LINES_PER_SWEEP: usize = 128;

/// Backoff window of an idle io sweep.
const MIN_BACKOFF: Duration = Duration::from_micros(50);
const MAX_BACKOFF: Duration = Duration::from_micros(500);

/// One accepted connection. The owning io thread is the only reader;
/// writes come from io and worker threads under `write_lock`.
#[derive(Debug)]
struct Conn {
    id: u64,
    stream: TcpStream,
    write_lock: Mutex<()>,
}

/// Writes one response line (plus newline) to a nonblocking socket;
/// returns `false` when the client is gone or persistently stalled.
fn send(conn: &Conn, mut line: String) -> bool {
    line.push('\n');
    let _guard = conn.write_lock.lock().unwrap_or_else(|p| p.into_inner());
    let mut remaining = line.as_bytes();
    let mut stalls = 0u32;
    while !remaining.is_empty() {
        match (&conn.stream).write(remaining) {
            Ok(0) => return false,
            Ok(n) => {
                remaining = remaining.get(n..).unwrap_or_default();
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stalls += 1;
                if stalls > MAX_WRITE_STALLS {
                    return false;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// A queued unit of work plus everything needed to answer it.
struct Job {
    id: u64,
    received: Instant,
    conn: Arc<Conn>,
    work: Work,
}

enum Work {
    Rid {
        snapshot: Box<InfectedNetwork>,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
        /// Result-cache key under which to file the serialized answer,
        /// when the request line framed cleanly (canonical clients).
        result_key: Option<(u64, u64)>,
    },
    Simulate {
        seeds: SeedSet,
        runs: usize,
        seed: u64,
    },
    /// Install a pre-validated watch session for this job's connection.
    WatchOpen {
        session: Box<IncrementalRid>,
        answer_every: u64,
    },
    /// Apply one delta to this connection's pinned session.
    WatchDelta { delta: RidDelta },
    /// Close this connection's session and report its delta count.
    WatchClose,
    /// Drop this connection's session without replying (disconnect or
    /// io-side deadline expiry). Enqueued with `force_push`: cleanup is
    /// never shed.
    WatchCleanup,
}

/// One serving shard: a sibling engine (shared network, private
/// caches), its bounded admission queue, its serialized-result cache,
/// and the registry its metrics (plus per-shard aliases) record into.
struct Shard {
    engine: Arc<RidEngine>,
    registry: Arc<Registry>,
    queue: BoundedQueue<Job>,
    results: Mutex<LruCache<(u64, u64), Arc<str>>>,
    /// The shard's `service.rid_requests` handle, bumped by the io-side
    /// fast path so cached answers still count as served requests.
    rid_requests: Counter,
}

impl Shard {
    fn lock_results(&self) -> std::sync::MutexGuard<'_, LruCache<(u64, u64), Arc<str>>> {
        self.results.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// State shared by the io threads and shard workers.
struct Shared {
    engine: Arc<RidEngine>,
    shards: Vec<Arc<Shard>>,
    shutdown: AtomicBool,
    /// Shard workers still draining; io threads exit at shutdown once
    /// this reaches zero.
    workers_alive: AtomicUsize,
    addr: SocketAddr,
    timeout: Duration,
    conn_seq: AtomicU64,
    /// End-to-end latency of data-plane jobs, receipt to reply written.
    request_ns: Histogram,
    /// Time a job spent in its shard's queue before the worker took it.
    queue_wait_ns: Histogram,
    /// Jobs dropped at dequeue because their deadline had passed.
    deadline_exceeded: Counter,
    /// Watch sessions currently open across all connections.
    watch_active: AtomicUsize,
    /// Admission cap on concurrent watch sessions.
    max_watch: usize,
    /// Wall time to apply one watch delta (and answer it, when due).
    watch_delta_ns: Histogram,
    /// Components watch answers recomputed, summed across answers.
    watch_dirty_components: Counter,
    /// Watch answers that fell back to a full cold recompute.
    watch_fallbacks: Counter,
    /// `watch_open` requests rejected by the admission cap.
    watch_shed: Counter,
    /// Largest-minus-smallest per-shard request share, in percent,
    /// refreshed on every `stats` request.
    imbalance_pct: Gauge,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Server::shutdown) (or send the protocol `shutdown`
/// request and then [`join`](Server::join)).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    io_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// io threads and one worker per shard.
    ///
    /// `engine` becomes shard 0 and its registry the primary registry
    /// carrying the server-level histograms; shards 1..N are
    /// [`RidEngine::shard_clone`] siblings with their own registries.
    ///
    /// # Errors
    ///
    /// Returns any [`std::io::Error`] from binding the listener.
    pub fn start(
        engine: Arc<RidEngine>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shard_count = config.shards.max(1);
        let shards: Vec<Arc<Shard>> = (0..shard_count)
            .map(|i| {
                let shard_engine = if i == 0 {
                    Arc::clone(&engine)
                } else {
                    Arc::new(engine.shard_clone(Arc::new(Registry::new())))
                };
                let registry = Arc::clone(shard_engine.registry());
                // Per-shard aliases: the same atomics show up both under
                // the fleet-wide service.* names (summed across shards on
                // merge) and under shard.<i>.* for attribution.
                registry.alias_counter(
                    &names::shard_cache_hits(i),
                    &registry.counter(names::SERVICE_CACHE_HITS),
                );
                registry.alias_counter(
                    &names::shard_requests(i),
                    &registry.counter(names::SERVICE_RID_REQUESTS),
                );
                let queue = BoundedQueue::with_metrics(
                    config.queue_capacity,
                    QueueMetrics::registered_for_shard(&registry, i),
                );
                let results = Mutex::new(LruCache::with_metrics(
                    config.result_cache_capacity,
                    CacheMetrics::registered_for_results(&registry),
                ));
                let rid_requests = registry.counter(names::SERVICE_RID_REQUESTS);
                Arc::new(Shard {
                    engine: shard_engine,
                    registry,
                    queue,
                    results,
                    rid_requests,
                })
            })
            .collect();

        let primary = Arc::clone(engine.registry());
        let shared = Arc::new(Shared {
            shards,
            shutdown: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(shard_count),
            addr: local_addr,
            timeout: config.request_timeout,
            conn_seq: AtomicU64::new(0),
            request_ns: primary.histogram(names::SERVICE_REQUEST_NS),
            queue_wait_ns: primary.histogram(names::SERVICE_QUEUE_WAIT_NS),
            deadline_exceeded: primary.counter(names::SERVICE_DEADLINE_EXCEEDED),
            watch_active: AtomicUsize::new(0),
            max_watch: config.max_watch_sessions,
            watch_delta_ns: primary.histogram(names::WATCH_DELTA_NS),
            watch_dirty_components: primary.counter(names::WATCH_DIRTY_COMPONENTS),
            watch_fallbacks: primary.counter(names::WATCH_FULL_RECOMPUTE_FALLBACKS),
            watch_shed: primary.counter(names::WATCH_SESSIONS_SHED),
            imbalance_pct: primary.gauge(names::SERVICE_SHARD_IMBALANCE_PCT),
            engine,
        });

        let worker_threads = shared
            .shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shard, &shared))
            })
            .collect();

        let io_count = config.io_threads.max(1);
        let inboxes: Vec<Arc<Mutex<Vec<Arc<Conn>>>>> = (0..io_count)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let mut listener = Some(listener);
        let io_threads = inboxes
            .iter()
            .enumerate()
            .map(|(i, inbox)| {
                let shared = Arc::clone(&shared);
                let inbox = Arc::clone(inbox);
                let all = inboxes.clone();
                // io thread 0 owns the (nonblocking) listener; the rest
                // only sweep the connections handed to their inboxes.
                let listener = if i == 0 { listener.take() } else { None };
                std::thread::spawn(move || {
                    io_loop(&shared, listener.as_ref(), &inbox, &all);
                })
            })
            .collect();

        Ok(Server {
            shared,
            io_threads,
            worker_threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown: stop accepting, refuse new work, let
    /// queued and in-flight work finish. Idempotent; returns
    /// immediately — follow with [`join`](Server::join) to wait.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Waits for the io threads and all shard workers to finish. Call
    /// after [`trigger_shutdown`](Server::trigger_shutdown) or once a
    /// client has sent the protocol `shutdown` request.
    pub fn join(self) {
        // A panicked thread already wrote its poison; nothing useful to
        // do beyond surfacing the panic payloads to the caller's logs.
        for worker in self.worker_threads {
            let _ = worker.join();
        }
        for io in self.io_threads {
            let _ = io.join();
        }
    }

    /// [`trigger_shutdown`](Server::trigger_shutdown) then
    /// [`join`](Server::join).
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    for shard in &shared.shards {
        shard.queue.close();
    }
    // The io threads poll the flag each sweep; no wake-up poke needed.
}

/// The shard index (out of `shards`) that requests for snapshot
/// fingerprint `fp` route to. This is exactly the io threads' routing
/// function, exposed so tests and capacity tooling can predict
/// placement.
pub fn shard_for_fingerprint(fp: u64, shards: usize) -> usize {
    rendezvous(fp, shards.max(1))
}

/// Rendezvous (highest-random-weight) shard choice: every key ranks all
/// shards by a mixed hash and takes the best, so keys spread evenly and
/// one key always lands on the same shard.
fn rendezvous(key: u64, shards: usize) -> usize {
    let mut best = 0usize;
    let mut best_score = 0u64;
    for i in 0..shards {
        let mut bytes = [0u8; 16];
        let (key_half, index_half) = bytes.split_at_mut(8);
        key_half.copy_from_slice(&key.to_le_bytes());
        index_half.copy_from_slice(&(i as u64).to_le_bytes());
        let score = fingerprint_bytes(&bytes);
        if i == 0 || score > best_score {
            best = i;
            best_score = score;
        }
    }
    best
}

/// Result-cache key half covering the request's `config` and `detector`
/// spans (raw bytes, `0xFF`-separated — a byte no JSON span contains
/// outside strings, and a fixed frame either way). Canonical clients
/// serialize a given config identically on every request, so the full
/// form primes exactly the key the by-fingerprint form looks up.
fn span_config_key(config: Option<&str>, detector: Option<&str>) -> u64 {
    let mut bytes = Vec::with_capacity(80);
    if let Some(config) = config {
        bytes.extend_from_slice(config.as_bytes());
    }
    bytes.push(0xFF);
    if let Some(detector) = detector {
        bytes.extend_from_slice(detector.as_bytes());
    }
    fingerprint_bytes(&bytes)
}

/// The io thread's record of a connection's open watch session: which
/// shard owns the `IncrementalRid` state, and the deadline clock.
struct WatchPin {
    shard: usize,
    opened: Stopwatch,
}

/// Per-connection io-thread state.
struct ConnState {
    conn: Arc<Conn>,
    /// Bytes read but not yet framed into complete lines.
    buf: Vec<u8>,
    watch: Option<WatchPin>,
}

enum Pump {
    /// Nothing readable, nothing processed.
    Idle,
    /// Read bytes or served lines this sweep.
    Progress,
    /// Peer gone (EOF or hard error); release the connection.
    Closed,
}

fn io_loop(
    shared: &Arc<Shared>,
    listener: Option<&TcpListener>,
    inbox: &Mutex<Vec<Arc<Conn>>>,
    all_inboxes: &[Arc<Mutex<Vec<Arc<Conn>>>>],
) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut backoff = MIN_BACKOFF;
    let mut next_io = 0usize;
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining && shared.workers_alive.load(Ordering::SeqCst) == 0 {
            break;
        }
        let mut progress = false;
        if let Some(listener) = listener {
            if !draining {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            // Replies are single small lines; without
                            // nodelay, Nagle + the client's delayed ACK
                            // put a ~40ms floor under every round trip.
                            let _ = stream.set_nodelay(true);
                            let conn = Arc::new(Conn {
                                id: shared.conn_seq.fetch_add(1, Ordering::Relaxed),
                                stream,
                                write_lock: Mutex::new(()),
                            });
                            let slot = all_inboxes
                                .get(next_io % all_inboxes.len())
                                .expect("index is reduced modulo the inbox count");
                            slot.lock().unwrap_or_else(|p| p.into_inner()).push(conn);
                            next_io += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }
        }
        {
            let mut adopted = inbox.lock().unwrap_or_else(|p| p.into_inner());
            for conn in adopted.drain(..) {
                conns.push(ConnState {
                    conn,
                    buf: Vec::new(),
                    watch: None,
                });
                progress = true;
            }
        }
        let mut i = 0;
        while let Some(state) = conns.get_mut(i) {
            match pump_conn(state, shared) {
                Pump::Idle => i += 1,
                Pump::Progress => {
                    progress = true;
                    i += 1;
                }
                Pump::Closed => {
                    let state = conns.swap_remove(i);
                    release_watch(&state.conn, state.watch, shared);
                    progress = true;
                }
            }
        }
        if progress {
            backoff = MIN_BACKOFF;
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF);
        }
    }
}

/// Frees a disconnected (or expired) connection's watch slot by handing
/// session teardown to the owning shard (cleanup jobs are never shed).
/// If the shard's queue already closed at shutdown, the session stays in
/// the worker's map and the drain-end sweep returns its slot instead.
fn release_watch(conn: &Arc<Conn>, watch: Option<WatchPin>, shared: &Arc<Shared>) {
    let Some(pin) = watch else { return };
    let job = Job {
        id: 0,
        // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
        received: Instant::now(),
        conn: Arc::clone(conn),
        work: Work::WatchCleanup,
    };
    if let Some(shard) = shared.shards.get(pin.shard) {
        let _ = shard.queue.force_push(job);
    }
}

/// One read + bounded line processing for a connection.
fn pump_conn(state: &mut ConnState, shared: &Arc<Shared>) -> Pump {
    let mut chunk = [0u8; 16 * 1024];
    let mut read_any = false;
    let mut eof = false;
    match (&state.conn.stream).read(&mut chunk) {
        Ok(0) => eof = true,
        Ok(n) => {
            state
                .buf
                .extend_from_slice(chunk.get(..n).unwrap_or_default());
            read_any = true;
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
        Err(_) => eof = true,
    }

    let buf = std::mem::take(&mut state.buf);
    let mut cursor = 0usize;
    let mut processed = 0usize;
    let mut alive = true;
    while processed < MAX_LINES_PER_SWEEP {
        let rest = buf.get(cursor..).unwrap_or_default();
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break;
        };
        let raw = rest.get(..nl).expect("position is within the slice");
        cursor += nl + 1;
        let Ok(text) = std::str::from_utf8(raw) else {
            // Matches the old line-reader: undecodable input drops the
            // connection rather than guessing at a reply.
            alive = false;
            break;
        };
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        processed += 1;
        if !handle_line(line, &state.conn, &mut state.watch, shared) {
            alive = false;
            break;
        }
    }
    state.buf = buf.get(cursor..).unwrap_or_default().to_vec();

    if !alive {
        return Pump::Closed;
    }
    if eof && processed == 0 {
        // The peer is gone and no further line can complete (anything
        // left in the buffer has no trailing newline). Buffered complete
        // lines were served on earlier iterations of this sweep or on
        // previous sweeps, matching the old line-reader's EOF behavior.
        return Pump::Closed;
    }
    if read_any || processed > 0 {
        Pump::Progress
    } else {
        Pump::Idle
    }
}

/// Serves one framed request line; returns `false` when the client is
/// gone.
fn handle_line(
    line: &str,
    conn: &Arc<Conn>,
    watch: &mut Option<WatchPin>,
    shared: &Arc<Shared>,
) -> bool {
    let frame = framing::scan(line);
    // By-fingerprint fast path: route on the scanned spans and answer a
    // result-cache hit inline, touching no JSON values at all. A miss
    // (or any framing anomaly) falls through to the full parser, which
    // owns validation and structured errors.
    if let Some(f) = &frame {
        if f.verb == "rid" {
            if let Some(fp) = f.fingerprint.and_then(|s| s.parse::<u64>().ok()) {
                let started = Stopwatch::start();
                let shard = shared
                    .shards
                    .get(rendezvous(fp, shared.shards.len()))
                    .expect("rendezvous picks a shard below the count");
                let key = (fp, span_config_key(f.config, f.detector));
                let hit = shard.lock_results().get(&key);
                if let Some(payload) = hit {
                    shard.rid_requests.inc();
                    let alive = send(conn, ok_line_raw(f.id, &payload));
                    shared.request_ns.record_duration(started.elapsed());
                    return alive;
                }
            }
        }
    }
    match parse_request(line) {
        Ok(request) => serve_request(request, frame.as_ref(), conn, watch, shared),
        Err((id, error)) => send(conn, error_line(id, &error)),
    }
}

/// Handles one parsed request; returns `false` when the client is gone.
fn serve_request(
    request: Request,
    frame: Option<&Frame<'_>>,
    conn: &Arc<Conn>,
    watch: &mut Option<WatchPin>,
    shared: &Arc<Shared>,
) -> bool {
    let Request { id, body } = request;
    match body {
        // Control-plane requests bypass the queues so they stay
        // responsive (and observable) even when the data plane is
        // saturated.
        RequestBody::Health => {
            let result = Value::Object(vec![
                ("status".into(), Value::String("ok".into())),
                ("version".into(), Value::String(PROTOCOL_VERSION.into())),
                (
                    "nodes".into(),
                    Value::Number(shared.engine.graph().node_count() as f64),
                ),
                (
                    "edges".into(),
                    Value::Number(shared.engine.graph().edge_count() as f64),
                ),
            ]);
            send(conn, ok_line(id, result))
        }
        RequestBody::Stats => send(conn, ok_line(id, stats_payload(shared))),
        RequestBody::Shutdown => {
            let alive = send(
                conn,
                ok_line(
                    id,
                    Value::Object(vec![("stopping".into(), Value::Bool(true))]),
                ),
            );
            trigger_shutdown(shared);
            alive
        }
        RequestBody::Rid {
            snapshot,
            config,
            detector,
        } => {
            // Route on the raw snapshot span when the line framed
            // cleanly (canonical encodings hash to the true snapshot
            // fingerprint); otherwise fall back to fingerprinting the
            // parsed snapshot. The result cache is only primed on the
            // span path — its keys must match what by-fingerprint
            // lookups compute from their own spans.
            let (fp, result_key) = match frame.and_then(|f| f.snapshot) {
                Some(span) => {
                    let fp = fingerprint_bytes(span.as_bytes());
                    let key = span_config_key(
                        frame.and_then(|f| f.config),
                        frame.and_then(|f| f.detector),
                    );
                    (fp, Some((fp, key)))
                }
                None => (snapshot_fingerprint(&snapshot), None),
            };
            let shard = rendezvous(fp, shared.shards.len());
            enqueue(
                shard,
                Job {
                    id,
                    // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                    received: Instant::now(),
                    conn: Arc::clone(conn),
                    work: Work::Rid {
                        snapshot,
                        config,
                        detector,
                        result_key,
                    },
                },
                conn,
                shared,
            )
        }
        RequestBody::RidByFingerprint { fingerprint, .. } => {
            // Reaching here means the fast path found no cached answer
            // (or the line needed the full parser). The request is
            // valid; the snapshot just is not resident on its shard.
            let error = WireError::new(
                ErrorKind::UnknownSnapshot,
                format!(
                    "no cached answer for snapshot fingerprint {fingerprint}; \
                     resend the full snapshot"
                ),
            );
            send(conn, error_line(Some(id), &error))
        }
        RequestBody::Simulate { seeds, runs, seed } => {
            let fp = frame
                .and_then(|f| f.seeds)
                .map(|span| fingerprint_bytes(span.as_bytes()))
                .unwrap_or(conn.id);
            let shard = rendezvous(fp, shared.shards.len());
            enqueue(
                shard,
                Job {
                    id,
                    // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                    received: Instant::now(),
                    conn: Arc::clone(conn),
                    work: Work::Simulate { seeds, runs, seed },
                },
                conn,
                shared,
            )
        }
        RequestBody::WatchOpen {
            config,
            answer_every,
        } => serve_watch_open(id, config, answer_every, conn, watch, shared),
        RequestBody::WatchDelta { delta } => {
            let Some(pin) = watch.as_ref() else {
                let error = WireError::new(
                    ErrorKind::BadRequest,
                    "no watch session open on this connection; send watch_open first",
                );
                return send(conn, error_line(Some(id), &error));
            };
            let expired = pin.opened.elapsed() > shared.timeout;
            let shard = pin.shard;
            if expired {
                // The io thread owns the deadline: clear the pin here so
                // this very connection can reopen immediately, and hand
                // the state teardown to the owning shard.
                release_watch(conn, watch.take(), shared);
                let error = WireError::new(
                    ErrorKind::DeadlineExceeded,
                    format!(
                        "watch session outlived its {:?} deadline; reopen to continue",
                        shared.timeout
                    ),
                );
                return send(conn, error_line(Some(id), &error));
            }
            forward_watch(
                shard,
                Job {
                    id,
                    // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                    received: Instant::now(),
                    conn: Arc::clone(conn),
                    work: Work::WatchDelta { delta },
                },
                conn,
                shared,
            )
        }
        RequestBody::WatchClose => {
            let Some(pin) = watch.take() else {
                let error = WireError::new(
                    ErrorKind::BadRequest,
                    "no watch session open on this connection",
                );
                return send(conn, error_line(Some(id), &error));
            };
            forward_watch(
                pin.shard,
                Job {
                    id,
                    // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                    received: Instant::now(),
                    conn: Arc::clone(conn),
                    work: Work::WatchClose,
                },
                conn,
                shared,
            )
        }
    }
}

/// The `stats` payload: shard-summed engine counters, queue occupancy,
/// and the merged telemetry registry (process-global + every shard's,
/// so `service.*` names aggregate and `shard.<i>.*` aliases stay
/// attributable).
fn stats_payload(shared: &Shared) -> Value {
    let mut total = EngineStats {
        rid_requests: 0,
        simulate_requests: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_superseded: 0,
        cache_entries: 0,
    };
    let mut per_shard_requests = Vec::with_capacity(shared.shards.len());
    let mut queue_depth = 0usize;
    let mut queue_capacity = 0usize;
    for shard in &shared.shards {
        let stats = shard.engine.stats();
        per_shard_requests.push(stats.rid_requests);
        total.rid_requests += stats.rid_requests;
        total.simulate_requests += stats.simulate_requests;
        total.cache_hits += stats.cache_hits;
        total.cache_misses += stats.cache_misses;
        total.cache_evictions += stats.cache_evictions;
        total.cache_superseded += stats.cache_superseded;
        total.cache_entries += stats.cache_entries;
        queue_depth += shard.queue.len();
        queue_capacity += shard.queue.capacity();
    }
    // Imbalance: spread of per-shard request shares, refreshed here so
    // the merged snapshot below carries a current value.
    let sum: u64 = per_shard_requests.iter().sum();
    let imbalance = if sum == 0 {
        0
    } else {
        let max = per_shard_requests.iter().max().copied().unwrap_or(0);
        let min = per_shard_requests.iter().min().copied().unwrap_or(0);
        (((max - min) as f64 / sum as f64) * 100.0).round() as i64
    };
    shared.imbalance_pct.set(imbalance);

    let mut telemetry = isomit_telemetry::global().snapshot();
    for shard in &shared.shards {
        telemetry = telemetry.merge(&shard.registry.snapshot());
    }

    let mut stats = total.to_json_value();
    if let Value::Object(fields) = &mut stats {
        fields.push(("queue_depth".into(), Value::Number(queue_depth as f64)));
        fields.push((
            "queue_capacity".into(),
            Value::Number(queue_capacity as f64),
        ));
        fields.push(("shards".into(), Value::Number(shared.shards.len() as f64)));
        fields.push(("telemetry".into(), telemetry.to_json_value()));
    }
    stats
}

/// Opens a watch session on this connection, subject to the global
/// admission cap; the session itself is installed by the owning shard
/// (chosen by rendezvous on the connection id) so its state lives where
/// its deltas will be applied.
fn serve_watch_open(
    id: u64,
    config: Option<RidConfig>,
    answer_every: Option<u64>,
    conn: &Arc<Conn>,
    watch: &mut Option<WatchPin>,
    shared: &Arc<Shared>,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
        return send(conn, error_line(Some(id), &error));
    }
    if watch.is_some() {
        let error = WireError::new(
            ErrorKind::BadRequest,
            "a watch session is already open on this connection",
        );
        return send(conn, error_line(Some(id), &error));
    }
    let admitted = shared
        .watch_active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
            (active < shared.max_watch).then_some(active + 1)
        })
        .is_ok();
    if !admitted {
        shared.watch_shed.inc();
        let error = WireError::new(
            ErrorKind::Overloaded,
            format!(
                "watch session cap reached ({} active); retry later",
                shared.max_watch
            ),
        );
        return send(conn, error_line(Some(id), &error));
    }
    let config = config.unwrap_or_else(|| shared.engine.default_config());
    let session = match IncrementalRid::new(config) {
        Ok(session) => session,
        Err(error) => {
            // The slot reserved above goes back unused.
            shared.watch_active.fetch_sub(1, Ordering::SeqCst);
            let error = WireError::new(ErrorKind::BadRequest, error.to_string());
            return send(conn, error_line(Some(id), &error));
        }
    };
    let answer_every = answer_every.unwrap_or(1).max(1);
    let shard = rendezvous(conn.id, shared.shards.len());
    let job = Job {
        id,
        // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
        received: Instant::now(),
        conn: Arc::clone(conn),
        work: Work::WatchOpen {
            session: Box::new(session),
            answer_every,
        },
    };
    let queue = &shard_at(shared, shard).queue;
    match queue.try_push(job) {
        Ok(()) => {
            *watch = Some(WatchPin {
                shard,
                opened: Stopwatch::start(),
            });
            true
        }
        Err(PushError::Full(job)) => {
            shared.watch_active.fetch_sub(1, Ordering::SeqCst);
            let error = WireError::new(
                ErrorKind::Overloaded,
                format!("work queue full ({} queued); retry later", queue.capacity()),
            );
            send(conn, error_line(Some(job.id), &error))
        }
        Err(PushError::Closed(job)) => {
            shared.watch_active.fetch_sub(1, Ordering::SeqCst);
            let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
            send(conn, error_line(Some(job.id), &error))
        }
    }
}

/// The shard at `index`; every caller derives the index from
/// [`rendezvous`] over the current shard count, so it is always in
/// range.
fn shard_at(shared: &Shared, index: usize) -> &Shard {
    shared
        .shards
        .get(index)
        .expect("rendezvous picks a shard below the count")
}

/// Forwards a watch verb to the session's pinned shard with
/// [`BoundedQueue::force_push`]: stateful session verbs are never shed
/// (shedding them would desynchronize the session bookkeeping), only
/// refused at shutdown.
fn forward_watch(shard: usize, job: Job, conn: &Arc<Conn>, shared: &Arc<Shared>) -> bool {
    match shard_at(shared, shard).queue.force_push(job) {
        Ok(()) => true,
        Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
            let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
            send(conn, error_line(Some(job.id), &error))
        }
    }
}

/// Admits a job to a shard's bounded queue or answers with structured
/// backpressure for that shard alone.
fn enqueue(shard: usize, job: Job, conn: &Arc<Conn>, shared: &Arc<Shared>) -> bool {
    let queue = &shard_at(shared, shard).queue;
    match queue.try_push(job) {
        Ok(()) => true,
        Err(PushError::Full(job)) => {
            let error = WireError::new(
                ErrorKind::Overloaded,
                format!("work queue full ({} queued); retry later", queue.capacity()),
            );
            send(conn, error_line(Some(job.id), &error))
        }
        Err(PushError::Closed(job)) => {
            let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
            send(conn, error_line(Some(job.id), &error))
        }
    }
}

/// One shard's open watch session, keyed by connection id in the
/// worker's local map.
struct WatchSession {
    session: IncrementalRid,
    /// Every N-th delta gets a full answer; the rest get acks.
    answer_every: u64,
    /// Cache key of the last fallback artifacts adopted into the
    /// shard's engine, superseded on the next adoption.
    adopted_key: Option<(u64, u64)>,
}

fn worker_loop(shard: &Arc<Shard>, shared: &Arc<Shared>) {
    let mut sessions: HashMap<u64, WatchSession> = HashMap::new();
    while let Some(job) = shard.queue.pop() {
        let Job {
            id,
            received,
            conn,
            work,
        } = job;
        match work {
            Work::Rid { .. } | Work::Simulate { .. } => {
                let queue_wait = received.elapsed();
                shared.queue_wait_ns.record_duration(queue_wait);
                if queue_wait > shared.timeout {
                    shared.deadline_exceeded.inc();
                    let error = WireError::new(
                        ErrorKind::DeadlineExceeded,
                        format!(
                            "request spent more than {:?} queued; increase capacity or shed load",
                            shared.timeout
                        ),
                    );
                    let _ = send(&conn, error_line(Some(id), &error));
                    shared.request_ns.record_duration(received.elapsed());
                    continue;
                }
                let line = match work {
                    Work::Rid {
                        snapshot,
                        config,
                        detector,
                        result_key,
                    } => match shard.engine.rid_with_detector(&snapshot, config, detector) {
                        Ok(result) => {
                            let mut payload = result.to_json_value();
                            // Echo the detector only when the request
                            // chose one, keeping legacy responses
                            // byte-identical.
                            if let (Some(kind), Value::Object(fields)) = (detector, &mut payload) {
                                fields.push((
                                    "detector".into(),
                                    Value::String(kind.as_label().into()),
                                ));
                            }
                            let serialized = payload.to_json();
                            if let Some(key) = result_key {
                                shard
                                    .lock_results()
                                    .insert(key, Arc::<str>::from(serialized.as_str()));
                            }
                            ok_line_raw(id, &serialized)
                        }
                        Err(error) => {
                            let kind = match &error {
                                RidError::InvalidParameter { .. } => ErrorKind::BadRequest,
                                // Engine cache keys include alpha, so a
                                // mismatch here is a server bug.
                                _ => ErrorKind::Internal,
                            };
                            error_line(Some(id), &WireError::new(kind, error.to_string()))
                        }
                    },
                    Work::Simulate { seeds, runs, seed } => {
                        match shard.engine.simulate(&seeds, runs, seed) {
                            Ok(estimate) => ok_line(id, estimate.to_json_value()),
                            Err(error) => error_line(Some(id), &WireError::from_diffusion(&error)),
                        }
                    }
                    _ => unreachable!("outer match narrowed to data-plane work"),
                };
                let _ = send(&conn, line);
                shared.request_ns.record_duration(received.elapsed());
            }
            Work::WatchOpen {
                session,
                answer_every,
            } => {
                sessions.insert(
                    conn.id,
                    WatchSession {
                        session: *session,
                        answer_every,
                        adopted_key: None,
                    },
                );
                let result = Value::Object(vec![
                    ("opened".into(), Value::Bool(true)),
                    ("answer_every".into(), Value::Number(answer_every as f64)),
                ]);
                let _ = send(&conn, ok_line(id, result));
            }
            Work::WatchDelta { delta } => {
                serve_watch_delta(id, &delta, &conn, &mut sessions, shard, shared);
            }
            Work::WatchClose => {
                let line = match sessions.remove(&conn.id) {
                    Some(ws) => {
                        shared.watch_active.fetch_sub(1, Ordering::SeqCst);
                        ok_line(
                            id,
                            Value::Object(vec![
                                ("closed".into(), Value::Bool(true)),
                                (
                                    "deltas".into(),
                                    Value::Number(ws.session.deltas_applied() as f64),
                                ),
                            ]),
                        )
                    }
                    None => error_line(
                        Some(id),
                        &WireError::new(
                            ErrorKind::BadRequest,
                            "no watch session open on this connection",
                        ),
                    ),
                };
                let _ = send(&conn, line);
            }
            Work::WatchCleanup => {
                if sessions.remove(&conn.id).is_some() {
                    shared.watch_active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
    // Drain finished: any sessions still resident die with the shard;
    // return their admission slots for bookkeeping symmetry.
    if !sessions.is_empty() {
        shared
            .watch_active
            .fetch_sub(sessions.len(), Ordering::SeqCst);
    }
    shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
}

/// Applies one delta to this connection's pinned session and answers it
/// (full `RidResult` when due under the session's cadence, cheap ack
/// otherwise). Runs on the shard worker; the io thread has already
/// enforced the session deadline.
fn serve_watch_delta(
    id: u64,
    delta: &RidDelta,
    conn: &Arc<Conn>,
    sessions: &mut HashMap<u64, WatchSession>,
    shard: &Arc<Shard>,
    shared: &Arc<Shared>,
) {
    let Some(ws) = sessions.get_mut(&conn.id) else {
        let error = WireError::new(
            ErrorKind::BadRequest,
            "no watch session open on this connection; send watch_open first",
        );
        let _ = send(conn, error_line(Some(id), &error));
        return;
    };
    let started = Stopwatch::start();
    if let Err(error) = ws.session.apply(delta) {
        // Validation rejected the delta before any mutation: the
        // session state is intact and the connection stays usable.
        let error = WireError::new(ErrorKind::InvalidDelta, error.to_string());
        let _ = send(conn, error_line(Some(id), &error));
        return;
    }
    let deltas = ws.session.deltas_applied();
    let line = if deltas % ws.answer_every == 0 {
        let (result, outcome) = ws.session.answer_detailed();
        shared
            .watch_dirty_components
            .add(outcome.dirty_components as u64);
        if outcome.full_recompute {
            shared.watch_fallbacks.inc();
        }
        // A fallback recomputed the full forest from scratch; adopt it
        // into this shard's artifact cache (superseding the session's
        // previous entry) so a plain `rid` on the same snapshot is warm.
        if let Some((snapshot, artifacts)) = ws.session.take_fallback_artifacts() {
            ws.adopted_key = Some(shard.engine.adopt_artifacts(
                &snapshot,
                &ws.session.config(),
                artifacts,
                ws.adopted_key,
            ));
        }
        let mut payload = result.to_json_value();
        if let Value::Object(fields) = &mut payload {
            fields.push(("deltas".into(), Value::Number(deltas as f64)));
            fields.push((
                "dirty_components".into(),
                Value::Number(outcome.dirty_components as f64),
            ));
            fields.push(("full_recompute".into(), Value::Bool(outcome.full_recompute)));
        }
        ok_line(id, payload)
    } else {
        ok_line(
            id,
            Value::Object(vec![
                ("acked".into(), Value::Bool(true)),
                ("deltas".into(), Value::Number(deltas as f64)),
            ]),
        )
    };
    shared.watch_delta_ns.record_duration(started.elapsed());
    let _ = send(conn, line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_in_range() {
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            for shards in 1..=8 {
                let chosen = shard_for_fingerprint(key, shards);
                assert!(chosen < shards);
                assert_eq!(
                    chosen,
                    shard_for_fingerprint(key, shards),
                    "placement must be deterministic"
                );
            }
        }
        // Zero shards is clamped rather than a panic path.
        assert_eq!(shard_for_fingerprint(7, 0), 0);
    }

    #[test]
    fn rendezvous_spreads_keys_across_shards() {
        let shards = 4;
        let mut counts = vec![0u32; shards];
        for key in 0..4000u64 {
            counts[shard_for_fingerprint(key, shards)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            // Perfectly even would be 1000 per shard; a wide tolerance
            // still catches a broken mix (everything on one shard).
            assert!(
                (600..=1400).contains(&count),
                "shard {i} got {count} of 4000 keys"
            );
        }
    }

    #[test]
    fn rendezvous_moves_few_keys_when_a_shard_is_added() {
        // The property rendezvous hashing buys over `key % shards`:
        // growing the fleet relocates roughly 1/(n+1) of keys, not all
        // of them, so hot caches mostly survive a resize.
        let moved = (0..4000u64)
            .filter(|&key| shard_for_fingerprint(key, 4) != shard_for_fingerprint(key, 5))
            .count();
        assert!(
            (400..=1400).contains(&moved),
            "expected ~1/5 of 4000 keys to move, got {moved}"
        );
    }

    #[test]
    fn config_keys_separate_config_and_detector_spans() {
        // The 0xFF frame keeps (config, detector) span pairs injective:
        // content sliding between the two fields must change the key.
        let a = span_config_key(Some("{\"alpha\":3}"), None);
        let b = span_config_key(None, Some("{\"alpha\":3}"));
        let c = span_config_key(Some("{\"alpha\":3}"), Some("\"rid_tree\""));
        let d = span_config_key(None, None);
        let keys = [a, b, c, d];
        for (i, x) in keys.iter().enumerate() {
            for (j, y) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "keys {i} and {j} collide");
                }
            }
        }
        assert_eq!(a, span_config_key(Some("{\"alpha\":3}"), None));
    }
}
