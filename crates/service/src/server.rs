//! The TCP daemon: accept loop, per-connection readers, a fixed worker
//! pool over the bounded queue, and graceful drain-on-shutdown.
//!
//! Threading model:
//!
//! * one **accept** thread hands each connection to a detached
//!   **reader** thread;
//! * readers parse request lines; `health` / `stats` / `shutdown` are
//!   answered inline (they must stay responsive under load), while
//!   `rid` / `simulate` jobs go through the bounded queue — a full
//!   queue is answered immediately with a structured `overloaded`
//!   error, never queued unboundedly;
//! * `workers` threads pop jobs, enforce the per-request deadline
//!   (time spent queued counts against it), compute on the shared
//!   [`RidEngine`] and write the reply to the job's connection.
//!
//! Shutdown (via the protocol `shutdown` request or
//! [`Server::trigger_shutdown`]) closes the queue: queued work drains,
//! new work is refused with `shutting_down`, the accept loop stops, and
//! [`Server::join`] returns once the workers finish. There is no signal
//! handler — `unsafe` (and thus libc) is forbidden workspace-wide — so
//! process supervisors should send the protocol `shutdown` request;
//! SIGTERM still works, just without the drain.

use crate::engine::RidEngine;
use crate::protocol::{
    error_line, ok_line, parse_request, ErrorKind, Request, RequestBody, WireError,
    PROTOCOL_VERSION,
};
use crate::queue::{BoundedQueue, PushError, QueueMetrics};
use isomit_core::{IncrementalRid, RidConfig, RidDelta, RidError};
use isomit_detectors::DetectorKind;
use isomit_diffusion::{InfectedNetwork, SeedSet};
use isomit_graph::json::Value;
use isomit_telemetry::{names, Counter, Histogram, Stopwatch};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads computing `rid` / `simulate` jobs.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from arrival; jobs still queued
    /// past it are answered with `deadline_exceeded` instead of
    /// computed. Also bounds a watch session's lifetime, measured from
    /// `watch_open`.
    pub request_timeout: Duration,
    /// Concurrent watch sessions admitted across all connections;
    /// beyond it `watch_open` is answered with `overloaded`.
    pub max_watch_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(30),
            max_watch_sessions: 4,
        }
    }
}

/// A queued unit of work plus everything needed to answer it.
struct Job {
    id: u64,
    received: Instant,
    writer: Arc<Mutex<TcpStream>>,
    work: Work,
}

enum Work {
    Rid {
        snapshot: Box<InfectedNetwork>,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
    },
    Simulate {
        seeds: SeedSet,
        runs: usize,
        seed: u64,
    },
}

/// Shared state the reader threads need to serve and shut down.
struct Shared {
    engine: Arc<RidEngine>,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    timeout: Duration,
    /// End-to-end latency of data-plane jobs, receipt to reply written.
    request_ns: Histogram,
    /// Time a job spent in the bounded queue before a worker took it.
    queue_wait_ns: Histogram,
    /// Jobs dropped at dequeue because their deadline had passed.
    deadline_exceeded: Counter,
    /// Watch sessions currently open across all connections.
    watch_active: AtomicUsize,
    /// Admission cap on concurrent watch sessions.
    max_watch: usize,
    /// Wall time to apply one watch delta (and answer it, when due).
    watch_delta_ns: Histogram,
    /// Components watch answers recomputed, summed across answers.
    watch_dirty_components: Counter,
    /// Watch answers that fell back to a full cold recompute.
    watch_fallbacks: Counter,
    /// `watch_open` requests rejected by the admission cap.
    watch_shed: Counter,
}

/// Per-connection state of an open watch session. Lives on the reader
/// thread; deltas are applied inline (never queued) because the stream
/// is ordered and the incremental state is connection-local.
struct WatchSession {
    session: IncrementalRid,
    /// Session deadline anchor: `watch_open` arrival time.
    opened: Stopwatch,
    /// Every N-th delta gets a full answer; the rest get acks.
    answer_every: u64,
    /// Cache key of the last fallback artifacts adopted into the
    /// engine, superseded on the next adoption.
    adopted_key: Option<(u64, u64)>,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Server::shutdown) (or send the protocol `shutdown`
/// request and then [`join`](Server::join)).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns any [`std::io::Error`] from binding the listener.
    pub fn start(
        engine: Arc<RidEngine>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::clone(engine.registry());
        let shared = Arc::new(Shared {
            queue: BoundedQueue::with_metrics(
                config.queue_capacity,
                QueueMetrics::registered(&registry),
            ),
            shutdown: AtomicBool::new(false),
            addr: local_addr,
            timeout: config.request_timeout,
            request_ns: registry.histogram(names::SERVICE_REQUEST_NS),
            queue_wait_ns: registry.histogram(names::SERVICE_QUEUE_WAIT_NS),
            deadline_exceeded: registry.counter(names::SERVICE_DEADLINE_EXCEEDED),
            watch_active: AtomicUsize::new(0),
            max_watch: config.max_watch_sessions,
            watch_delta_ns: registry.histogram(names::WATCH_DELTA_NS),
            watch_dirty_components: registry.counter(names::WATCH_DIRTY_COMPONENTS),
            watch_fallbacks: registry.counter(names::WATCH_FULL_RECOMPUTE_FALLBACKS),
            watch_shed: registry.counter(names::WATCH_SESSIONS_SHED),
            engine,
        });

        let worker_threads = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server {
            shared,
            accept_thread,
            worker_threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown: stop accepting, refuse new work, let
    /// queued and in-flight work finish. Idempotent; returns
    /// immediately — follow with [`join`](Server::join) to wait.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Waits for the accept loop and all workers to finish. Call after
    /// [`trigger_shutdown`](Server::trigger_shutdown) or once a client
    /// has sent the protocol `shutdown` request.
    pub fn join(self) {
        // A panicked worker already wrote its poison; nothing useful to
        // do beyond surfacing the panic payloads to the caller's logs.
        let _ = self.accept_thread.join();
        for worker in self.worker_threads {
            let _ = worker.join();
        }
    }

    /// [`trigger_shutdown`](Server::trigger_shutdown) then
    /// [`join`](Server::join).
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // The accept loop blocks in `accept`; poke it with a throwaway
    // connection so it observes the flag and exits.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Readers are detached: they exit when their client disconnects
        // (or at process end). Joining them would make shutdown wait on
        // idle keep-alive connections.
        std::thread::spawn(move || reader_loop(stream, &shared));
    }
}

/// Writes one response line; returns `false` when the client is gone.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> bool {
    let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
    let ok = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    ok.is_ok()
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut lines = BufReader::new(read_half).lines();
    let mut watch: Option<WatchSession> = None;
    while let Some(Ok(line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let alive = match parse_request(&line) {
            Ok(request) => serve_request(request, &writer, shared, &mut watch),
            Err((id, error)) => write_line(&writer, &error_line(id, &error)),
        };
        if !alive {
            break;
        }
    }
    // A disconnect (or error) while a watch session is open frees its
    // admission slot; the session state dies with this thread.
    if watch.is_some() {
        shared.watch_active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Closes the connection's watch session (if any), freeing its
/// admission slot, and returns it.
fn close_watch(watch: &mut Option<WatchSession>, shared: &Shared) -> Option<WatchSession> {
    let closed = watch.take();
    if closed.is_some() {
        shared.watch_active.fetch_sub(1, Ordering::SeqCst);
    }
    closed
}

/// Handles one parsed request; returns `false` when the client is gone.
fn serve_request(
    request: Request,
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Arc<Shared>,
    watch: &mut Option<WatchSession>,
) -> bool {
    let Request { id, body } = request;
    match body {
        // Control-plane requests bypass the queue so they stay
        // responsive (and observable) even when the data plane is
        // saturated.
        RequestBody::Health => {
            let result = Value::Object(vec![
                ("status".into(), Value::String("ok".into())),
                ("version".into(), Value::String(PROTOCOL_VERSION.into())),
                (
                    "nodes".into(),
                    Value::Number(shared.engine.graph().node_count() as f64),
                ),
                (
                    "edges".into(),
                    Value::Number(shared.engine.graph().edge_count() as f64),
                ),
            ]);
            write_line(writer, &ok_line(id, result))
        }
        RequestBody::Stats => {
            let mut stats = shared.engine.stats().to_json_value();
            if let Value::Object(fields) = &mut stats {
                fields.push((
                    "queue_depth".into(),
                    Value::Number(shared.queue.len() as f64),
                ));
                fields.push((
                    "queue_capacity".into(),
                    Value::Number(shared.queue.capacity() as f64),
                ));
                // Full registry view: engine metrics merged with the
                // process-global stage/Monte-Carlo timings.
                fields.push((
                    "telemetry".into(),
                    shared.engine.telemetry_snapshot().to_json_value(),
                ));
            }
            write_line(writer, &ok_line(id, stats))
        }
        RequestBody::Shutdown => {
            let alive = write_line(
                writer,
                &ok_line(
                    id,
                    Value::Object(vec![("stopping".into(), Value::Bool(true))]),
                ),
            );
            trigger_shutdown(shared);
            alive
        }
        RequestBody::Rid {
            snapshot,
            config,
            detector,
        } => enqueue(
            Job {
                id,
                // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                received: Instant::now(),
                writer: Arc::clone(writer),
                work: Work::Rid {
                    snapshot,
                    config,
                    detector,
                },
            },
            writer,
            shared,
        ),
        RequestBody::Simulate { seeds, runs, seed } => enqueue(
            Job {
                id,
                // lint:allow(telemetry) arrival timestamp for deadline math; the derived latencies go through registry histograms
                received: Instant::now(),
                writer: Arc::clone(writer),
                work: Work::Simulate { seeds, runs, seed },
            },
            writer,
            shared,
        ),
        // Watch verbs run inline on the reader thread: the delta stream
        // is ordered and the incremental state is connection-local, so
        // queueing would only reorder or interleave it.
        RequestBody::WatchOpen {
            config,
            answer_every,
        } => serve_watch_open(id, config, answer_every, writer, shared, watch),
        RequestBody::WatchDelta { delta } => serve_watch_delta(id, &delta, writer, shared, watch),
        RequestBody::WatchClose => {
            let Some(closed) = close_watch(watch, shared) else {
                let error = WireError::new(
                    ErrorKind::BadRequest,
                    "no watch session open on this connection",
                );
                return write_line(writer, &error_line(Some(id), &error));
            };
            let result = Value::Object(vec![
                ("closed".into(), Value::Bool(true)),
                (
                    "deltas".into(),
                    Value::Number(closed.session.deltas_applied() as f64),
                ),
            ]);
            write_line(writer, &ok_line(id, result))
        }
    }
}

/// Opens a watch session on this connection, subject to the global
/// admission cap.
fn serve_watch_open(
    id: u64,
    config: Option<RidConfig>,
    answer_every: Option<u64>,
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Arc<Shared>,
    watch: &mut Option<WatchSession>,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
        return write_line(writer, &error_line(Some(id), &error));
    }
    if watch.is_some() {
        let error = WireError::new(
            ErrorKind::BadRequest,
            "a watch session is already open on this connection",
        );
        return write_line(writer, &error_line(Some(id), &error));
    }
    let admitted = shared
        .watch_active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
            (active < shared.max_watch).then_some(active + 1)
        })
        .is_ok();
    if !admitted {
        shared.watch_shed.inc();
        let error = WireError::new(
            ErrorKind::Overloaded,
            format!(
                "watch session cap reached ({} active); retry later",
                shared.max_watch
            ),
        );
        return write_line(writer, &error_line(Some(id), &error));
    }
    let config = config.unwrap_or_else(|| shared.engine.default_config());
    let session = match IncrementalRid::new(config) {
        Ok(session) => session,
        Err(error) => {
            // The slot reserved above goes back unused.
            shared.watch_active.fetch_sub(1, Ordering::SeqCst);
            let error = WireError::new(ErrorKind::BadRequest, error.to_string());
            return write_line(writer, &error_line(Some(id), &error));
        }
    };
    let answer_every = answer_every.unwrap_or(1).max(1);
    *watch = Some(WatchSession {
        session,
        opened: Stopwatch::start(),
        answer_every,
        adopted_key: None,
    });
    let result = Value::Object(vec![
        ("opened".into(), Value::Bool(true)),
        ("answer_every".into(), Value::Number(answer_every as f64)),
    ]);
    write_line(writer, &ok_line(id, result))
}

/// Applies one delta to the connection's watch session and answers it
/// (full `RidResult` when due under the session's cadence, cheap ack
/// otherwise).
fn serve_watch_delta(
    id: u64,
    delta: &RidDelta,
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Arc<Shared>,
    watch: &mut Option<WatchSession>,
) -> bool {
    let Some(ws) = watch.as_mut() else {
        let error = WireError::new(
            ErrorKind::BadRequest,
            "no watch session open on this connection; send watch_open first",
        );
        return write_line(writer, &error_line(Some(id), &error));
    };
    if ws.opened.elapsed() > shared.timeout {
        close_watch(watch, shared);
        let error = WireError::new(
            ErrorKind::DeadlineExceeded,
            format!(
                "watch session outlived its {:?} deadline; reopen to continue",
                shared.timeout
            ),
        );
        return write_line(writer, &error_line(Some(id), &error));
    }
    let started = Stopwatch::start();
    if let Err(error) = ws.session.apply(delta) {
        // Validation rejected the delta before any mutation: the
        // session state is intact and the connection stays usable.
        let error = WireError::new(ErrorKind::InvalidDelta, error.to_string());
        return write_line(writer, &error_line(Some(id), &error));
    }
    let deltas = ws.session.deltas_applied();
    let line = if deltas % ws.answer_every == 0 {
        let (result, outcome) = ws.session.answer_detailed();
        shared
            .watch_dirty_components
            .add(outcome.dirty_components as u64);
        if outcome.full_recompute {
            shared.watch_fallbacks.inc();
        }
        // A fallback recomputed the full forest from scratch; adopt it
        // into the engine's artifact cache (superseding this session's
        // previous entry) so a plain `rid` on the same snapshot is warm.
        if let Some((snapshot, artifacts)) = ws.session.take_fallback_artifacts() {
            ws.adopted_key = Some(shared.engine.adopt_artifacts(
                &snapshot,
                &ws.session.config(),
                artifacts,
                ws.adopted_key,
            ));
        }
        let mut payload = result.to_json_value();
        if let Value::Object(fields) = &mut payload {
            fields.push(("deltas".into(), Value::Number(deltas as f64)));
            fields.push((
                "dirty_components".into(),
                Value::Number(outcome.dirty_components as f64),
            ));
            fields.push(("full_recompute".into(), Value::Bool(outcome.full_recompute)));
        }
        ok_line(id, payload)
    } else {
        ok_line(
            id,
            Value::Object(vec![
                ("acked".into(), Value::Bool(true)),
                ("deltas".into(), Value::Number(deltas as f64)),
            ]),
        )
    };
    shared.watch_delta_ns.record_duration(started.elapsed());
    write_line(writer, &line)
}

/// Admits a job to the bounded queue or answers with backpressure.
fn enqueue(job: Job, writer: &Arc<Mutex<TcpStream>>, shared: &Arc<Shared>) -> bool {
    match shared.queue.try_push(job) {
        Ok(()) => true,
        Err(PushError::Full(job)) => {
            let error = WireError::new(
                ErrorKind::Overloaded,
                format!(
                    "work queue full ({} queued); retry later",
                    shared.queue.capacity()
                ),
            );
            write_line(writer, &error_line(Some(job.id), &error))
        }
        Err(PushError::Closed(job)) => {
            let error = WireError::new(ErrorKind::ShuttingDown, "server is shutting down");
            write_line(writer, &error_line(Some(job.id), &error))
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let Job {
            id,
            received,
            writer,
            work,
        } = job;
        let queue_wait = received.elapsed();
        shared.queue_wait_ns.record_duration(queue_wait);
        if queue_wait > shared.timeout {
            shared.deadline_exceeded.inc();
            let error = WireError::new(
                ErrorKind::DeadlineExceeded,
                format!(
                    "request spent more than {:?} queued; increase capacity or shed load",
                    shared.timeout
                ),
            );
            let _ = write_line(&writer, &error_line(Some(id), &error));
            shared.request_ns.record_duration(received.elapsed());
            continue;
        }
        let line = match work {
            Work::Rid {
                snapshot,
                config,
                detector,
            } => {
                match shared.engine.rid_with_detector(&snapshot, config, detector) {
                    Ok(result) => {
                        let mut payload = result.to_json_value();
                        // Echo the detector only when the request chose
                        // one, keeping legacy responses byte-identical.
                        if let (Some(kind), Value::Object(fields)) = (detector, &mut payload) {
                            fields.push(("detector".into(), Value::String(kind.as_label().into())));
                        }
                        ok_line(id, payload)
                    }
                    Err(error) => {
                        let kind = match &error {
                            RidError::InvalidParameter { .. } => ErrorKind::BadRequest,
                            // Engine cache keys include alpha, so a
                            // mismatch here is a server bug.
                            _ => ErrorKind::Internal,
                        };
                        error_line(Some(id), &WireError::new(kind, error.to_string()))
                    }
                }
            }
            Work::Simulate { seeds, runs, seed } => {
                match shared.engine.simulate(&seeds, runs, seed) {
                    Ok(estimate) => ok_line(id, estimate.to_json_value()),
                    Err(error) => error_line(Some(id), &WireError::from_diffusion(&error)),
                }
            }
        };
        let _ = write_line(&writer, &line);
        shared.request_ns.record_duration(received.elapsed());
    }
}
