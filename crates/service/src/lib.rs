//! # isomit-service
//!
//! The serving subsystem: a persistent RID inference engine and a
//! sharded TCP/JSON-lines daemon, turning the per-invocation pipeline
//! of `isomit-core` into an online, repeated-query service — the
//! setting rumor-source monitoring actually runs in (snapshots of one
//! network arriving over time).
//!
//! Layers:
//!
//! * [`RidEngine`] — thread-safe, process-lifetime engine: loads the
//!   diffusion network once, answers `rid` and `simulate` queries, and
//!   caches per-snapshot [`isomit_core::ForestArtifacts`] in a bounded
//!   LRU ([`LruCache`]) keyed by content [`fingerprint`]; cached
//!   answers are bit-identical to cold ones.
//!   [`RidEngine::shard_clone`] stamps out siblings that share the
//!   loaded network but keep private caches and registries — the unit
//!   the server shards over.
//! * [`Server`] — `std::net` daemon speaking the newline-delimited JSON
//!   [`protocol`]. Event-driven io over nonblocking sockets (no
//!   thread-per-connection), with requests routed by rendezvous hashing
//!   on the snapshot fingerprint to one of N independent shards, each
//!   owning an engine sibling, a [`BoundedQueue`] admission queue
//!   (per-shard `overloaded` backpressure), a serialized-result cache
//!   for the by-fingerprint fast path, and one worker thread. Watch
//!   sessions are pinned to their owning shard. Per-request deadlines
//!   and graceful drain-on-shutdown carry over from the single-queue
//!   design; the wire protocol is byte-compatible with it.
//! * [`framing`] — zero-copy request scanner the io threads route with:
//!   borrows the verb and key spans straight out of the request line so
//!   cache-hit fast paths never materialize a JSON value, and falls
//!   back to the full [`protocol`] parser on any anomaly.
//! * [`Client`] — blocking client library used by `isomit-cli`, the
//!   `service_load` generator, and the end-to-end tests; speaks both
//!   the full-snapshot and the by-fingerprint request forms.
//!
//! Everything is `std`-only on top of the existing workspace crates; no
//! new external dependencies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod fingerprint;
pub mod framing;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheMetrics, LruCache};
pub use client::{Client, ClientError, WatchReply};
pub use engine::{EngineStats, RidEngine};
pub use framing::Frame;
pub use isomit_detectors::DetectorKind;
pub use queue::{BoundedQueue, PushError, QueueMetrics};
pub use server::{Server, ServerConfig};
