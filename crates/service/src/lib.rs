//! # isomit-service
//!
//! The serving subsystem: a persistent RID inference engine and a
//! TCP/JSON-lines daemon, turning the per-invocation pipeline of
//! `isomit-core` into an online, repeated-query service — the setting
//! rumor-source monitoring actually runs in (snapshots of one network
//! arriving over time).
//!
//! Layers:
//!
//! * [`RidEngine`] — thread-safe, process-lifetime engine: loads the
//!   diffusion network once, answers `rid` and `simulate` queries, and
//!   caches per-snapshot [`isomit_core::ForestArtifacts`] in a bounded
//!   LRU ([`LruCache`]) keyed by content [`fingerprint`]; cached
//!   answers are bit-identical to cold ones.
//! * [`Server`] — `std::net` daemon speaking the newline-delimited JSON
//!   [`protocol`], with a fixed worker pool over a [`BoundedQueue`]
//!   (explicit `overloaded` backpressure), per-request deadlines, and
//!   graceful drain-on-shutdown.
//! * [`Client`] — blocking client library used by `isomit-cli`, the
//!   `service_load` generator, and the end-to-end tests.
//!
//! Everything is `std`-only on top of the existing workspace crates; no
//! new external dependencies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod fingerprint;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheMetrics, LruCache};
pub use client::{Client, ClientError, WatchReply};
pub use engine::{EngineStats, RidEngine};
pub use isomit_detectors::DetectorKind;
pub use queue::{BoundedQueue, PushError, QueueMetrics};
pub use server::{Server, ServerConfig};
