//! Zero-copy request framing for the sharded server's io threads.
//!
//! [`scan`] walks one request line and returns the byte spans of the
//! top-level fields the router needs — `id`, `type`, and the routing
//! keys (`fingerprint`, `snapshot`, `config`, `detector`, `seeds`) —
//! **without materializing a JSON value**. The io thread routes on
//! those spans (rendezvous-hashing the raw snapshot bytes, answering
//! by-fingerprint cache hits inline) and only falls back to the full
//! [`crate::protocol::parse_request`] parser when a request actually
//! needs its payload decoded, or when the line is in any way unusual.
//!
//! The scanner is deliberately strict: *any* anomaly — malformed JSON,
//! a non-integer id, an escaped `type` string, a duplicated tracked
//! key — yields `None`, and the caller takes the slow path, whose
//! structured errors are the protocol's source of truth. The scanner
//! can therefore never change what a client observes; it only decides
//! how cheaply a well-formed line is served.
//!
//! For canonical clients (ours) the snapshot span is exactly the bytes
//! of `InfectedNetwork::to_json_string`, so FNV-1a over the span equals
//! [`crate::fingerprint::snapshot_fingerprint`] — the router and the
//! result cache agree on snapshot identity without parsing anything.

/// Byte spans of the routed top-level fields of one request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The correlation id (digits-only; `12.0` falls back).
    pub id: u64,
    /// The raw `type` label, e.g. `"rid"`.
    pub verb: &'a str,
    /// Span of the `snapshot` value, when present.
    pub snapshot: Option<&'a str>,
    /// Span of the `fingerprint` value *without quotes*, when present
    /// and a simple string.
    pub fingerprint: Option<&'a str>,
    /// Span of the `config` value, when present.
    pub config: Option<&'a str>,
    /// Span of the `detector` value, when present.
    pub detector: Option<&'a str>,
    /// Span of the `seeds` value, when present.
    pub seeds: Option<&'a str>,
}

/// Scans `line` for the routed fields. Returns `None` on any anomaly;
/// the caller must then run the full parser for structured errors.
pub fn scan(line: &str) -> Option<Frame<'_>> {
    let bytes = line.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    pos += 1;

    let mut id: Option<u64> = None;
    let mut verb: Option<&str> = None;
    let mut snapshot: Option<&str> = None;
    let mut fingerprint: Option<&str> = None;
    let mut config: Option<&str> = None;
    let mut detector: Option<&str> = None;
    let mut seeds: Option<&str> = None;

    pos = skip_ws(bytes, pos);
    if bytes.get(pos) == Some(&b'}') {
        // Empty object: syntactically fine, but no id — slow path.
        return None;
    }
    loop {
        pos = skip_ws(bytes, pos);
        let (key_start, key_end) = scan_string(bytes, pos)?;
        let key = line.get(key_start..key_end)?;
        pos = skip_ws(bytes, key_end + 1);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos = skip_ws(bytes, pos + 1);
        let value_start = pos;
        pos = skip_value(bytes, pos)?;
        let span = line.get(value_start..pos)?.trim_end();
        match key {
            "id" => set_once(&mut id, parse_digits(span)?)?,
            "type" => set_once(&mut verb, unquote_simple(span)?)?,
            "snapshot" => set_once(&mut snapshot, span)?,
            "fingerprint" => set_once(&mut fingerprint, unquote_simple(span)?)?,
            "config" => set_once(&mut config, span)?,
            "detector" => set_once(&mut detector, span)?,
            "seeds" => set_once(&mut seeds, span)?,
            _ => {}
        }
        pos = skip_ws(bytes, pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return None,
        }
    }
    if line
        .get(pos..)
        .is_none_or(|rest| !rest.trim_end().is_empty())
    {
        return None;
    }
    Some(Frame {
        id: id?,
        verb: verb?,
        snapshot,
        fingerprint,
        config,
        detector,
        seeds,
    })
}

/// Stores `value` into an empty slot; a duplicated tracked key is an
/// anomaly (the full parser's duplicate-key policy must decide).
fn set_once<T>(slot: &mut Option<T>, value: T) -> Option<()> {
    if slot.is_some() {
        return None;
    }
    *slot = Some(value);
    Some(())
}

/// Digits-only u64 (rejects signs, exponents, leading `+`, and floats,
/// all of which the full parser may still accept).
fn parse_digits(span: &str) -> Option<u64> {
    if span.is_empty() || !span.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    span.parse().ok()
}

/// Strips the quotes off a simple string span — one with no escapes.
fn unquote_simple(span: &str) -> Option<&str> {
    let inner = span.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains(['"', '\\']) {
        return None;
    }
    Some(inner)
}

fn skip_ws(bytes: &[u8], mut pos: usize) -> usize {
    while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        pos += 1;
    }
    pos
}

/// With `bytes[pos] == b'"'`, returns the content range (exclusive of
/// quotes); the closing quote sits at the returned end index.
fn scan_string(bytes: &[u8], pos: usize) -> Option<(usize, usize)> {
    if bytes.get(pos) != Some(&b'"') {
        return None;
    }
    let start = pos + 1;
    let mut i = start;
    loop {
        match bytes.get(i)? {
            b'\\' => i += 2,
            b'"' => return Some((start, i)),
            _ => i += 1,
        }
    }
}

/// Skips one JSON value starting at `pos`, returning the index just
/// past it. Containers are depth-counted with string awareness;
/// scalars run to the next delimiter.
fn skip_value(bytes: &[u8], pos: usize) -> Option<usize> {
    match bytes.get(pos)? {
        b'"' => scan_string(bytes, pos).map(|(_, end)| end + 1),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut i = pos;
            loop {
                match bytes.get(i)? {
                    b'{' | b'[' => {
                        depth += 1;
                        i += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        i += 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    b'"' => i = scan_string(bytes, i)?.1 + 1,
                    _ => i += 1,
                }
            }
        }
        _ => {
            // Number / true / false / null: run to a structural delimiter.
            let mut i = pos;
            while let Some(b) = bytes.get(i) {
                if matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                i += 1;
            }
            if i == pos {
                return None;
            }
            Some(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, RequestBody};
    use isomit_diffusion::InfectedNetwork;
    use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};

    fn snapshot() -> InfectedNetwork {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.8)])
                .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive, NodeState::Negative])
    }

    #[test]
    fn canonical_rid_lines_yield_exact_snapshot_spans() {
        let snap = snapshot();
        let line = encode_request(
            7,
            &RequestBody::Rid {
                snapshot: Box::new(snap.clone()),
                config: None,
                detector: None,
            },
        );
        let frame = scan(&line).expect("canonical line scans");
        assert_eq!(frame.id, 7);
        assert_eq!(frame.verb, "rid");
        // The span is byte-identical to the canonical encoding, so
        // hashing it reproduces `snapshot_fingerprint`.
        assert_eq!(
            frame.snapshot,
            Some(snap.to_json_value().to_json().as_str())
        );
        assert_eq!(
            crate::fingerprint::fingerprint_bytes(frame.snapshot.unwrap().as_bytes()),
            crate::fingerprint::snapshot_fingerprint(&snap),
        );
    }

    #[test]
    fn fingerprint_and_detector_spans_are_unquoted() {
        let line = r#"{"id": 3, "type": "rid", "fingerprint": "16045690985374418957", "detector": "rid_tree", "config": {"alpha": 3}}"#;
        let frame = scan(line).expect("scans");
        assert_eq!(frame.id, 3);
        assert_eq!(frame.fingerprint, Some("16045690985374418957"));
        assert_eq!(frame.detector, Some(r#""rid_tree""#));
        assert_eq!(frame.config, Some(r#"{"alpha": 3}"#));
    }

    #[test]
    fn strings_with_escapes_and_nesting_are_skipped_correctly() {
        let line = r#"{"note": "a \"quoted\" } brace", "id": 1, "type": "health", "extra": [1, {"deep": [true, null]}, "x"]}"#;
        let frame = scan(line).expect("scans");
        assert_eq!(frame.id, 1);
        assert_eq!(frame.verb, "health");
    }

    #[test]
    fn anomalies_fall_back_to_the_full_parser() {
        for line in [
            "this is not json",
            "",
            "{}",
            r#"{"type": "health"}"#,                          // no id
            r#"{"id": 1.5, "type": "health"}"#,               // non-integer id
            r#"{"id": -1, "type": "health"}"#,                // negative id
            r#"{"id": 1, "type": "heal\th"}"#,                // escaped verb
            r#"{"id": 1, "type": "health""#,                  // truncated
            r#"{"id": 1, "id": 2, "type": "health"}"#,        // duplicate key
            r#"{"id": 1, "type": "health"} trailing"#,        // trailing junk
            r#"{"id": 1, "type": "rid", "fingerprint": 42}"#, // numeric fp
        ] {
            assert_eq!(scan(line), None, "line: {line}");
        }
    }

    #[test]
    fn untracked_duplicate_keys_are_tolerated() {
        let line = r#"{"id": 1, "extra": 1, "extra": 2, "type": "stats"}"#;
        assert!(scan(line).is_some());
    }
}
