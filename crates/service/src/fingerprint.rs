//! Snapshot fingerprinting for the engine's artifact cache.
//!
//! Cache keys must be (a) cheap relative to forest extraction, (b) a
//! pure function of snapshot *content* so equal snapshots collide on
//! purpose, and (c) stable across processes so measured hit rates mean
//! something. The canonical JSON encoding of
//! [`InfectedNetwork`] already
//! round-trips every field bit-exactly, so hashing those bytes with
//! FNV-1a gives all three without a new serialization path.

use isomit_diffusion::InfectedNetwork;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of `bytes`.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content fingerprint of a snapshot: FNV-1a over its canonical JSON
/// encoding. Equal snapshots (graph, states, mapping, weights bit-exact)
/// always produce equal fingerprints.
pub fn snapshot_fingerprint(snapshot: &InfectedNetwork) -> u64 {
    fingerprint_bytes(snapshot.to_json_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};

    fn snapshot(weight: f64) -> InfectedNetwork {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, weight)])
                .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive, NodeState::Positive])
    }

    #[test]
    fn equal_snapshots_equal_fingerprints() {
        assert_eq!(
            snapshot_fingerprint(&snapshot(0.5)),
            snapshot_fingerprint(&snapshot(0.5))
        );
    }

    #[test]
    fn weight_bits_change_the_fingerprint() {
        assert_ne!(
            snapshot_fingerprint(&snapshot(0.5)),
            snapshot_fingerprint(&snapshot(0.5 + f64::EPSILON))
        );
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector.
        assert_eq!(fingerprint_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
