//! Blocking client for the JSON-lines protocol, used by `isomit-cli`,
//! the load generator, and the end-to-end tests.

use crate::engine::EngineStats;
use crate::protocol::{encode_request, parse_response, RequestBody, WireError};
use isomit_core::{RidConfig, RidDelta, RidResult};
use isomit_detectors::DetectorKind;
use isomit_diffusion::{InfectedNetwork, InfectionEstimate, SeedSet};
use isomit_graph::json::{JsonError, Value};
use isomit_telemetry::RegistrySnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, early EOF).
    Io(std::io::Error),
    /// The server's reply was not a valid protocol line.
    Protocol(JsonError),
    /// The server answered with a structured error.
    Remote(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The server's reply to one `watch_delta`: a full answer when the
/// delta was due under the session's `answer_every` cadence, a cheap
/// ack otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchReply {
    /// The updated detection over the session's current network.
    Answer(Box<RidResult>),
    /// The delta was applied without answering; `deltas` is the number
    /// applied so far.
    Ack {
        /// Deltas applied to the session so far.
        deltas: u64,
    },
}

impl WatchReply {
    /// The answer payload, when this reply carries one.
    pub fn answer(&self) -> Option<&RidResult> {
        match self {
            WatchReply::Answer(result) => Some(result),
            WatchReply::Ack { .. } => None,
        }
    }
}

/// A blocking connection to an `isomit-serve` daemon.
///
/// One request is in flight at a time per client; open several clients
/// for concurrency (the e2e tests and load generator do).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Returns any [`std::io::Error`] from the connection attempt.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Each request is one small line followed by a blocking read of
        // the reply; Nagle + delayed ACK would serialize that into
        // ~40ms round trips.
        writer.set_nodelay(true)?;
        let read_half = writer.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer,
            next_id: 1,
        })
    }

    /// Sends one request and waits for its reply, returning the raw
    /// `result` payload. Useful when the caller wants the exact wire
    /// bytes (`value.to_json()`) rather than a decoded type.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, `Protocol` on a
    /// malformed reply or id mismatch, `Remote` on a server-side error.
    pub fn request(&mut self, body: &RequestBody) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = encode_request(id, body);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = parse_response(reply.trim_end())?;
        if response.id != Some(id) {
            return Err(ClientError::Protocol(JsonError::new(format!(
                "response id {:?} does not match request id {id}",
                response.id
            ))));
        }
        response.outcome.map_err(ClientError::Remote)
    }

    /// Liveness probe; returns the raw `health` payload.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request(&RequestBody::Health)
    }

    /// Engine counters. The raw payload additionally carries
    /// `queue_depth` / `queue_capacity` / `cache_hit_rate` and the full
    /// `telemetry` registry snapshot; use [`request`](Client::request)
    /// or [`telemetry`](Client::telemetry) to see those.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn stats(&mut self) -> Result<EngineStats, ClientError> {
        let value = self.request(&RequestBody::Stats)?;
        EngineStats::from_json_value(&value).map_err(ClientError::Protocol)
    }

    /// The server's merged telemetry registry (engine metrics plus the
    /// daemon process's global stage/Monte-Carlo timings), from the
    /// `stats` payload's `telemetry` field.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request); additionally
    /// [`ClientError::Protocol`] when the server predates the
    /// `telemetry` field.
    pub fn telemetry(&mut self) -> Result<RegistrySnapshot, ClientError> {
        let value = self.request(&RequestBody::Stats)?;
        let field = value.require("telemetry").map_err(ClientError::Protocol)?;
        RegistrySnapshot::from_json_value(field).map_err(ClientError::Protocol)
    }

    /// Detects rumor initiators in `snapshot` under `config` (server
    /// default when `None`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn rid(
        &mut self,
        snapshot: &InfectedNetwork,
        config: Option<RidConfig>,
    ) -> Result<RidResult, ClientError> {
        self.rid_with_detector(snapshot, config, None)
    }

    /// Detects rumor sources in `snapshot` with an explicit detector
    /// choice (`None` means the server default, the full RID
    /// framework).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request); an unknown detector label at
    /// the server surfaces as a `unknown_detector` wire error.
    pub fn rid_with_detector(
        &mut self,
        snapshot: &InfectedNetwork,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
    ) -> Result<RidResult, ClientError> {
        let value = self.request(&RequestBody::Rid {
            snapshot: Box::new(snapshot.clone()),
            config,
            detector,
        })?;
        RidResult::from_json_value(&value).map_err(ClientError::Protocol)
    }

    /// Detects rumor initiators in a snapshot the server has answered
    /// before, addressed by its content fingerprint
    /// ([`crate::fingerprint::snapshot_fingerprint`]) instead of the
    /// snapshot itself — a few dozen bytes on the wire instead of the
    /// full infection state.
    ///
    /// Serves from the owning shard's serialized-result cache; `config`
    /// and `detector` must match the priming request exactly (the cache
    /// key covers them).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request); an `unknown_snapshot` wire
    /// error means no cached answer exists (never answered, or since
    /// evicted) — fall back to [`Client::rid_with_detector`] with the
    /// full snapshot, which re-primes the cache.
    pub fn rid_by_fingerprint(
        &mut self,
        fingerprint: u64,
        config: Option<RidConfig>,
        detector: Option<DetectorKind>,
    ) -> Result<RidResult, ClientError> {
        let value = self.request(&RequestBody::RidByFingerprint {
            fingerprint,
            config,
            detector,
        })?;
        RidResult::from_json_value(&value).map_err(ClientError::Protocol)
    }

    /// Monte-Carlo infection-probability estimation on the server's
    /// loaded network.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn simulate(
        &mut self,
        seeds: &SeedSet,
        runs: usize,
        seed: u64,
    ) -> Result<InfectionEstimate, ClientError> {
        let value = self.request(&RequestBody::Simulate {
            seeds: seeds.clone(),
            runs,
            seed,
        })?;
        InfectionEstimate::from_json_value(&value).map_err(ClientError::Protocol)
    }

    /// Opens an incremental watch session on this connection. `config`
    /// defaults to the server's, `answer_every` to 1 (answer every
    /// delta).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request); an `overloaded` wire error
    /// means the server's watch admission cap is reached.
    pub fn watch_open(
        &mut self,
        config: Option<RidConfig>,
        answer_every: Option<u64>,
    ) -> Result<(), ClientError> {
        self.request(&RequestBody::WatchOpen {
            config,
            answer_every,
        })
        .map(|_| ())
    }

    /// Streams one delta into the open watch session, returning the
    /// updated [`RidResult`] when the delta was due for an answer or an
    /// ack otherwise.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request); a rejected delta surfaces as
    /// an `invalid_delta` wire error and leaves the session (and this
    /// connection) usable.
    pub fn watch_delta(&mut self, delta: &RidDelta) -> Result<WatchReply, ClientError> {
        let value = self.request(&RequestBody::WatchDelta { delta: *delta })?;
        if value.get("detection").is_some() {
            let result = RidResult::from_json_value(&value).map_err(ClientError::Protocol)?;
            return Ok(WatchReply::Answer(Box::new(result)));
        }
        let deltas = value
            .get("deltas")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol(JsonError::new("ack without `deltas` count")))?;
        Ok(WatchReply::Ack { deltas })
    }

    /// Closes the open watch session, freeing its admission slot.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn watch_close(&mut self) -> Result<(), ClientError> {
        self.request(&RequestBody::WatchClose).map(|_| ())
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&RequestBody::Shutdown).map(|_| ())
    }
}
