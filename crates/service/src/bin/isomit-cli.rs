//! `isomit-cli` — command-line client for `isomit-serve`, plus a local
//! `gen-snapshot` helper for producing test fixtures.
//!
//! ```text
//! isomit-cli [--addr HOST:PORT] health
//! isomit-cli [--addr HOST:PORT] stats [--json]
//! isomit-cli [--addr HOST:PORT] shutdown
//! isomit-cli [--addr HOST:PORT] rid --snapshot FILE [--alpha A] [--beta B]
//!            [--detector NAME]
//! isomit-cli [--addr HOST:PORT] simulate --seeds 0:+,3:- --runs N [--seed S]
//! isomit-cli gen-snapshot --out SNAP.json [--graph-out GRAPH.json]
//!            [--scale S] [--seed N]
//! ```
//!
//! Server commands print the raw JSON `result` payload to stdout, one
//! line, suitable for piping into other tools — except `stats`, which
//! pretty-prints the counters and the telemetry registry (one metric
//! per line, histograms as `p50/p95/p99 (n=…)`); pass `--json` for the
//! raw payload used by tests and CI.

use isomit_core::RidConfig;
use isomit_diffusion::{InfectedNetwork, SeedSet};
use isomit_graph::json::Value;
use isomit_graph::{NodeId, Sign};
use isomit_service::protocol::RequestBody;
use isomit_service::{Client, DetectorKind};
use isomit_telemetry::RegistrySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn usage() -> ! {
    eprintln!(
        "usage: isomit-cli [--addr HOST:PORT] <health|stats [--json]|shutdown>\n\
         \x20      isomit-cli [--addr HOST:PORT] rid --snapshot FILE [--alpha A] [--beta B] [--detector NAME]\n\
         \x20      isomit-cli [--addr HOST:PORT] simulate --seeds 0:+,3:- --runs N [--seed S]\n\
         \x20      isomit-cli gen-snapshot --out SNAP.json [--graph-out GRAPH.json] [--scale S] [--seed N]"
    );
    std::process::exit(2);
}

/// Parses `0:+,3:-` into a seed set.
fn parse_seeds(spec: &str) -> SeedSet {
    let pairs = spec.split(',').map(|part| {
        let (node, sign) = part
            .split_once(':')
            .unwrap_or_else(|| panic!("seed `{part}` must look like 0:+ or 3:-"));
        let node: usize = node
            .parse()
            .unwrap_or_else(|_| panic!("bad seed node `{node}`"));
        let sign = match sign {
            "+" => Sign::Positive,
            "-" => Sign::Negative,
            other => panic!("bad seed sign `{other}` (use + or -)"),
        };
        (NodeId::from_index(node), sign)
    });
    SeedSet::from_pairs(pairs.collect::<Vec<_>>()).expect("invalid seed set")
}

fn gen_snapshot(args: &mut std::env::Args) {
    let mut out = None;
    let mut graph_out = None;
    let mut scale = 0.05;
    let mut seed = 7u64;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--out" => out = Some(value("--out")),
            "--graph-out" => graph_out = Some(value("--graph-out")),
            "--scale" => scale = value("--scale").parse().expect("--scale: f64"),
            "--seed" => seed = value("--seed").parse().expect("--seed: u64"),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };
    let mut rng = StdRng::seed_from_u64(seed);
    let social = isomit_datasets::epinions_like_scaled(scale, &mut rng);
    let scenario = isomit_datasets::build_scenario(
        &social,
        &isomit_datasets::ScenarioConfig::small(),
        &mut rng,
    );
    std::fs::write(&out, scenario.snapshot.to_json_string()).expect("write snapshot");
    eprintln!(
        "wrote snapshot with {} infected nodes to {out}",
        scenario.snapshot.node_count()
    );
    if let Some(graph_out) = graph_out {
        std::fs::write(&graph_out, scenario.diffusion.to_json_string()).expect("write graph");
        eprintln!(
            "wrote diffusion network with {} nodes to {graph_out}",
            scenario.diffusion.node_count()
        );
    }
}

fn main() {
    let mut args = std::env::args();
    args.next(); // program name
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut command = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                command = Some(other.to_owned());
                break;
            }
        }
    }
    let Some(command) = command else { usage() };

    if command == "gen-snapshot" {
        gen_snapshot(&mut args);
        return;
    }

    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| panic!("cannot connect to isomit-serve at {addr}: {e}"));
    let mut stats_json = false;
    let body = match command.as_str() {
        "health" => RequestBody::Health,
        "stats" => {
            for flag in args.by_ref() {
                match flag.as_str() {
                    "--json" => stats_json = true,
                    _ => usage(),
                }
            }
            RequestBody::Stats
        }
        "shutdown" => RequestBody::Shutdown,
        "rid" => {
            let mut snapshot_file = None;
            let mut alpha = None;
            let mut beta = None;
            let mut detector = None;
            while let Some(flag) = args.next() {
                let mut value = |name: &str| {
                    args.next()
                        .unwrap_or_else(|| panic!("{name} requires a value"))
                };
                match flag.as_str() {
                    "--snapshot" => snapshot_file = Some(value("--snapshot")),
                    "--alpha" => alpha = Some(value("--alpha").parse().expect("--alpha: f64")),
                    "--beta" => beta = Some(value("--beta").parse().expect("--beta: f64")),
                    "--detector" => {
                        let name = value("--detector");
                        detector = Some(DetectorKind::from_label(&name).unwrap_or_else(|e| {
                            eprintln!("isomit-cli: {e}");
                            std::process::exit(2);
                        }));
                    }
                    _ => usage(),
                }
            }
            let Some(file) = snapshot_file else { usage() };
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("cannot read snapshot {file}: {e}"));
            let snapshot = InfectedNetwork::from_json_str(&text)
                .unwrap_or_else(|e| panic!("invalid snapshot {file}: {e}"));
            let config = if alpha.is_some() || beta.is_some() {
                let defaults = RidConfig::default();
                Some(RidConfig {
                    alpha: alpha.unwrap_or(defaults.alpha),
                    beta: beta.unwrap_or(defaults.beta),
                    ..defaults
                })
            } else {
                None
            };
            RequestBody::Rid {
                snapshot: Box::new(snapshot),
                config,
                detector,
            }
        }
        "simulate" => {
            let mut seeds = None;
            let mut runs = None;
            let mut seed = 1u64;
            while let Some(flag) = args.next() {
                let mut value = |name: &str| {
                    args.next()
                        .unwrap_or_else(|| panic!("{name} requires a value"))
                };
                match flag.as_str() {
                    "--seeds" => seeds = Some(parse_seeds(&value("--seeds"))),
                    "--runs" => runs = Some(value("--runs").parse().expect("--runs: usize")),
                    "--seed" => seed = value("--seed").parse().expect("--seed: u64"),
                    _ => usage(),
                }
            }
            let (Some(seeds), Some(runs)) = (seeds, runs) else {
                usage()
            };
            RequestBody::Simulate { seeds, runs, seed }
        }
        _ => usage(),
    };
    match client.request(&body) {
        Ok(result) => {
            use std::io::Write;
            let rendered = if command == "stats" && !stats_json {
                pretty_stats(&result)
            } else {
                result.to_json()
            };
            // Ignore broken pipes so `isomit-cli ... | head` exits cleanly.
            let _ = writeln!(std::io::stdout(), "{}", rendered.trim_end());
        }
        Err(e) => {
            eprintln!("isomit-cli: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders the `stats` payload for humans: engine counters one per
/// line, then the telemetry registry in its `p50/p95/p99 (n=…)` form.
fn pretty_stats(result: &Value) -> String {
    let mut out = String::new();
    if let Value::Object(fields) = result {
        for (key, value) in fields {
            if key == "telemetry" {
                continue;
            }
            out.push_str(&format!("{key}: {}\n", value.to_json()));
        }
    }
    match result
        .get("telemetry")
        .map(RegistrySnapshot::from_json_value)
    {
        Some(Ok(snapshot)) => {
            out.push_str(&snapshot.pretty());
        }
        Some(Err(e)) => {
            eprintln!("isomit-cli: malformed telemetry section: {e}");
        }
        None => {}
    }
    out
}
