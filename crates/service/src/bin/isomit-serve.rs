//! `isomit-serve` — the RID inference daemon.
//!
//! ```text
//! isomit-serve [--addr HOST:PORT] [--shards N] [--queue N]
//!              [--timeout-ms MS] [--cache N] [--result-cache N]
//!              [--io-threads N] [--max-watch N]
//!              [--alpha A] [--beta B]
//!              (--graph FILE | --generate epinions|slashdot)
//!              [--scale S] [--seed N]
//! ```
//!
//! `--workers N` is accepted as a deprecated alias of `--shards N`
//! (each shard owns exactly one worker thread).
//!
//! Loads (or generates) the diffusion network once, then serves the
//! newline-delimited JSON protocol until a client sends `shutdown`.
//! Prints `isomit-serve listening on HOST:PORT` once ready — tests and
//! scripts parse that line to discover ephemeral ports.

use isomit_core::RidConfig;
use isomit_graph::SignedDigraph;
use isomit_service::{RidEngine, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    addr: String,
    shards: usize,
    io_threads: usize,
    result_cache: usize,
    queue: usize,
    timeout_ms: u64,
    cache: usize,
    max_watch: usize,
    alpha: f64,
    beta: f64,
    graph_file: Option<String>,
    generate: Option<String>,
    scale: f64,
    seed: u64,
}

impl Options {
    fn parse(mut args: std::env::Args) -> Options {
        let mut opts = Options {
            addr: "127.0.0.1:7878".to_owned(),
            shards: 4,
            io_threads: 1,
            result_cache: 512,
            queue: 64,
            timeout_ms: 30_000,
            cache: 32,
            max_watch: 4,
            alpha: 3.0,
            beta: 0.1,
            graph_file: None,
            generate: None,
            scale: 0.05,
            seed: 7,
        };
        args.next(); // program name
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr"),
                "--shards" => opts.shards = value("--shards").parse().expect("--shards: usize"),
                // Deprecated alias from the pre-sharded server: one
                // worker thread per shard, so the counts coincide.
                "--workers" => opts.shards = value("--workers").parse().expect("--workers: usize"),
                "--io-threads" => {
                    opts.io_threads = value("--io-threads").parse().expect("--io-threads: usize")
                }
                "--result-cache" => {
                    opts.result_cache = value("--result-cache")
                        .parse()
                        .expect("--result-cache: usize")
                }
                "--queue" => opts.queue = value("--queue").parse().expect("--queue: usize"),
                "--timeout-ms" => {
                    opts.timeout_ms = value("--timeout-ms").parse().expect("--timeout-ms: u64")
                }
                "--cache" => opts.cache = value("--cache").parse().expect("--cache: usize"),
                "--max-watch" => {
                    opts.max_watch = value("--max-watch").parse().expect("--max-watch: usize")
                }
                "--alpha" => opts.alpha = value("--alpha").parse().expect("--alpha: f64"),
                "--beta" => opts.beta = value("--beta").parse().expect("--beta: f64"),
                "--graph" => opts.graph_file = Some(value("--graph")),
                "--generate" => opts.generate = Some(value("--generate")),
                "--scale" => opts.scale = value("--scale").parse().expect("--scale: f64"),
                "--seed" => opts.seed = value("--seed").parse().expect("--seed: u64"),
                "--help" | "-h" => {
                    println!(
                        "usage: isomit-serve [--addr HOST:PORT] [--shards N] [--queue N] \
                         [--timeout-ms MS] [--cache N] [--result-cache N] [--io-threads N] \
                         [--max-watch N] [--alpha A] [--beta B] \
                         (--graph FILE | --generate epinions|slashdot) [--scale S] [--seed N]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        opts
    }
}

fn load_graph(opts: &Options) -> SignedDigraph {
    if let Some(file) = &opts.graph_file {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read graph file {file}: {e}"));
        return SignedDigraph::from_json_str(&text)
            .unwrap_or_else(|e| panic!("invalid graph file {file}: {e}"));
    }
    let kind = opts.generate.as_deref().unwrap_or("epinions");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let social = match kind {
        "epinions" => isomit_datasets::epinions_like_scaled(opts.scale, &mut rng),
        "slashdot" => isomit_datasets::slashdot_like_scaled(opts.scale, &mut rng),
        other => panic!("unknown generator `{other}` (epinions|slashdot)"),
    };
    isomit_datasets::paper_weights(&social, &mut rng)
}

fn main() {
    let opts = Options::parse(std::env::args());
    let graph = load_graph(&opts);
    eprintln!(
        "isomit-serve: loaded network with {} nodes / {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    let config = RidConfig {
        alpha: opts.alpha,
        beta: opts.beta,
        ..RidConfig::default()
    };
    let engine =
        Arc::new(RidEngine::new(graph, config, opts.cache).expect("invalid detector config"));
    let server = Server::start(
        engine,
        &opts.addr,
        ServerConfig {
            shards: opts.shards,
            queue_capacity: opts.queue,
            request_timeout: Duration::from_millis(opts.timeout_ms),
            max_watch_sessions: opts.max_watch,
            io_threads: opts.io_threads,
            result_cache_capacity: opts.result_cache,
        },
    )
    .expect("cannot bind listener");
    // Stdout, flushed: scripts and tests block on this exact line.
    println!("isomit-serve listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().expect("flush stdout");
    server.join();
    eprintln!("isomit-serve: drained and stopped");
}
