//! A small bounded LRU cache whose hit/miss/eviction counters are
//! registry-backed telemetry [`Counter`]s.
//!
//! Backs the engine's per-snapshot artifact cache. Determinism note:
//! the cache only ever changes *whether* artifacts are recomputed,
//! never their value — extraction is a pure function of
//! `(snapshot, alpha)` — so results are bit-identical whatever the
//! cache's state (tested at the engine layer).

use isomit_telemetry::{names, Counter, Registry};
use std::collections::BTreeMap;

/// The three outcome counters of an [`LruCache`]. Constructed either
/// detached ([`CacheMetrics::detached`], for tests and standalone use)
/// or bound to a registry ([`CacheMetrics::registered`]) so the cache's
/// behavior shows up in registry snapshots.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    /// Lookups that found an entry.
    pub hits: Counter,
    /// Lookups that found nothing.
    pub misses: Counter,
    /// Entries evicted to make room.
    pub evictions: Counter,
}

impl CacheMetrics {
    /// Counters not visible in any registry.
    pub fn detached() -> CacheMetrics {
        CacheMetrics {
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Counters registered under the well-known `service.cache.*` names.
    pub fn registered(registry: &Registry) -> CacheMetrics {
        CacheMetrics {
            hits: registry.counter(names::SERVICE_CACHE_HITS),
            misses: registry.counter(names::SERVICE_CACHE_MISSES),
            evictions: registry.counter(names::SERVICE_CACHE_EVICTIONS),
        }
    }

    /// Counters registered under the `service.result_cache.*` names —
    /// the sharded server's serialized-result cache, kept distinct from
    /// the artifact cache so hot-path hit rates are attributable.
    pub fn registered_for_results(registry: &Registry) -> CacheMetrics {
        CacheMetrics {
            hits: registry.counter(names::SERVICE_RESULT_CACHE_HITS),
            misses: registry.counter(names::SERVICE_RESULT_CACHE_MISSES),
            evictions: registry.counter(names::SERVICE_RESULT_CACHE_EVICTIONS),
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

/// Bounded least-recently-used map from `K` to `V`.
///
/// Not internally synchronized; wrap in a `Mutex` for shared use. A
/// capacity of `0` disables caching entirely (every lookup misses,
/// inserts are dropped), which keeps the "no caching" configuration on
/// the same code path.
#[derive(Debug)]
pub struct LruCache<K: Ord, V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, Entry<V>>,
    metrics: CacheMetrics,
}

impl<K: Ord + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries, with detached
    /// (registry-invisible) counters.
    pub fn new(capacity: usize) -> Self {
        LruCache::with_metrics(capacity, CacheMetrics::detached())
    }

    /// Creates a cache whose outcome counters are the given handles —
    /// typically [`CacheMetrics::registered`] against the owning
    /// component's registry.
    pub fn with_metrics(capacity: usize, metrics: CacheMetrics) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            metrics,
        }
    }

    /// Looks up `key`, marking it most-recently-used and counting the
    /// hit or miss.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.metrics.hits.inc();
                Some(entry.value.clone())
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full. Replacing an existing key never evicts.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(n) LRU scan; capacities here are small (tens of
            // snapshots), so simplicity beats an intrusive list.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(k) = lru {
                self.entries.remove(&k);
                self.metrics.evictions.inc();
            }
        }
        self.entries.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Removes `key`, returning its value if it was cached.
    ///
    /// A targeted removal is not an eviction (nothing was displaced to
    /// make room) and is not counted as one; callers tracking
    /// supersession keep their own counter.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|e| e.value)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.metrics.hits.get()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.metrics.misses.get()
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.metrics.evictions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn remove_is_targeted_and_not_an_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(20), "unrelated entries survive removal");
        // The freed slot is reusable without displacing anything.
        c.insert(3, 30);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn registered_counters_show_up_in_snapshots() {
        let registry = Registry::new();
        let mut c: LruCache<u32, u32> =
            LruCache::with_metrics(2, CacheMetrics::registered(&registry));
        c.get(&1);
        c.insert(1, 10);
        c.get(&1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::SERVICE_CACHE_HITS), Some(1));
        assert_eq!(snap.counter(names::SERVICE_CACHE_MISSES), Some(1));
        assert_eq!(snap.counter(names::SERVICE_CACHE_EVICTIONS), Some(0));
    }
}
