//! A small bounded LRU cache with hit/miss/eviction counters.
//!
//! Backs the engine's per-snapshot artifact cache. Determinism note:
//! the cache only ever changes *whether* artifacts are recomputed,
//! never their value — extraction is a pure function of
//! `(snapshot, alpha)` — so results are bit-identical whatever the
//! cache's state (tested at the engine layer).

use std::collections::BTreeMap;

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

/// Bounded least-recently-used map from `K` to `V`.
///
/// Not internally synchronized; wrap in a `Mutex` for shared use. A
/// capacity of `0` disables caching entirely (every lookup misses,
/// inserts are dropped), which keeps the "no caching" configuration on
/// the same code path.
#[derive(Debug)]
pub struct LruCache<K: Ord, V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, Entry<V>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Ord + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, marking it most-recently-used and counting the
    /// hit or miss.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full. Replacing an existing key never evicts.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(n) LRU scan; capacities here are small (tens of
            // snapshots), so simplicity beats an intrusive list.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(k) = lru {
                self.entries.remove(&k);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }
}
