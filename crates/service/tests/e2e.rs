//! End-to-end serving tests: spawn the real `isomit-serve` binary on an
//! ephemeral port, query it through the client library, and check every
//! answer byte-for-byte against the in-process pipeline.

use isomit_core::{InitiatorDetector, Rid, RidConfig, RidTree};
use isomit_diffusion::{par_estimate_infection_probabilities_wide, InfectedNetwork, Mfc, SeedSet};
use isomit_graph::{NodeId, Sign, SignedDigraph};
use isomit_service::protocol::ErrorKind;
use isomit_service::{Client, ClientError, DetectorKind};
use isomit_telemetry::names;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};

/// Scale / seed the daemon is launched with; [`server_graph`] must
/// replicate this build exactly for byte-identical comparisons.
const SCALE: &str = "0.02";
const NET_SEED: &str = "7";

/// A running `isomit-serve` child, killed on drop so a failing test
/// never leaks the process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_isomit-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--generate",
                "epinions",
                "--scale",
                SCALE,
                "--seed",
                NET_SEED,
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn isomit-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        let announced = line
            .strip_prefix("isomit-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {line}"));
        // The announce line must be a parseable socket address with a
        // real (kernel-assigned, nonzero) port — scripts dial exactly
        // what the daemon printed.
        let parsed: SocketAddr = announced
            .parse()
            .unwrap_or_else(|e| panic!("announce line `{line}` is not a socket address: {e}"));
        assert_ne!(parsed.port(), 0, "daemon announced the wildcard port");
        Daemon {
            child,
            addr: parsed.to_string(),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to daemon")
    }

    fn raw(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("raw connect to daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The exact network `isomit-serve --generate epinions` builds.
fn server_graph() -> SignedDigraph {
    let mut rng = StdRng::seed_from_u64(7);
    let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
    isomit_datasets::paper_weights(&social, &mut rng)
}

/// A deterministic infected snapshot, independent of the server graph.
fn snapshot(seed: u64) -> InfectedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
    let scenario = isomit_datasets::build_scenario(
        &social,
        &isomit_datasets::ScenarioConfig::small(),
        &mut rng,
    );
    scenario.snapshot
}

fn expected_detection(snap: &InfectedNetwork, config: RidConfig) -> isomit_core::Detection {
    let rid = Rid::from_config(config).expect("valid config");
    rid.detect(snap)
}

#[test]
fn rid_round_trip_is_byte_identical_to_in_process() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();

    let health = client.health().expect("health");
    assert_eq!(
        health.get("version").and_then(|v| v.as_str()),
        Some(isomit_service::protocol::PROTOCOL_VERSION)
    );

    for seed in [1, 2, 3] {
        let snap = snapshot(seed);
        let served = client.rid(&snap, None).expect("rid");
        let local = expected_detection(&snap, RidConfig::default());
        assert_eq!(served.detection, local, "snapshot seed {seed}");
        // Byte-identical through the codec, not merely equal.
        assert_eq!(
            served.detection.to_json_value().to_json(),
            local.to_json_value().to_json()
        );
        assert_eq!(
            served.detection.objective.to_bits(),
            local.objective.to_bits()
        );
    }

    // A config override takes the same path.
    let snap = snapshot(1);
    let config = RidConfig {
        beta: 0.0,
        ..RidConfig::default()
    };
    let served = client.rid(&snap, Some(config)).expect("rid with config");
    assert_eq!(served.config, config);
    assert_eq!(served.detection, expected_detection(&snap, config));

    // The repeated snapshot above must have hit the artifact cache.
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 1, "expected cache hits, got {stats:?}");
    assert_eq!(stats.rid_requests, 4);

    // The daemon's telemetry registry travels over the wire and shows
    // the traffic we just generated: end-to-end and per-stage latency
    // histograms have recordings, and the cache counters mirror stats.
    let telemetry = client.telemetry().expect("telemetry over the wire");
    for name in [
        names::SERVICE_REQUEST_NS,
        names::SERVICE_QUEUE_WAIT_NS,
        names::RID_EXTRACT_STAGE_NS,
        names::RID_QUERY_STAGE_NS,
    ] {
        let count = telemetry.histogram(name).map_or(0, |h| h.count());
        assert!(count > 0, "{name}: expected recordings after rid traffic");
    }
    assert_eq!(
        telemetry.counter(names::SERVICE_CACHE_HITS),
        Some(stats.cache_hits)
    );
    assert_eq!(
        telemetry.counter(names::SERVICE_CACHE_MISSES),
        Some(stats.cache_misses)
    );
    assert_eq!(
        telemetry.counter(names::SERVICE_RID_REQUESTS),
        Some(stats.rid_requests)
    );

    client.shutdown().expect("shutdown");
}

#[test]
fn four_concurrent_clients_get_bit_identical_answers() {
    let daemon = Daemon::spawn(&[]);

    // Precompute expected answers once, in process.
    let cases: Vec<(InfectedNetwork, String)> = [11u64, 12, 13, 14]
        .iter()
        .map(|&seed| {
            let snap = snapshot(seed);
            let expected = expected_detection(&snap, RidConfig::default())
                .to_json_value()
                .to_json();
            (snap, expected)
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let daemon = &daemon;
            let cases = &cases;
            scope.spawn(move || {
                let mut client = daemon.client();
                // Each client walks the cases from a different offset so
                // cold and cached lookups interleave across connections.
                for round in 0..3 {
                    let (snap, expected) = &cases[(worker + round) % cases.len()];
                    let served = client.rid(snap, None).expect("concurrent rid");
                    assert_eq!(&served.detection.to_json_value().to_json(), expected);
                }
            });
        }
    });

    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rid_requests, 12);
    assert!(stats.cache_hits >= 8, "4 snapshots, 12 requests: {stats:?}");
    client.shutdown().expect("shutdown");
}

#[test]
fn simulate_matches_in_process_monte_carlo() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();

    let seeds = SeedSet::from_pairs(vec![
        (NodeId::from_index(0), Sign::Positive),
        (NodeId::from_index(5), Sign::Negative),
    ])
    .expect("seed set");
    let served = client.simulate(&seeds, 64, 42).expect("simulate");

    let graph = server_graph();
    let model = Mfc::new(RidConfig::default().alpha).expect("model");
    let local = par_estimate_infection_probabilities_wide(&model, &graph, &seeds, 64, 42)
        .expect("local mc");
    assert_eq!(
        served.to_json_value().to_json(),
        local.to_json_value().to_json()
    );

    // Out-of-bounds seeds come back as a structured diffusion error.
    let bad = SeedSet::single(NodeId::from_index(10_000_000), Sign::Positive);
    match client.simulate(&bad, 8, 1) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::Diffusion);
            assert!(err.diffusion_detail().is_some());
        }
        other => panic!("expected a remote diffusion error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
}

#[test]
fn malformed_lines_get_structured_errors_not_disconnects() {
    let daemon = Daemon::spawn(&[]);
    let mut raw = daemon.raw();
    let mut reader = BufReader::new(raw.try_clone().expect("clone stream"));

    let mut exchange = |line: &str| -> String {
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "server disconnected on {line:?}");
        reply
    };

    let reply = exchange("this is not json");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"id\":null"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    let reply = exchange("{\"id\":9,\"type\":\"no-such-request\"}");
    assert!(reply.contains("\"id\":9"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    let reply = exchange("{\"id\":10,\"type\":\"rid\",\"snapshot\":{\"bogus\":true}}");
    assert!(reply.contains("\"id\":10"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    // The connection is still healthy after all three errors.
    let reply = exchange("{\"id\":11,\"type\":\"health\"}");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    let mut client = daemon.client();
    client.shutdown().expect("shutdown");
}

#[test]
fn detector_requests_round_trip_and_unknown_names_error() {
    let daemon = Daemon::spawn(&[]);
    let mut raw = daemon.raw();
    let mut reader = BufReader::new(raw.try_clone().expect("clone stream"));

    let mut exchange = |line: &str| -> String {
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "server disconnected on detector request");
        reply
    };

    // An unknown detector name is a structured error carrying the known
    // names — and the connection survives it.
    let snap = snapshot(21);
    let reply = exchange(&format!(
        "{{\"id\":3,\"type\":\"rid\",\"detector\":\"bogus\",\"snapshot\":{}}}",
        snap.to_json_string()
    ));
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"id\":3"), "{reply}");
    assert!(reply.contains("unknown_detector"), "{reply}");
    for known in [
        "rid_tree",
        "rid_positive",
        "rumor_centrality",
        "jordan_center",
    ] {
        assert!(
            reply.contains(known),
            "known names missing {known}: {reply}"
        );
    }
    let reply = exchange("{\"id\":4,\"type\":\"health\"}");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // A valid detector name is echoed in the response envelope.
    let reply = exchange(&format!(
        "{{\"id\":5,\"type\":\"rid\",\"detector\":\"rid_tree\",\"snapshot\":{}}}",
        snap.to_json_string()
    ));
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"detector\":\"rid_tree\""), "{reply}");

    // And through the typed client, the served answer matches the
    // in-process estimator exactly.
    let mut client = daemon.client();
    let served = client
        .rid_with_detector(&snap, None, Some(DetectorKind::RidTree))
        .expect("rid_tree over the wire");
    let local = RidTree::new(RidConfig::default().alpha)
        .expect("valid alpha")
        .detect(&snap);
    assert_eq!(served.detection, local);
    assert_eq!(
        served.detection.objective.to_bits(),
        local.objective.to_bits()
    );

    client.shutdown().expect("shutdown");
}

/// Polls `stats` over a fresh connection until `pred` holds. Control
/// requests bypass the worker queue, so this works while workers and
/// queue are saturated.
fn wait_for_stats(daemon: &Daemon, pred: impl Fn(&isomit_graph::json::Value) -> bool) {
    let mut client = daemon.client();
    for _ in 0..200 {
        let stats = client
            .request(&isomit_service::protocol::RequestBody::Stats)
            .expect("stats poll");
        if pred(&stats) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("stats condition not reached within 5s");
}

#[test]
fn overload_yields_structured_errors_not_hangs() {
    // One worker, queue of one: a single long simulation plus one queued
    // job saturate the data plane completely.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "1"]);

    let seeds_json = "[[0,1],[5,-1]]";
    // Debug-build Monte-Carlo at this scale runs ~1ms/run: several
    // seconds of guaranteed worker occupancy.
    let long_job = format!(
        "{{\"id\":1,\"type\":\"simulate\",\"seeds\":{seeds_json},\"runs\":4000,\"seed\":1}}"
    );
    let mut busy = daemon.raw();
    busy.write_all(long_job.as_bytes()).expect("write long job");
    busy.write_all(b"\n").expect("newline");

    // Wait until the worker has actually dequeued it.
    wait_for_stats(&daemon, |stats| {
        stats.get("simulate_requests").and_then(|v| v.as_u64()) == Some(1)
    });

    // Fill the queue with a second job.
    let mut filler = daemon.raw();
    filler
        .write_all(long_job.replace("\"id\":1", "\"id\":2").as_bytes())
        .expect("write filler");
    filler.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("queue_depth").and_then(|v| v.as_u64()) == Some(1)
    });

    // Every further data-plane request must be rejected immediately with
    // a structured `overloaded` error — no hang, no disconnect.
    let snap = snapshot(1);
    let mut client = daemon.client();
    for _ in 0..8 {
        match client.rid(&snap, None) {
            Err(ClientError::Remote(err)) => {
                assert_eq!(err.kind, ErrorKind::Overloaded, "{err}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    // Control plane stays responsive throughout.
    client.health().expect("health under overload");

    // Cleanup: kill the daemon via Drop; the long jobs never finish.
}

#[test]
fn queued_work_past_its_deadline_is_rejected() {
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "4", "--timeout-ms", "1"]);

    // Occupy the single worker long enough that anything queued behind
    // it is guaranteed to exceed the 1ms deadline by dequeue time.
    let long_job =
        "{\"id\":1,\"type\":\"simulate\",\"seeds\":[[0,1],[5,-1]],\"runs\":500,\"seed\":1}";
    let mut busy = daemon.raw();
    busy.write_all(long_job.as_bytes()).expect("write long job");
    busy.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("simulate_requests").and_then(|v| v.as_u64()) == Some(1)
    });

    let snap = snapshot(1);
    let mut client = daemon.client();
    match client.rid(&snap, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::DeadlineExceeded, "{err}");
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // The rejection is visible in telemetry, and the expired job's
    // queue wait was still recorded.
    let telemetry = client.telemetry().expect("telemetry");
    assert!(
        telemetry
            .counter(names::SERVICE_DEADLINE_EXCEEDED)
            .is_some_and(|n| n >= 1),
        "deadline rejection must increment {}",
        names::SERVICE_DEADLINE_EXCEEDED
    );
    assert!(
        telemetry
            .histogram(names::SERVICE_QUEUE_WAIT_NS)
            .is_some_and(|h| h.count() >= 1),
        "queue wait of the expired job must be recorded"
    );
}
