//! End-to-end serving tests: spawn the real `isomit-serve` binary on an
//! ephemeral port, query it through the client library, and check every
//! answer byte-for-byte against the in-process pipeline.

use isomit_core::{IncrementalRid, InitiatorDetector, Rid, RidConfig, RidDelta, RidTree};
use isomit_diffusion::{par_estimate_infection_probabilities_wide, InfectedNetwork, Mfc, SeedSet};
use isomit_graph::{NodeId, NodeState, Sign, SignedDigraph};
use isomit_service::protocol::ErrorKind;
use isomit_service::{Client, ClientError, DetectorKind, WatchReply};
use isomit_telemetry::names;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};

/// Scale / seed the daemon is launched with; [`server_graph`] must
/// replicate this build exactly for byte-identical comparisons.
const SCALE: &str = "0.02";
const NET_SEED: &str = "7";

/// A running `isomit-serve` child, killed on drop so a failing test
/// never leaks the process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_isomit-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--generate",
                "epinions",
                "--scale",
                SCALE,
                "--seed",
                NET_SEED,
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn isomit-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        let announced = line
            .strip_prefix("isomit-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {line}"));
        // The announce line must be a parseable socket address with a
        // real (kernel-assigned, nonzero) port — scripts dial exactly
        // what the daemon printed.
        let parsed: SocketAddr = announced
            .parse()
            .unwrap_or_else(|e| panic!("announce line `{line}` is not a socket address: {e}"));
        assert_ne!(parsed.port(), 0, "daemon announced the wildcard port");
        Daemon {
            child,
            addr: parsed.to_string(),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to daemon")
    }

    fn raw(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("raw connect to daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The exact network `isomit-serve --generate epinions` builds.
fn server_graph() -> SignedDigraph {
    let mut rng = StdRng::seed_from_u64(7);
    let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
    isomit_datasets::paper_weights(&social, &mut rng)
}

/// A deterministic infected snapshot, independent of the server graph.
fn snapshot(seed: u64) -> InfectedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = isomit_datasets::epinions_like_scaled(0.02, &mut rng);
    let scenario = isomit_datasets::build_scenario(
        &social,
        &isomit_datasets::ScenarioConfig::small(),
        &mut rng,
    );
    scenario.snapshot
}

fn expected_detection(snap: &InfectedNetwork, config: RidConfig) -> isomit_core::Detection {
    let rid = Rid::from_config(config).expect("valid config");
    rid.detect(snap)
}

#[test]
fn rid_round_trip_is_byte_identical_to_in_process() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();

    let health = client.health().expect("health");
    assert_eq!(
        health.get("version").and_then(|v| v.as_str()),
        Some(isomit_service::protocol::PROTOCOL_VERSION)
    );

    for seed in [1, 2, 3] {
        let snap = snapshot(seed);
        let served = client.rid(&snap, None).expect("rid");
        let local = expected_detection(&snap, RidConfig::default());
        assert_eq!(served.detection, local, "snapshot seed {seed}");
        // Byte-identical through the codec, not merely equal.
        assert_eq!(
            served.detection.to_json_value().to_json(),
            local.to_json_value().to_json()
        );
        assert_eq!(
            served.detection.objective.to_bits(),
            local.objective.to_bits()
        );
    }

    // A config override takes the same path.
    let snap = snapshot(1);
    let config = RidConfig {
        beta: 0.0,
        ..RidConfig::default()
    };
    let served = client.rid(&snap, Some(config)).expect("rid with config");
    assert_eq!(served.config, config);
    assert_eq!(served.detection, expected_detection(&snap, config));

    // The repeated snapshot above must have hit the artifact cache.
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 1, "expected cache hits, got {stats:?}");
    assert_eq!(stats.rid_requests, 4);

    // The daemon's telemetry registry travels over the wire and shows
    // the traffic we just generated: end-to-end and per-stage latency
    // histograms have recordings, and the cache counters mirror stats.
    let telemetry = client.telemetry().expect("telemetry over the wire");
    for name in [
        names::SERVICE_REQUEST_NS,
        names::SERVICE_QUEUE_WAIT_NS,
        names::RID_EXTRACT_STAGE_NS,
        names::RID_QUERY_STAGE_NS,
    ] {
        let count = telemetry.histogram(name).map_or(0, |h| h.count());
        assert!(count > 0, "{name}: expected recordings after rid traffic");
    }
    assert_eq!(
        telemetry.counter(names::SERVICE_CACHE_HITS),
        Some(stats.cache_hits)
    );
    assert_eq!(
        telemetry.counter(names::SERVICE_CACHE_MISSES),
        Some(stats.cache_misses)
    );
    assert_eq!(
        telemetry.counter(names::SERVICE_RID_REQUESTS),
        Some(stats.rid_requests)
    );

    client.shutdown().expect("shutdown");
}

#[test]
fn four_concurrent_clients_get_bit_identical_answers() {
    let daemon = Daemon::spawn(&[]);

    // Precompute expected answers once, in process.
    let cases: Vec<(InfectedNetwork, String)> = [11u64, 12, 13, 14]
        .iter()
        .map(|&seed| {
            let snap = snapshot(seed);
            let expected = expected_detection(&snap, RidConfig::default())
                .to_json_value()
                .to_json();
            (snap, expected)
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let daemon = &daemon;
            let cases = &cases;
            scope.spawn(move || {
                let mut client = daemon.client();
                // Each client walks the cases from a different offset so
                // cold and cached lookups interleave across connections.
                for round in 0..3 {
                    let (snap, expected) = &cases[(worker + round) % cases.len()];
                    let served = client.rid(snap, None).expect("concurrent rid");
                    assert_eq!(&served.detection.to_json_value().to_json(), expected);
                }
            });
        }
    });

    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rid_requests, 12);
    assert!(stats.cache_hits >= 8, "4 snapshots, 12 requests: {stats:?}");
    client.shutdown().expect("shutdown");
}

#[test]
fn simulate_matches_in_process_monte_carlo() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();

    let seeds = SeedSet::from_pairs(vec![
        (NodeId::from_index(0), Sign::Positive),
        (NodeId::from_index(5), Sign::Negative),
    ])
    .expect("seed set");
    let served = client.simulate(&seeds, 64, 42).expect("simulate");

    let graph = server_graph();
    let model = Mfc::new(RidConfig::default().alpha).expect("model");
    let local = par_estimate_infection_probabilities_wide(&model, &graph, &seeds, 64, 42)
        .expect("local mc");
    assert_eq!(
        served.to_json_value().to_json(),
        local.to_json_value().to_json()
    );

    // Out-of-bounds seeds come back as a structured diffusion error.
    let bad = SeedSet::single(NodeId::from_index(10_000_000), Sign::Positive);
    match client.simulate(&bad, 8, 1) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::Diffusion);
            assert!(err.diffusion_detail().is_some());
        }
        other => panic!("expected a remote diffusion error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
}

#[test]
fn malformed_lines_get_structured_errors_not_disconnects() {
    let daemon = Daemon::spawn(&[]);
    let mut raw = daemon.raw();
    let mut reader = BufReader::new(raw.try_clone().expect("clone stream"));

    let mut exchange = |line: &str| -> String {
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "server disconnected on {line:?}");
        reply
    };

    let reply = exchange("this is not json");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"id\":null"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    let reply = exchange("{\"id\":9,\"type\":\"no-such-request\"}");
    assert!(reply.contains("\"id\":9"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    let reply = exchange("{\"id\":10,\"type\":\"rid\",\"snapshot\":{\"bogus\":true}}");
    assert!(reply.contains("\"id\":10"), "{reply}");
    assert!(reply.contains("bad_request"), "{reply}");

    // The connection is still healthy after all three errors.
    let reply = exchange("{\"id\":11,\"type\":\"health\"}");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    let mut client = daemon.client();
    client.shutdown().expect("shutdown");
}

#[test]
fn detector_requests_round_trip_and_unknown_names_error() {
    let daemon = Daemon::spawn(&[]);
    let mut raw = daemon.raw();
    let mut reader = BufReader::new(raw.try_clone().expect("clone stream"));

    let mut exchange = |line: &str| -> String {
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "server disconnected on detector request");
        reply
    };

    // An unknown detector name is a structured error carrying the known
    // names — and the connection survives it.
    let snap = snapshot(21);
    let reply = exchange(&format!(
        "{{\"id\":3,\"type\":\"rid\",\"detector\":\"bogus\",\"snapshot\":{}}}",
        snap.to_json_string()
    ));
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"id\":3"), "{reply}");
    assert!(reply.contains("unknown_detector"), "{reply}");
    for known in [
        "rid_tree",
        "rid_positive",
        "rumor_centrality",
        "jordan_center",
    ] {
        assert!(
            reply.contains(known),
            "known names missing {known}: {reply}"
        );
    }
    let reply = exchange("{\"id\":4,\"type\":\"health\"}");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // A valid detector name is echoed in the response envelope.
    let reply = exchange(&format!(
        "{{\"id\":5,\"type\":\"rid\",\"detector\":\"rid_tree\",\"snapshot\":{}}}",
        snap.to_json_string()
    ));
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"detector\":\"rid_tree\""), "{reply}");

    // And through the typed client, the served answer matches the
    // in-process estimator exactly.
    let mut client = daemon.client();
    let served = client
        .rid_with_detector(&snap, None, Some(DetectorKind::RidTree))
        .expect("rid_tree over the wire");
    let local = RidTree::new(RidConfig::default().alpha)
        .expect("valid alpha")
        .detect(&snap);
    assert_eq!(served.detection, local);
    assert_eq!(
        served.detection.objective.to_bits(),
        local.objective.to_bits()
    );

    client.shutdown().expect("shutdown");
}

/// Polls `stats` over a fresh connection until `pred` holds. Control
/// requests bypass the worker queue, so this works while workers and
/// queue are saturated.
fn wait_for_stats(daemon: &Daemon, pred: impl Fn(&isomit_graph::json::Value) -> bool) {
    let mut client = daemon.client();
    for _ in 0..200 {
        let stats = client
            .request(&isomit_service::protocol::RequestBody::Stats)
            .expect("stats poll");
        if pred(&stats) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("stats condition not reached within 5s");
}

#[test]
fn overload_yields_structured_errors_not_hangs() {
    // One worker, queue of one: a single long simulation plus one queued
    // job saturate the data plane completely.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "1"]);

    let seeds_json = "[[0,1],[5,-1]]";
    // Debug-build Monte-Carlo at this scale runs ~1ms/run: several
    // seconds of guaranteed worker occupancy.
    let long_job = format!(
        "{{\"id\":1,\"type\":\"simulate\",\"seeds\":{seeds_json},\"runs\":4000,\"seed\":1}}"
    );
    let mut busy = daemon.raw();
    busy.write_all(long_job.as_bytes()).expect("write long job");
    busy.write_all(b"\n").expect("newline");

    // Wait until the worker has actually dequeued it.
    wait_for_stats(&daemon, |stats| {
        stats.get("simulate_requests").and_then(|v| v.as_u64()) == Some(1)
    });

    // Fill the queue with a second job.
    let mut filler = daemon.raw();
    filler
        .write_all(long_job.replace("\"id\":1", "\"id\":2").as_bytes())
        .expect("write filler");
    filler.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("queue_depth").and_then(|v| v.as_u64()) == Some(1)
    });

    // Every further data-plane request must be rejected immediately with
    // a structured `overloaded` error — no hang, no disconnect.
    let snap = snapshot(1);
    let mut client = daemon.client();
    for _ in 0..8 {
        match client.rid(&snap, None) {
            Err(ClientError::Remote(err)) => {
                assert_eq!(err.kind, ErrorKind::Overloaded, "{err}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    // Control plane stays responsive throughout.
    client.health().expect("health under overload");

    // Cleanup: kill the daemon via Drop; the long jobs never finish.
}

/// A deterministic watch-session delta script: three components that
/// grow, merge and flip — enough to exercise incremental, screened and
/// fallback answers.
fn watch_script() -> Vec<RidDelta> {
    let mut deltas = Vec::new();
    for i in 0..10u32 {
        deltas.push(RidDelta::Infect {
            node: NodeId(i),
            state: if i % 3 == 0 {
                NodeState::Negative
            } else {
                NodeState::Positive
            },
        });
    }
    for &(src, dst, weight) in &[
        (0u32, 1u32, 0.9),
        (1, 2, 0.8),
        (3, 4, 0.7),
        (4, 5, 0.6),
        (6, 7, 0.9),
        (2, 3, 0.5), // merges the first two chains
        (8, 9, 0.4),
    ] {
        deltas.push(RidDelta::AddEdge {
            src: NodeId(src),
            dst: NodeId(dst),
            sign: if (src + dst) % 2 == 0 {
                Sign::Positive
            } else {
                Sign::Negative
            },
            weight,
        });
    }
    deltas.push(RidDelta::FlipState {
        node: NodeId(5),
        state: NodeState::Negative,
    });
    deltas
}

fn infect(node: u32) -> RidDelta {
    RidDelta::Infect {
        node: NodeId(node),
        state: NodeState::Positive,
    }
}

#[test]
fn watch_answers_are_bit_identical_to_cold_recompute() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    client.watch_open(None, None).expect("watch_open");

    // Mirror the stream locally only to materialize each prefix
    // snapshot; the reference answer is a *cold* detector run on it.
    let mut mirror = IncrementalRid::new(RidConfig::default()).expect("mirror session");
    let rid = Rid::from_config(RidConfig::default()).expect("valid config");
    for delta in watch_script() {
        let reply = client.watch_delta(&delta).expect("watch_delta");
        mirror.apply(&delta).expect("mirror apply");
        let served = reply
            .answer()
            .expect("answer_every defaults to 1: every delta answers");
        let cold = rid.detect(&mirror.snapshot());
        assert_eq!(served.detection, cold);
        assert_eq!(
            served.detection.to_json_value().to_json(),
            cold.to_json_value().to_json(),
            "wire answer must be byte-identical to cold recompute"
        );
    }
    client.watch_close().expect("watch_close");
    client.shutdown().expect("shutdown");
}

#[test]
fn watch_ack_cadence_answers_every_nth_delta() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    client
        .watch_open(None, Some(4))
        .expect("watch_open with cadence");

    let mut mirror = IncrementalRid::new(RidConfig::default()).expect("mirror session");
    let rid = Rid::from_config(RidConfig::default()).expect("valid config");
    for (i, delta) in watch_script().into_iter().enumerate() {
        let reply = client.watch_delta(&delta).expect("watch_delta");
        mirror.apply(&delta).expect("mirror apply");
        let applied = (i + 1) as u64;
        if applied.is_multiple_of(4) {
            let served = reply.answer().expect("every 4th delta answers");
            assert_eq!(served.detection, rid.detect(&mirror.snapshot()));
        } else {
            assert_eq!(
                reply,
                WatchReply::Ack { deltas: applied },
                "delta {applied}"
            );
        }
    }
    client.watch_close().expect("watch_close");
    client.shutdown().expect("shutdown");
}

#[test]
fn watch_sessions_survive_malformed_and_invalid_deltas() {
    let daemon = Daemon::spawn(&[]);
    let mut raw = daemon.raw();
    let mut reader = BufReader::new(raw.try_clone().expect("clone stream"));

    let mut exchange = |line: &str| -> String {
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "server disconnected on {line:?}");
        reply
    };

    // A delta without an open session is a structured error.
    let reply = exchange(
        "{\"id\":1,\"type\":\"watch_delta\",\"delta\":{\"op\":\"infect\",\"node\":0,\"state\":\"+\"}}",
    );
    assert!(reply.contains("bad_request"), "{reply}");

    let reply = exchange("{\"id\":2,\"type\":\"watch_open\"}");
    assert!(reply.contains("\"opened\":true"), "{reply}");

    let reply = exchange(
        "{\"id\":3,\"type\":\"watch_delta\",\"delta\":{\"op\":\"infect\",\"node\":0,\"state\":\"+\"}}",
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // A malformed delta payload is rejected at parse time...
    let reply = exchange("{\"id\":4,\"type\":\"watch_delta\",\"delta\":{\"op\":\"melt\"}}");
    assert!(reply.contains("bad_request"), "{reply}");

    // ...a well-formed but semantically invalid one at validation time.
    let reply = exchange(
        "{\"id\":5,\"type\":\"watch_delta\",\"delta\":{\"op\":\"infect\",\"node\":0,\"state\":\"+\"}}",
    );
    assert!(reply.contains("invalid_delta"), "{reply}");

    // Neither closed the session: the next valid delta still answers.
    let reply = exchange(
        "{\"id\":6,\"type\":\"watch_delta\",\"delta\":{\"op\":\"infect\",\"node\":1,\"state\":\"-\"}}",
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"detection\""), "{reply}");

    // Close reports only the deltas that were actually applied.
    let reply = exchange("{\"id\":7,\"type\":\"watch_close\"}");
    assert!(reply.contains("\"closed\":true"), "{reply}");
    assert!(reply.contains("\"deltas\":2"), "{reply}");

    let mut client = daemon.client();
    client.shutdown().expect("shutdown");
}

#[test]
fn watch_sessions_expire_at_their_deadline() {
    let daemon = Daemon::spawn(&["--timeout-ms", "100"]);
    let mut client = daemon.client();
    client.watch_open(None, None).expect("watch_open");
    client.watch_delta(&infect(0)).expect("within deadline");

    std::thread::sleep(std::time::Duration::from_millis(250));
    match client.watch_delta(&infect(1)) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::DeadlineExceeded, "{err}");
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // The expired session was closed and its slot freed: the same
    // connection can open a fresh one and stream again.
    client.watch_open(None, None).expect("reopen after expiry");
    let reply = client.watch_delta(&infect(0)).expect("fresh session");
    assert!(reply.answer().is_some());
    client.watch_close().expect("watch_close");
    client.shutdown().expect("shutdown");
}

#[test]
fn watch_admission_cap_sheds_excess_sessions_while_active_ones_stream() {
    let daemon = Daemon::spawn(&["--max-watch", "1"]);
    let mut active = daemon.client();
    active.watch_open(None, None).expect("first session");
    active.watch_delta(&infect(0)).expect("first delta");

    let mut shed = daemon.client();
    match shed.watch_open(None, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::Overloaded, "{err}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // The admitted session streams on, unaffected by the shed one.
    let reply = active.watch_delta(&infect(1)).expect("active streams on");
    assert!(reply.answer().is_some());

    // Shedding is visible in telemetry.
    let telemetry = shed.telemetry().expect("telemetry");
    assert!(
        telemetry
            .counter(names::WATCH_SESSIONS_SHED)
            .is_some_and(|n| n >= 1),
        "shed session must increment {}",
        names::WATCH_SESSIONS_SHED
    );

    // Closing the active session frees the slot for the shed client.
    active.watch_close().expect("watch_close");
    shed.watch_open(None, None).expect("slot freed after close");
    shed.watch_close().expect("close second session");
    shed.shutdown().expect("shutdown");
}

#[test]
fn stats_expose_watch_telemetry() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    client.watch_open(None, None).expect("watch_open");
    let script = watch_script();
    for delta in &script {
        client.watch_delta(delta).expect("watch_delta");
    }

    let telemetry = client.telemetry().expect("telemetry");
    assert_eq!(
        telemetry
            .histogram(names::WATCH_DELTA_NS)
            .map(|h| h.count()),
        Some(script.len() as u64),
        "every applied delta records one {} sample",
        names::WATCH_DELTA_NS
    );
    assert!(
        telemetry.counter(names::WATCH_DIRTY_COMPONENTS).is_some(),
        "{} must be registered",
        names::WATCH_DIRTY_COMPONENTS
    );
    // The very first answer (one node, all dirty) is always a fallback.
    assert!(
        telemetry
            .counter(names::WATCH_FULL_RECOMPUTE_FALLBACKS)
            .is_some_and(|n| n >= 1),
        "{} must count the initial cold answer",
        names::WATCH_FULL_RECOMPUTE_FALLBACKS
    );

    // The stats payload carries the supersession counter.
    let stats = client
        .request(&isomit_service::protocol::RequestBody::Stats)
        .expect("stats");
    assert!(
        stats.get("cache_superseded").is_some(),
        "stats payload must expose cache_superseded: {}",
        stats.to_json()
    );

    client.watch_close().expect("watch_close");
    client.shutdown().expect("shutdown");
}

#[test]
fn queued_work_past_its_deadline_is_rejected() {
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "4", "--timeout-ms", "1"]);

    // Occupy the single worker long enough that anything queued behind
    // it is guaranteed to exceed the 1ms deadline by dequeue time.
    let long_job =
        "{\"id\":1,\"type\":\"simulate\",\"seeds\":[[0,1],[5,-1]],\"runs\":500,\"seed\":1}";
    let mut busy = daemon.raw();
    busy.write_all(long_job.as_bytes()).expect("write long job");
    busy.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("simulate_requests").and_then(|v| v.as_u64()) == Some(1)
    });

    let snap = snapshot(1);
    let mut client = daemon.client();
    match client.rid(&snap, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::DeadlineExceeded, "{err}");
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // The rejection is visible in telemetry, and the expired job's
    // queue wait was still recorded.
    let telemetry = client.telemetry().expect("telemetry");
    assert!(
        telemetry
            .counter(names::SERVICE_DEADLINE_EXCEEDED)
            .is_some_and(|n| n >= 1),
        "deadline rejection must increment {}",
        names::SERVICE_DEADLINE_EXCEEDED
    );
    assert!(
        telemetry
            .histogram(names::SERVICE_QUEUE_WAIT_NS)
            .is_some_and(|h| h.count() >= 1),
        "queue wait of the expired job must be recorded"
    );
}

// ---------------------------------------------------------------------
// Sharded-serving correctness: routing, the by-fingerprint fast path,
// per-shard overload isolation, and watch pinning under load.
// ---------------------------------------------------------------------

use isomit_service::fingerprint::{fingerprint_bytes, snapshot_fingerprint};
use isomit_service::server::shard_for_fingerprint;

#[test]
fn by_fingerprint_requests_match_the_full_form_byte_for_byte() {
    let daemon = Daemon::spawn(&["--shards", "4"]);
    let mut client = daemon.client();

    let snap = snapshot(1);
    let fp = snapshot_fingerprint(&snap);

    // Cold by-fingerprint: the snapshot has never been answered, so the
    // structured miss tells the client to fall back to the full form.
    match client.rid_by_fingerprint(fp, None, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::UnknownSnapshot, "{err}");
        }
        other => panic!("expected unknown_snapshot, got {other:?}"),
    }

    // Prime with the full form, then re-ask by fingerprint.
    let full = client.rid(&snap, None).expect("full-form rid");
    let cached = client
        .rid_by_fingerprint(fp, None, None)
        .expect("by-fingerprint rid after priming");
    assert_eq!(
        full.to_json_value().to_json(),
        cached.to_json_value().to_json(),
        "cached fast-path answer must be byte-identical to the full form"
    );
    assert_eq!(
        cached.detection,
        expected_detection(&snap, RidConfig::default())
    );

    // The cache key covers the config: the same snapshot under a
    // different config is a different (unprimed) entry.
    let tweaked = RidConfig {
        beta: 0.0,
        ..RidConfig::default()
    };
    match client.rid_by_fingerprint(fp, Some(tweaked), None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::UnknownSnapshot, "{err}");
        }
        other => panic!("expected unknown_snapshot for unprimed config, got {other:?}"),
    }
    let full_tweaked = client.rid(&snap, Some(tweaked)).expect("prime tweaked");
    let cached_tweaked = client
        .rid_by_fingerprint(fp, Some(tweaked), None)
        .expect("by-fingerprint with tweaked config");
    assert_eq!(
        full_tweaked.to_json_value().to_json(),
        cached_tweaked.to_json_value().to_json()
    );

    // A fingerprint the server never saw stays a structured miss.
    match client.rid_by_fingerprint(fp.wrapping_add(1), None, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::UnknownSnapshot, "{err}");
        }
        other => panic!("expected unknown_snapshot, got {other:?}"),
    }

    // Fast-path hits are attributable in telemetry.
    let telemetry = client.telemetry().expect("telemetry");
    assert!(
        telemetry
            .counter(names::SERVICE_RESULT_CACHE_HITS)
            .is_some_and(|hits| hits >= 2),
        "result-cache hits must be recorded"
    );
    client.shutdown().expect("shutdown");
}

#[test]
fn same_fingerprint_requests_land_on_the_same_shard() {
    const SHARDS: usize = 4;
    let daemon = Daemon::spawn(&["--shards", "4"]);

    let snap = snapshot(1);
    let expected_shard = shard_for_fingerprint(snapshot_fingerprint(&snap), SHARDS);

    // Six requests for one snapshot across three connections.
    for _ in 0..3 {
        let mut client = daemon.client();
        for _ in 0..2 {
            client.rid(&snap, None).expect("rid");
        }
    }

    let mut client = daemon.client();
    let telemetry = client.telemetry().expect("telemetry");
    for shard in 0..SHARDS {
        let requests = telemetry
            .counter(&format!("shard.{shard}.requests"))
            .unwrap_or_else(|| panic!("shard.{shard}.requests missing from stats"));
        if shard == expected_shard {
            assert_eq!(requests, 6, "all six requests belong on shard {shard}");
        } else {
            assert_eq!(requests, 0, "shard {shard} must stay idle");
        }
    }
    assert_eq!(
        telemetry.counter(names::SERVICE_RID_REQUESTS),
        Some(6),
        "fleet-wide total is the per-shard sum"
    );
    client.shutdown().expect("shutdown");
}

#[test]
fn sixty_four_concurrent_clients_get_bit_identical_answers() {
    let daemon = Daemon::spawn(&["--shards", "4"]);

    let cases: Vec<(InfectedNetwork, String)> = [1u64, 2, 3, 4]
        .into_iter()
        .map(|seed| {
            let snap = snapshot(seed);
            let expected = expected_detection(&snap, RidConfig::default())
                .to_json_value()
                .to_json();
            (snap, expected)
        })
        .collect();
    let cases = std::sync::Arc::new(cases);

    let handles: Vec<_> = (0..64)
        .map(|i| {
            let cases = std::sync::Arc::clone(&cases);
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let (snap, expected) = &cases[i % cases.len()];
                let served = client.rid(snap, None).expect("rid");
                assert_eq!(
                    &served.detection.to_json_value().to_json(),
                    expected,
                    "client {i} got a divergent answer"
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rid_requests, 64);
    // Four distinct snapshots: every request after a shard's first for
    // that snapshot is an artifact-cache hit.
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_hits, 60);
    client.shutdown().expect("shutdown");
}

/// Finds a deterministic snapshot routed to each of the two shards.
fn snapshots_on_both_shards() -> [(InfectedNetwork, usize); 2] {
    let mut found: [Option<InfectedNetwork>; 2] = [None, None];
    for seed in 1..=16 {
        let snap = snapshot(seed);
        let shard = shard_for_fingerprint(snapshot_fingerprint(&snap), 2);
        if found[shard].is_none() {
            found[shard] = Some(snap);
        }
        if found.iter().all(Option::is_some) {
            break;
        }
    }
    let [a, b] = found;
    [
        (a.expect("no snapshot routed to shard 0 in 16 seeds"), 0),
        (b.expect("no snapshot routed to shard 1 in 16 seeds"), 1),
    ]
}

#[test]
fn per_shard_overload_sheds_while_other_shards_keep_serving() {
    // Two shards, queue of one each: one long simulation plus one queued
    // job saturate exactly one shard; the other must stay unaffected.
    let daemon = Daemon::spawn(&["--shards", "2", "--queue", "1"]);
    let [(snap_a, shard_a), (snap_b, shard_b)] = snapshots_on_both_shards();
    assert_ne!(shard_a, shard_b);

    // A simulate routes by its raw seeds span; search one that lands on
    // the shard we want to saturate.
    let seeds_json = (0..64)
        .map(|node| format!("[[{node},1],[5,-1]]"))
        .find(|span| shard_for_fingerprint(fingerprint_bytes(span.as_bytes()), 2) == shard_a)
        .expect("no seeds span routed to the busy shard in 64 tries");
    let long_job = format!(
        "{{\"id\":1,\"type\":\"simulate\",\"seeds\":{seeds_json},\"runs\":4000,\"seed\":1}}"
    );
    let mut busy = daemon.raw();
    busy.write_all(long_job.as_bytes()).expect("write long job");
    busy.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("simulate_requests").and_then(|v| v.as_u64()) == Some(1)
    });

    // Fill the busy shard's queue (capacity 1) without blocking on the
    // reply.
    let filler = isomit_service::protocol::encode_request(
        2,
        &isomit_service::protocol::RequestBody::Rid {
            snapshot: Box::new(snap_a.clone()),
            config: None,
            detector: None,
        },
    );
    let mut filler_conn = daemon.raw();
    filler_conn
        .write_all(filler.as_bytes())
        .expect("write filler");
    filler_conn.write_all(b"\n").expect("newline");
    wait_for_stats(&daemon, |stats| {
        stats.get("queue_depth").and_then(|v| v.as_u64()) == Some(1)
    });

    // The saturated shard sheds with a structured `overloaded` error...
    let mut client = daemon.client();
    match client.rid(&snap_a, None) {
        Err(ClientError::Remote(err)) => {
            assert_eq!(err.kind, ErrorKind::Overloaded, "{err}");
        }
        other => panic!("expected overloaded on the busy shard, got {other:?}"),
    }

    // ...while the other shard answers normally, and correctly.
    let served = client.rid(&snap_b, None).expect("healthy shard serves");
    assert_eq!(
        served.detection,
        expected_detection(&snap_b, RidConfig::default())
    );

    // The shed is attributed to the busy shard alone.
    let telemetry = client.telemetry().expect("telemetry");
    assert!(
        telemetry
            .counter(&format!("shard.{shard_a}.shed"))
            .is_some_and(|shed| shed >= 1),
        "busy shard must record its shed"
    );
    assert_eq!(
        telemetry.counter(&format!("shard.{shard_b}.shed")),
        Some(0),
        "healthy shard must not shed"
    );
    // Cleanup: kill the daemon via Drop; the long jobs never finish.
}

#[test]
fn watch_session_survives_on_its_pinned_shard_under_cross_shard_load() {
    let daemon = Daemon::spawn(&["--shards", "4"]);
    let mut client = daemon.client();
    client.watch_open(None, None).expect("watch_open");

    // Hammer all shards from four background connections while the
    // watch stream runs.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammers: Vec<_> = (0..4u64)
        .map(|i| {
            let stop = std::sync::Arc::clone(&stop);
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let snap = snapshot(i + 1);
                let expected = expected_detection(&snap, RidConfig::default())
                    .to_json_value()
                    .to_json();
                let mut client = Client::connect(&addr).expect("connect");
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let served = client.rid(&snap, None).expect("hammer rid");
                    assert_eq!(served.detection.to_json_value().to_json(), expected);
                }
            })
        })
        .collect();

    // The pinned session's answers stay byte-identical to cold
    // recomputes of every prefix, delta ordering intact.
    let mut mirror = IncrementalRid::new(RidConfig::default()).expect("mirror session");
    let rid = Rid::from_config(RidConfig::default()).expect("valid config");
    for delta in watch_script() {
        let reply = client.watch_delta(&delta).expect("watch_delta under load");
        mirror.apply(&delta).expect("mirror apply");
        let served = reply.answer().expect("answer_every defaults to 1");
        let cold = rid.detect(&mirror.snapshot());
        assert_eq!(
            served.detection.to_json_value().to_json(),
            cold.to_json_value().to_json(),
            "watch answer diverged under cross-shard load"
        );
    }
    client.watch_close().expect("watch_close");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for hammer in hammers {
        hammer.join().expect("hammer thread");
    }
    client.shutdown().expect("shutdown");
}
