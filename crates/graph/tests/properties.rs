//! Property-based tests for the graph substrate.

use isomit_graph::{io, jaccard_coefficient, jaccard_weights, Edge, NodeId, Sign, SignedDigraph};
use proptest::prelude::*;

/// Strategy producing a valid edge set over `n` nodes (no self-loops,
/// weights in [0, 1]).
fn arb_edges(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, any::<bool>(), 0.0f64..=1.0).prop_filter_map(
            "self-loops are invalid",
            |(a, b, pos, w)| {
                (a != b).then(|| {
                    Edge::new(
                        NodeId(a),
                        NodeId(b),
                        if pos { Sign::Positive } else { Sign::Negative },
                        w,
                    )
                })
            },
        );
        proptest::collection::vec(edge, 0..max_edges).prop_map(move |edges| (n as usize, edges))
    })
}

proptest! {
    #[test]
    fn csr_preserves_every_last_duplicate((n, edges) in arb_edges(24, 60)) {
        let g = SignedDigraph::from_edges(n, edges.clone()).unwrap();
        // Reference: the last edge for each (src, dst) pair.
        let mut expected = std::collections::HashMap::new();
        for e in &edges {
            expected.insert((e.src, e.dst), (e.sign, e.weight));
        }
        prop_assert_eq!(g.edge_count(), expected.len());
        for ((src, dst), (sign, weight)) in expected {
            let e = g.edge(src, dst).expect("edge must exist");
            prop_assert_eq!(e.sign, sign);
            prop_assert!((e.weight - weight).abs() < 1e-15);
        }
    }

    #[test]
    fn reversal_is_involution((n, edges) in arb_edges(24, 60)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g.reversed().reversed(), g);
    }

    #[test]
    fn reversal_swaps_in_and_out_degrees((n, edges) in arb_edges(16, 48)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let r = g.reversed();
        for u in g.nodes() {
            prop_assert_eq!(g.out_degree(u), r.in_degree(u));
            prop_assert_eq!(g.in_degree(u), r.out_degree(u));
        }
    }

    #[test]
    fn degree_sums_equal_edge_count((n, edges) in arb_edges(16, 48)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn snap_round_trip_preserves_structure((n, edges) in arb_edges(16, 48)) {
        // SNAP drops weights, so compare after normalizing weights to 1.0.
        let g = SignedDigraph::from_edges(n, edges).unwrap().map_weights(|_| 1.0);
        let mut buf = Vec::new();
        io::write_snap(&g, &mut buf).unwrap();
        let back = io::read_snap(buf.as_slice()).unwrap();
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for e in g.edges() {
            let b = back.edge(e.src, e.dst).expect("edge survives round trip");
            prop_assert_eq!(b.sign, e.sign);
        }
    }

    #[test]
    fn jaccard_is_bounded_and_symmetric_in_structure((n, edges) in arb_edges(12, 40)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let w = jaccard_weights(&g);
        for e in w.edges() {
            prop_assert!((0.0..=1.0).contains(&e.weight));
            let jc = jaccard_coefficient(&g, e.src, e.dst);
            prop_assert!((jc - e.weight).abs() < 1e-15);
        }
    }

    #[test]
    fn induced_subgraph_of_all_nodes_is_identity((n, edges) in arb_edges(12, 40)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let (sub, map) = g.induced_subgraph(g.nodes().collect::<Vec<_>>());
        prop_assert_eq!(&sub, &g);
        for u in g.nodes() {
            prop_assert_eq!(map.to_subgraph(u), Some(u));
            prop_assert_eq!(map.to_original(u), Some(u));
        }
    }

    #[test]
    fn induced_subgraph_never_invents_edges(
        (n, edges) in arb_edges(12, 40),
        keep_mask in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let kept: Vec<NodeId> = g
            .nodes()
            .filter(|u| keep_mask.get(u.index()).copied().unwrap_or(false))
            .collect();
        let (sub, map) = g.induced_subgraph(kept);
        for e in sub.edges() {
            let src = map.to_original(e.src).unwrap();
            let dst = map.to_original(e.dst).unwrap();
            let orig = g.edge(src, dst).expect("subgraph edge must exist in parent");
            prop_assert_eq!(orig.sign, e.sign);
            prop_assert!((orig.weight - e.weight).abs() < 1e-15);
        }
    }
}

// Every construction path must produce a graph that passes the debug
// invariant check (`SignedDigraph::validate`): the builder, CSR
// construction from an edge list, reversal, weight mapping, and induced
// subgraphs.
proptest! {
    #[test]
    fn builder_output_passes_validate((n, edges) in arb_edges(24, 60)) {
        let mut b = isomit_graph::SignedDigraphBuilder::with_nodes(n);
        for e in edges {
            b.add_edge(e.src, e.dst, e.sign, e.weight).unwrap();
        }
        prop_assert!(b.build().validate().is_ok());
    }

    #[test]
    fn derived_graphs_pass_validate((n, edges) in arb_edges(24, 60)) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.reversed().validate().is_ok());
        prop_assert!(g
            .map_weights(|e| 0.25 + e.weight / 2.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn induced_subgraph_passes_validate(
        (n, edges) in arb_edges(12, 40),
        keep_mask in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let kept: Vec<NodeId> = g
            .nodes()
            .filter(|u| keep_mask.get(u.index()).copied().unwrap_or(false))
            .collect();
        let (sub, _map) = g.induced_subgraph(kept);
        prop_assert!(sub.validate().is_ok());
    }
}
