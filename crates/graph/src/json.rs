//! Minimal JSON reading/writing for snapshot exchange.
//!
//! The build environment has no registry access, so instead of
//! `serde_json` this module carries a small self-contained JSON document
//! model ([`Value`]), a recursive-descent parser ([`Value::parse`]) and a
//! writer ([`Value::to_json`]), plus the codec for [`SignedDigraph`].
//!
//! Numbers are `f64`. The writer emits integral values without a decimal
//! point and everything else through Rust's shortest-round-trip `{:?}`
//! formatting, so `parse(to_json(v)) == v` holds bit-exactly for every
//! finite weight.
//!
//! # Graph schema
//!
//! ```json
//! {"nodes": 4, "edges": [[0, 1, 1, 0.5], [1, 2, -1, 0.25]]}
//! ```
//!
//! Each edge is `[src, dst, sign, weight]` with `sign` being `1` or `-1`.

use crate::{Edge, NodeId, NodeState, Sign, SignedDigraph};
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Error produced when parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or trailing input after
    /// the document.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The number inside, if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number inside as a `u64`, if it is integral and in the range
    /// where `f64` represents integers exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number inside as a `usize`, if it is integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The string inside, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The items inside, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field, if this is a [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`get`](Value::get) but decoding failures become errors.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when `self` is not an object or the key
    /// is absent.
    pub fn require(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        write!(out, "{}", n as i64).expect("writing to String cannot fail");
    } else {
        // `{:?}` is Rust's shortest representation that parses back to
        // the same bits.
        write!(out, "{n:?}").expect("writing to String cannot fail");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", u32::from(c)).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting here.
                    self.pos -= 1;
                    let tail = self
                        .bytes
                        .get(self.pos..)
                        .ok_or_else(|| self.err("truncated input"))?;
                    let rest = std::str::from_utf8(tail).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

impl SignedDigraph {
    /// Encodes the graph as a JSON [`Value`] (see the
    /// [module docs](crate::json) for the schema).
    pub fn to_json_value(&self) -> Value {
        let edges = self
            .edges()
            .map(|e| {
                Value::Array(vec![
                    Value::Number(e.src.0 as f64),
                    Value::Number(e.dst.0 as f64),
                    Value::Number(e.sign.value() as f64),
                    Value::Number(e.weight),
                ])
            })
            .collect();
        Value::Object(vec![
            ("nodes".into(), Value::Number(self.node_count() as f64)),
            ("edges".into(), Value::Array(edges)),
        ])
    }

    /// Decodes a graph from a JSON [`Value`] produced by
    /// [`to_json_value`](SignedDigraph::to_json_value).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when required fields are missing or
    /// mistyped, or when an edge references a node outside `0..nodes`.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let nodes = value
            .require("nodes")?
            .as_usize()
            .ok_or_else(|| JsonError::new("`nodes` must be a non-negative integer"))?;
        let raw_edges = value
            .require("edges")?
            .as_array()
            .ok_or_else(|| JsonError::new("`edges` must be an array"))?;
        let mut edges = Vec::with_capacity(raw_edges.len());
        for e in raw_edges {
            let parts = e
                .as_array()
                .ok_or_else(|| JsonError::new("each edge must be [src, dst, sign, weight]"))?;
            let [src_v, dst_v, sign_v, weight_v] = parts else {
                return Err(JsonError::new("each edge must be [src, dst, sign, weight]"));
            };
            let src = src_v
                .as_usize()
                .ok_or_else(|| JsonError::new("edge src must be a node id"))?;
            let dst = dst_v
                .as_usize()
                .ok_or_else(|| JsonError::new("edge dst must be a node id"))?;
            let sign = if sign_v.as_f64() == Some(1.0) {
                Sign::Positive
            } else if sign_v.as_f64() == Some(-1.0) {
                Sign::Negative
            } else {
                return Err(JsonError::new("edge sign must be 1 or -1"));
            };
            let weight = weight_v
                .as_f64()
                .ok_or_else(|| JsonError::new("edge weight must be a number"))?;
            edges.push(Edge::new(
                NodeId::from_index(src),
                NodeId::from_index(dst),
                sign,
                weight,
            ));
        }
        SignedDigraph::from_edges(nodes, edges)
            .map_err(|e| JsonError::new(format!("invalid graph: {e}")))
    }

    /// Encodes the graph as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a graph from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a structurally
    /// invalid graph document (see
    /// [`from_json_value`](SignedDigraph::from_json_value)).
    pub fn from_json_str(input: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(input)?)
    }
}

impl NodeState {
    /// The one-character snapshot encoding: `+`, `-`, `0` or `?`.
    pub fn as_symbol(&self) -> &'static str {
        match self {
            NodeState::Positive => "+",
            NodeState::Negative => "-",
            NodeState::Inactive => "0",
            NodeState::Unknown => "?",
        }
    }

    /// Parses the encoding produced by [`as_symbol`](NodeState::as_symbol).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for any symbol other than `+`, `-`, `0`
    /// or `?`.
    pub fn from_symbol(symbol: &str) -> Result<Self, JsonError> {
        match symbol {
            "+" => Ok(NodeState::Positive),
            "-" => Ok(NodeState::Negative),
            "0" => Ok(NodeState::Inactive),
            "?" => Ok(NodeState::Unknown),
            other => Err(JsonError::new(format!("unknown node state `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "\"hi \\\"there\\\"\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-8] {
            let v = Value::Number(x);
            let back = Value::parse(&v.to_json()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_document() {
        let text = r#" {"a": [1, 2.5, {"b": null}], "c": "\u0041\n"} "#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("A\n"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        // Round trip through the compact writer.
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"\\q\""] {
            assert!(Value::parse(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Number(1.0).as_bool(), None);
        assert_eq!(Value::Number(42.0).as_u64(), Some(42));
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(0.5).as_u64(), None);
        assert_eq!(Value::String("x".into()).as_u64(), None);
    }

    #[test]
    fn node_state_symbols() {
        for s in [
            NodeState::Positive,
            NodeState::Negative,
            NodeState::Inactive,
            NodeState::Unknown,
        ] {
            assert_eq!(NodeState::from_symbol(s.as_symbol()).unwrap(), s);
        }
        assert!(NodeState::from_symbol("x").is_err());
    }
}
